//! The canonical telemetry registry: every point and metric name the
//! workspace may emit, with its kind, owning scope, and a one-line doc.
//!
//! This is the machine-checked contract behind `simba-analyze` (paper
//! §4: the *system*, not grep discipline, notices drift). A name used
//! with a telemetry API anywhere in the workspace must appear here; a
//! name listed here must actually be emitted somewhere; and the
//! `Observability` table in the README is generated from this module,
//! so the docs cannot drift either.
//!
//! # Naming convention
//!
//! Names are dotted lowercase `scope.snake_case`. The leading scope names
//! the emitting subsystem and must be one declared by the emitting crate
//! (see [`CRATE_SCOPES`]). Where a concept needs both an event point and
//! a running counter, both share **one** name (e.g. `client.restart` is
//! an `Event` *and* a `Counter`); the historical `x`/`xs` split
//! (`wal.append` event vs `wal.appends` counter) survives only where the
//! two genuinely measure different things.

/// How a registered name is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// A structured [`crate::Event`] on the sink.
    Event,
    /// A monotonically increasing counter in the [`crate::MetricsRegistry`].
    Counter,
    /// A last-value-wins gauge.
    Gauge,
    /// A log-bucketed millisecond histogram.
    Histogram,
    /// A [`crate::Span`]: emits an event under this name plus a
    /// `<name>_ms` histogram (registered separately).
    Span,
    /// A count/mean/min/max summary in the sim-side [`crate::MetricSet`]
    /// (`observe` / `observe_duration` / `summary`).
    Summary,
}

impl PointKind {
    /// Lowercase label for tables and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            PointKind::Event => "event",
            PointKind::Counter => "counter",
            PointKind::Gauge => "gauge",
            PointKind::Histogram => "histogram",
            PointKind::Span => "span",
            PointKind::Summary => "summary",
        }
    }
}

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct PointDef {
    /// The dotted name exactly as emitted.
    pub name: &'static str,
    /// Every kind this name is recorded as.
    pub kinds: &'static [PointKind],
    /// The owning scope — the name's first dotted segment.
    pub scope: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

// `Span` stays out of this import until a span point is registered — the
// live stack currently emits none (the `span` API is exercised only by
// the telemetry crate's own tests).
use PointKind::{Counter, Event, Gauge, Histogram, Summary};

macro_rules! point {
    ($name:literal, [$($kind:ident),+], $scope:literal, $doc:literal) => {
        PointDef { name: $name, kinds: &[$($kind),+], scope: $scope, doc: $doc }
    };
}

/// Every scope a workspace crate may emit under.
pub const SCOPES: &[&str] = &[
    "mab",
    "wal",
    "delivery",
    "gateway",
    "host",
    "client",
    "net",
    "runtime",
    "watchdog",
    "stabilize",
    "rejuvenate",
    "store",
    "ledger",
    "rules",
    // Simulation-harness scopes (fault taxonomy of the paper's Table 2).
    "sanity",
    "power",
    "operator",
    "mdc",
    "source",
    "user",
    "monkey",
    "im",
];

/// Scopes whose production names are assembled at runtime (for example
/// `net.{channel}.{suffix}` in `ChannelScope::metric`), so the analyzer
/// cannot find a production string literal for them. For these scopes
/// *any* workspace reference — including test assertions — satisfies
/// the unemitted-point check.
pub const DYNAMIC_SCOPES: &[&str] = &["net"];

/// Scopes each crate may emit under in non-test code. Crates not listed
/// are unrestricted (drivers and harnesses that emit on behalf of the
/// whole stack); the `telemetry` crate itself is exempt from registry
/// rules entirely — its tests and examples use placeholder names.
pub const CRATE_SCOPES: &[(&str, &[&str])] = &[
    ("core", &["mab", "wal", "delivery", "stabilize", "rejuvenate"]),
    (
        "runtime",
        &["runtime", "watchdog", "host", "mab", "wal", "delivery"],
    ),
    ("net", &["net"]),
    ("store", &["store"]),
    ("ledger", &["ledger"]),
    ("rules", &["rules"]),
    ("client", &["client"]),
    ("gateway", &["gateway"]),
    ("xml", &[]),
    ("sources", &[]),
    ("baselines", &[]),
    ("analyze", &[]),
];

/// The registry. Kept sorted by name; `cargo test -p simba-telemetry`
/// asserts order and uniqueness.
pub const POINTS: &[PointDef] = &[
    point!("client.anomalies", [Counter], "client", "running count of client-state anomalies the sanity checker found"),
    point!("client.anomaly", [Event], "client", "one detected client anomaly, with its classified kind"),
    point!("client.dialog_dismissed", [Event, Counter], "client", "a stuck modal dialog was dismissed by the sanity checker"),
    point!("client.re_logons", [Counter], "client", "IM re-logons forced to clear a wedged session"),
    point!("client.restart", [Event, Counter], "client", "a desktop client process was restarted to repair it"),
    point!("client.sanity_check", [Event, Counter], "client", "one periodic client sanity-check sweep ran"),
    point!("client.unrepairable", [Counter], "client", "sanity sweeps that exhausted every repair and escalated"),
    point!("delivery.ack_latency_ms", [Histogram], "delivery", "time from send to user acknowledgement"),
    point!("delivery.ack_timeout", [Event, Counter], "delivery", "an acknowledgement window expired and the strategy moved on"),
    point!("delivery.acked", [Event, Counter], "delivery", "an alert was acknowledged by its user"),
    point!("delivery.block_entered", [Event, Counter], "delivery", "delivery entered a user's blocked (do-not-disturb) window"),
    point!("delivery.block_skipped", [Event, Counter], "delivery", "a delivery step was skipped because the user's block window was active"),
    point!("delivery.exhausted", [Event, Counter], "delivery", "every strategy step failed; the alert gave up undelivered"),
    point!("delivery.send_failed", [Event, Counter], "delivery", "one strategy step's send attempt failed"),
    point!("delivery.sends", [Counter], "delivery", "delivery send attempts across every channel"),
    point!("delivery.unconfirmed", [Event, Counter], "delivery", "an alert ended unconfirmed after its final step"),
    point!("gateway.accepted", [Counter], "gateway", "TCP connections accepted by the ingestion gateway"),
    point!("gateway.buckets_evicted", [Counter], "gateway", "idle per-source rate-limit buckets evicted from the admission map"),
    point!("gateway.conn_opened", [Counter], "gateway", "gateway connections that completed the protocol handshake"),
    point!("gateway.conn_shed", [Event, Counter], "gateway", "a connection was closed by admission control at accept time"),
    point!("gateway.decode_err", [Event, Counter], "gateway", "an inbound frame failed to decode and was discarded"),
    point!("gateway.idle_closed", [Event, Counter], "gateway", "a connection was reaped after its idle deadline"),
    point!("gateway.queue_depth", [Gauge], "gateway", "current depth of the gateway's ingest queue"),
    point!("gateway.shed", [Event, Counter], "gateway", "an alert was load-shed instead of enqueued"),
    point!("gateway.unknown_user", [Event, Counter], "gateway", "an alert named a user no MAB is hosting"),
    point!("host.buddy_crashed", [Counter], "host", "buddies that crashed on a shard worker and were restarted with log replay"),
    point!("host.commit_failed", [Counter], "host", "shard-log group commits that failed (the batch's effects were withheld)"),
    point!("host.group_commits", [Counter], "host", "shard-log group commits (one fsync each in file mode)"),
    point!("host.hibernated", [Counter], "host", "idle buddies hibernated to compact snapshots by the sharded host"),
    point!("host.notice_dropped", [Counter], "host", "MAB notices dropped because the host's notice queue was full"),
    point!("host.rehydrated", [Counter], "host", "hibernated buddies rebuilt from snapshots on routed demand"),
    point!("host.routed", [Counter], "host", "alerts the multi-user host routed to a per-user MAB"),
    point!("host.segments_rotated", [Counter], "host", "shard-log segment rotations (history compacted to live records)"),
    point!("host.shard_depth", [Gauge], "host", "current inbound queue depth of a shard worker"),
    point!("host.snapshot_corrupt", [Counter], "host", "hibernation snapshots rejected at rehydration; each fell back to shard-log replay"),
    point!("host.unrouted", [Event, Counter], "host", "an alert arrived for a user the host does not run"),
    point!("host.user_added", [Event], "host", "a per-user MAB runtime was started on the host"),
    point!("host.user_stopped", [Event], "host", "a per-user MAB runtime was retired from the host"),
    point!("host.users", [Counter], "host", "per-user MAB runtimes started over the host's lifetime"),
    point!("im.one_way", [Summary], "im", "sim: one-way source-to-client IM latency (paper fig. E1)"),
    point!("ledger.commit_batch", [Counter], "ledger", "delivery-ledger group commits (one fsync each in file mode)"),
    point!("ledger.dead_lettered", [Counter], "ledger", "records parked in the bounded dead-letter queue after max attempts"),
    point!("ledger.enqueued", [Counter], "ledger", "channel attempts enqueued as durable ledger records"),
    point!("ledger.idempotent_dedup", [Counter], "ledger", "redelivered sends absorbed by idempotency-key dedupe (at-least-once made exactly-once-visible)"),
    point!("ledger.lease_expired", [Counter], "ledger", "expired leases reclaimed from (presumed-dead) workers"),
    point!("ledger.leased", [Counter], "ledger", "time-bounded leases granted to ledger workers"),
    point!("ledger.retried", [Counter], "ledger", "failed sends rescheduled with exponential backoff"),
    point!("mab.ack", [Event], "mab", "MAB observed a user acknowledgement for an alert"),
    point!("mab.acked", [Counter], "mab", "alerts acknowledged while owned by the MAB"),
    point!("mab.crashed", [Event], "mab", "the MAB detected or simulated an abnormal termination"),
    point!("mab.crashes", [Counter], "mab", "MAB crash count (live and simulated)"),
    point!("mab.deliveries_started", [Counter], "mab", "delivery state machines the MAB has started"),
    point!("mab.hangs", [Counter], "mab", "sim: MAB hang faults injected (watchdog-detectable)"),
    point!("mab.im_undeliverable", [Counter], "mab", "sim: IM sends the MAB abandoned as undeliverable"),
    point!("mab.ingest_deferred", [Counter], "mab", "sim: inbound alerts deferred because the MAB was down"),
    point!("mab.mode_overridden", [Event, Counter], "mab", "a delivery's mode was adjusted by live presence/health facts"),
    point!("mab.outbound_client_failure", [Counter], "mab", "sim: outbound pushes that failed at the client edge"),
    point!("mab.received", [Event, Counter], "mab", "an alert entered the MAB from a source or gateway"),
    point!("mab.rejected", [Event, Counter], "mab", "an alert was rejected at ingest (duplicate, invalid, or shed)"),
    point!("mab.rejuvenations", [Counter], "mab", "proactive MAB rejuvenation restarts"),
    point!("mab.remote_commands", [Counter], "mab", "remote-control commands (wish-list protocol) applied"),
    point!("mab.replayed", [Counter], "mab", "alerts restored from the WAL across MAB restarts"),
    point!("mab.retired", [Event, Counter], "mab", "an alert reached a terminal state and left the MAB"),
    point!("mab.route_lag_ms", [Histogram], "mab", "queueing delay between ingest and routing"),
    point!("mab.routed", [Event, Counter], "mab", "an alert was matched to a user profile and routed"),
    point!("mab.unsubscribed", [Event, Counter], "mab", "an alert matched no subscription and was dropped"),
    point!("mdc.reboots", [Counter], "mdc", "sim: full machine reboots of the MAB's host (Table 2)"),
    point!("mdc.restarts", [Counter], "mdc", "sim: MDC process restarts of a crashed MAB (Table 2)"),
    point!("monkey.dismissed", [Counter], "monkey", "sim: dialogs the chaos monkey's sweep dismissed"),
    point!("monkey.stuck", [Counter], "monkey", "sim: dialogs the chaos monkey left stuck for the operator"),
    point!("net.email.delivered", [Counter], "net", "emails that reached the user's mailbox"),
    point!("net.email.latency_ms", [Histogram], "net", "email channel delivery latency"),
    point!("net.email.lost", [Counter], "net", "emails silently lost in transit (no bounce)"),
    point!("net.email.sends", [Counter], "net", "email send attempts"),
    point!("net.im.delivered", [Counter], "net", "IM messages that reached the client"),
    point!("net.im.latency_ms", [Histogram], "net", "IM channel delivery latency"),
    point!("net.im.outage_rejects", [Counter], "net", "IM sends rejected during a simulated service outage"),
    point!("net.im.rejected", [Event], "net", "one IM send was rejected by the service"),
    point!("net.im.rejects", [Counter], "net", "IM sends rejected by the service"),
    point!("net.im.sends", [Counter], "net", "IM send attempts"),
    point!("net.im.sent", [Event], "net", "one IM send was accepted by the service"),
    point!("net.sms.delivered", [Counter], "net", "SMS messages that reached the pager/phone"),
    point!("net.sms.dropped", [Counter], "net", "SMS messages dropped by the carrier"),
    point!("net.sms.sends", [Counter], "net", "SMS send attempts"),
    point!("operator.manual_fix", [Counter], "operator", "sim: faults only a human operator could clear (Table 2)"),
    point!("power.outages", [Counter], "power", "sim: power-loss episodes injected at the MAB's site"),
    point!("rejuvenate.triggered", [Event], "rejuvenate", "the rejuvenation policy decided a proactive restart is due"),
    point!("rules.critical_bypass", [Counter], "rules", "critical alerts that cut through a digest rule and delivered immediately"),
    point!("rules.deduped", [Counter], "rules", "alerts suppressed because their dedupe-key template hit a recently seen key"),
    point!("rules.deletes", [Counter], "rules", "rules removed from the rules log"),
    point!("rules.digest_absorbed", [Counter], "rules", "alerts absorbed into a pending digest window instead of routed"),
    point!("rules.digest_escalated", [Counter], "rules", "digest windows flushed early by a count cap or severity escalation"),
    point!("rules.digest_flushed", [Counter], "rules", "digest alerts flushed to delivery (deadline, cap, or escalation)"),
    point!("rules.evaluated", [Counter], "rules", "alerts pushed through the rule engine's hot path"),
    point!("rules.loaded", [Counter], "rules", "rules replayed from the rules log at engine open"),
    point!("rules.matched", [Counter], "rules", "evaluations where some rule matched (any action)"),
    point!("rules.pending_digests", [Gauge], "rules", "open digest windows across all users"),
    point!("rules.rejected", [Counter], "rules", "rule mutations rejected (parse error, per-user bound, unknown id)"),
    point!("rules.suppressed", [Counter], "rules", "alerts dropped by a suppress rule or dedupe template"),
    point!("rules.upserts", [Counter], "rules", "rules created or replaced in the rules log"),
    point!("runtime.acks_sent", [Counter], "runtime", "acknowledgements the runtime forwarded to sources"),
    point!("runtime.deliveries_finished", [Counter], "runtime", "delivery state machines driven to completion"),
    point!("runtime.delivery_finished", [Event], "runtime", "one delivery state machine completed, with its outcome"),
    point!("runtime.notice_dropped", [Counter], "runtime", "service notices dropped because the notice queue was full"),
    point!("runtime.recovered", [Event], "runtime", "the supervisor restarted the MAB after a failure"),
    point!("runtime.recoveries", [Counter], "runtime", "supervisor-driven MAB restarts"),
    point!("runtime.rejuvenating", [Event], "runtime", "a proactive rejuvenation restart began"),
    point!("runtime.rejuvenations", [Counter], "runtime", "proactive rejuvenation restarts performed"),
    point!("runtime.send", [Event], "runtime", "the runtime dispatched one channel send"),
    point!("runtime.sends", [Counter], "runtime", "channel sends dispatched by the runtime"),
    point!("runtime.stale_dropped", [Event, Counter], "runtime", "an expired alert was dropped instead of delivered"),
    point!("sanity.client_restart", [Counter], "sanity", "sim: client restarts performed by the sanity checker (Table 2)"),
    point!("sanity.dialog_dismissed", [Counter], "sanity", "sim: stuck dialogs dismissed by the sanity checker (Table 2)"),
    point!("sanity.relogon", [Counter], "sanity", "sim: IM re-logons performed by the sanity checker (Table 2)"),
    point!("sanity.unrepairable", [Counter], "sanity", "sim: sanity sweeps that escalated past every repair"),
    point!("source.ack_rtt", [Summary], "source", "sim: source-observed ack round-trip time"),
    point!("source.ack_timeout", [Counter], "source", "sim: source-side ack windows that expired"),
    point!("source.email_fallback", [Counter], "source", "sim: alerts a source re-sent via email after IM failure"),
    point!("source.emitted", [Counter], "source", "sim: alerts emitted by sources"),
    point!("source.im_send_failed", [Counter], "source", "sim: source-to-MAB IM handoffs that failed"),
    point!("stabilize.check", [Event], "stabilize", "one self-stabilization audit of delivery state ran"),
    point!("stabilize.checks", [Counter], "stabilize", "self-stabilization audits run"),
    point!("stabilize.violation", [Event], "stabilize", "an audit found and repaired an invariant violation"),
    point!("stabilize.violations", [Counter], "stabilize", "invariant violations repaired by audits"),
    point!("store.evicted", [Counter], "store", "facts shed by per-scope LRU capacity bounds"),
    point!("store.expired", [Counter], "store", "facts dropped at end of TTL (lazy read or sweep)"),
    point!("store.hits", [Counter], "store", "store reads that returned a live fact"),
    point!("store.misses", [Counter], "store", "store reads that found nothing live"),
    point!("store.puts", [Counter], "store", "facts published into the soft-state store"),
    point!("store.size", [Gauge], "store", "facts currently held across all shards"),
    point!("store.sub_dropped", [Counter], "store", "lagging subscribers dropped to keep writers unblocked"),
    point!("store.subscribers", [Gauge], "store", "live store-event subscribers"),
    point!("store.sweeps", [Counter], "store", "periodic TTL sweep passes completed"),
    point!("user.duplicate_sightings", [Counter], "user", "sim: times a user saw the same alert more than once"),
    point!("user.email_sent", [Counter], "user", "sim: alert emails that reached a user"),
    point!("user.im_send_failed", [Counter], "user", "sim: MAB-to-user IM pushes that failed"),
    point!("user.im_sent", [Counter], "user", "sim: alert IMs that reached a user's client"),
    point!("user.reach_latency", [Summary], "user", "sim: emit-to-first-contact latency per alert"),
    point!("user.seen", [Counter], "user", "sim: alerts a user actually saw"),
    point!("user.seen_latency", [Summary], "user", "sim: emit-to-seen latency per alert"),
    point!("user.sms_sent", [Counter], "user", "sim: alert SMS messages that reached a user"),
    point!("wal.append", [Event], "wal", "one record was appended to the write-ahead log"),
    point!("wal.appends", [Counter], "wal", "WAL records appended"),
    point!("wal.replayed", [Event], "wal", "WAL replay finished after a restart, with record counts"),
    point!("wal.replays", [Counter], "wal", "WAL replays performed across restarts"),
    point!("watchdog.missed_probes", [Counter], "watchdog", "liveness probes that timed out or errored"),
    point!("watchdog.probe", [Event], "watchdog", "one watchdog liveness probe completed"),
    point!("watchdog.probe_latency_ms", [Histogram], "watchdog", "watchdog probe round-trip time"),
    point!("watchdog.probes", [Counter], "watchdog", "watchdog liveness probes sent"),
    point!("watchdog.service_down", [Event], "watchdog", "the watchdog declared the service down and escalated"),
];

/// Looks up a registered name.
pub fn find(name: &str) -> Option<&'static PointDef> {
    POINTS
        .binary_search_by(|def| def.name.cmp(name))
        .ok()
        .map(|i| &POINTS[i])
}

/// Renders the registry as a GitHub-markdown table — the generator behind
/// the README's Observability section (`simba-analyze points`).
pub fn markdown_table() -> String {
    let mut out = String::from("| Name | Kind | Scope | Meaning |\n|---|---|---|---|\n");
    for def in POINTS {
        let kinds: Vec<&str> = def.kinds.iter().map(|k| k.label()).collect();
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} |\n",
            def.name,
            kinds.join(" + "),
            def.scope,
            def.doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for pair in POINTS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "POINTS must stay sorted/unique: {} then {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn scope_matches_name_prefix() {
        for def in POINTS {
            let prefix = def.name.split('.').next().unwrap_or_default();
            assert_eq!(def.scope, prefix, "scope field must match {}", def.name);
            assert!(
                SCOPES.contains(&def.scope),
                "scope {} of {} not declared",
                def.scope,
                def.name
            );
        }
    }

    #[test]
    fn find_hits_and_misses() {
        assert!(find("wal.append").is_some());
        assert!(find("wal.appendz").is_none());
    }

    #[test]
    fn markdown_table_has_every_point() {
        let table = markdown_table();
        for def in POINTS {
            assert!(table.contains(def.name), "{} missing from table", def.name);
        }
    }
}
