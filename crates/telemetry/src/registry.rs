//! The shared, lock-cheap metrics registry used on concurrent paths.
//!
//! [`MetricsRegistry`] hands out [`CounterHandle`] / [`GaugeHandle`] /
//! [`HistogramHandle`] values: each handle is an `Arc` of atomics, so a hot
//! path pays one registry lock to *acquire* the handle and then records with
//! plain atomic stores — no lock, no allocation, no wall-clock read.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::escape_json;

/// A shared monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Overwrites the gauge with `value`.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// 64 base-2 log buckets plus a running count and sum; bucket `i` covers
/// `[2^i, 2^(i+1))` ms with bucket 0 covering `[0, 2)` — the same shape as
/// the single-threaded [`crate::Histogram`].
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ms: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ms: AtomicU64::new(0),
        }
    }

    fn observe_ms(&self, ms: u64) {
        let idx = if ms < 2 { 0 } else { 63 - ms.leading_zeros() as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ms.fetch_add(ms, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| (if i == 0 { 0 } else { 1u64 << i }, c))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ms: self.sum_ms.load(Ordering::Relaxed),
        }
    }
}

/// A shared log-bucketed millisecond histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Records one millisecond value.
    pub fn observe_ms(&self, ms: u64) {
        self.0.observe_ms(ms);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// A registry of named counters, gauges, and histograms shared across
/// threads. Cloning is cheap (one `Arc`); all clones see the same metrics.
///
/// ```
/// use simba_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let sends = registry.counter("runtime.sends");
/// sends.incr();
/// sends.add(2);
/// assert_eq!(registry.snapshot().counter("runtime.sends"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter called `name`, created at zero on first use. Cache the
    /// handle on hot paths; recording through it is lock-free.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        CounterHandle(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// The gauge called `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        GaugeHandle(Arc::clone(inner.gauges.entry(name.to_string()).or_default()))
    }

    /// The histogram called `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        HistogramHandle(Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        ))
    }

    /// A point-in-time copy of every metric, for rendering or assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket_lower_bound_ms, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed milliseconds (for mean latency).
    pub sum_ms: u64,
}

impl HistogramSnapshot {
    /// Mean observed value in milliseconds, or 0.0 if empty.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter called `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge called `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram called `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A plain-text rendering, one metric per line, for operators:
    ///
    /// ```text
    /// counter runtime.sends 3
    /// gauge   mab.backlog 0
    /// histo   watchdog.probe_latency_ms n=2 mean=7.5ms p_buckets=[(4,1),(8,1)]
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histo   {name} n={} mean={:.1}ms buckets={:?}",
                h.count,
                h.mean_ms(),
                h.buckets
            );
        }
        out
    }

    /// A single-line JSON rendering of the snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape_json(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum_ms\":{},\"buckets\":[",
                escape_json(k),
                h.count,
                h.sum_ms
            );
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.incr();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("x"), 5);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("backlog");
        g.set(7);
        g.set(3);
        assert_eq!(r.snapshot().gauge("backlog"), 3);
    }

    #[test]
    fn histogram_buckets_match_single_threaded_shape() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for ms in [0, 1, 2, 3, 1024] {
            h.observe_ms(ms);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(hs.sum_ms, 1030);
        assert!((hs.mean_ms() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn clones_see_the_same_registry() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter("c").incr();
        assert_eq!(r2.snapshot().counter("c"), 1);
    }

    #[test]
    fn handles_record_across_threads() {
        let r = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = r.counter("threaded");
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("threaded"), 4000);
    }

    #[test]
    fn render_text_lists_every_metric() {
        let r = MetricsRegistry::new();
        r.counter("a.sends").add(2);
        r.gauge("a.backlog").set(1);
        r.histogram("a.lat").observe_ms(5);
        let text = r.snapshot().render_text();
        assert!(text.contains("counter a.sends 2"), "{text}");
        assert!(text.contains("gauge   a.backlog 1"), "{text}");
        assert!(text.contains("histo   a.lat n=1"), "{text}");
    }

    #[test]
    fn to_json_is_well_formed() {
        let r = MetricsRegistry::new();
        r.counter("c").incr();
        r.gauge("g").set(9);
        r.histogram("h").observe_ms(3);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"c\":1"), "{json}");
        assert!(json.contains("\"g\":9"), "{json}");
        assert!(json.contains("\"h\":{\"count\":1,\"sum_ms\":3,\"buckets\":[[2,1]]}"), "{json}");
    }
}
