//! Pluggable event sinks: where emitted [`Event`]s go.
//!
//! Three implementations ship with the crate: [`NullSink`] (the default —
//! telemetry disabled, near-zero cost), [`RingBufferSink`] (bounded
//! in-memory buffer for tests and the CLI demo), and [`JsonLinesSink`]
//! (line-oriented JSON for operators; tail it with
//! `simba-cli telemetry tail`).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Mutex, MutexGuard};

use crate::event::Event;

/// Receives every emitted event.
///
/// Implementations must be cheap and non-blocking-ish: they are called
/// inline from pipeline hot paths. They must also never consult the wall
/// clock — the event carries its own timestamp (see the determinism
/// invariant in `DESIGN.md`).
pub trait TelemetrySink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
}

/// Discards everything; the default when telemetry is disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory.
///
/// Used by tests (read events back with [`RingBufferSink::events`]) and by
/// the CLI demo. Oldest events are dropped once the buffer is full;
/// [`RingBufferSink::dropped`] counts them.
#[derive(Debug)]
pub struct RingBufferSink {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            inner: Mutex::new(RingInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("ring sink poisoned").events.iter().cloned().collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").dropped
    }
}

impl TelemetrySink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("ring sink poisoned");
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event.clone());
    }
}

/// Writes each event as one line of JSON to any [`Write`]r.
///
/// The format is stable and parseable back with
/// [`Event::from_json_line`]; `simba-cli telemetry tail <file>`
/// pretty-prints it. Write errors are swallowed — telemetry must never
/// take the pipeline down.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Locks and returns the underlying writer (e.g. to flush a file, or
    /// to inspect a `Vec<u8>` in tests).
    pub fn writer(&self) -> MutexGuard<'_, W> {
        self.writer.lock().expect("json sink poisoned")
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("json sink poisoned");
        let _ = writeln!(w, "{}", event.to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_records_nothing_observable() {
        // The acceptance criterion: a no-op sink adds zero events anywhere.
        let sink = NullSink;
        sink.record(&Event::new("x", 1));
        // Nothing to assert on NullSink itself; pair it with a ring buffer
        // to show the contrast.
        let ring = RingBufferSink::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.events(), Vec::new());
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = RingBufferSink::new(2);
        for i in 0..5u64 {
            sink.record(&Event::new("e", i));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let times: Vec<u64> = sink.events().iter().map(|e| e.time_ms).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn json_lines_round_trip() {
        let sink = JsonLinesSink::new(Vec::new());
        let ev1 = Event::new("wal.append", 10).with("id", 1u64);
        let ev2 = Event::new("mab.routed", 20).with("tier", "im\tfirst");
        sink.record(&ev1);
        sink.record(&ev2);
        let bytes = sink.writer().clone();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::from_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, vec![ev1, ev2]);
    }
}
