//! `simba-telemetry` — dependency-free structured events, spans, and
//! metrics for the SIMBA workspace.
//!
//! SIMBA's dependability story (paper §4.2, §5) rests on being able to
//! *see* what the fault-tolerance stack is doing: WAL appends and replays,
//! watchdog probes, delivery-mode fallbacks, rejuvenation triggers,
//! manager sanity checks. This crate is the one vocabulary every layer
//! shares — `simba-core`, `simba-runtime`, `simba-net`, `simba-client`,
//! and `simba-cli` all emit through it, and the experiment harness in
//! `simba-sim` re-uses its metric types.
//!
//! It is deliberately `std`-only (no `tracing`, no `metrics` crates): the
//! workspace builds offline, and the paper's mechanisms need nothing more
//! than counters, log-bucketed histograms, and a line-oriented event
//! stream.
//!
//! # The determinism invariant
//!
//! Telemetry must never change simulation behavior. Concretely:
//!
//! * **No wall-clock reads on sim paths.** Every [`Event`] carries an
//!   explicit `time_ms` supplied by the caller (virtual `SimTime` under
//!   simulation, runtime-clock milliseconds live). [`Span`]s end with an
//!   explicit timestamp too — there is no `Drop`-based timing.
//! * **No observable side channels.** Sinks receive copies; nothing in the
//!   pipeline ever reads a sink or a metric back to make a decision.
//!
//! The property test in `tests/determinism.rs` (workspace root) runs the
//! same seeded scenario twice and asserts the event streams are identical.
//!
//! # Example: register a sink, emit, read back
//!
//! ```
//! use simba_telemetry::{Event, RingBufferSink, Telemetry};
//! use std::sync::Arc;
//!
//! // Keep a handle to the sink so we can read events back afterwards.
//! let sink = Arc::new(RingBufferSink::new(128));
//! let telemetry = Telemetry::with_sink(sink.clone());
//!
//! // Hot paths emit events with explicit timestamps and typed fields...
//! telemetry.emit(Event::new("wal.append", 1_500).with("wal_id", 7u64));
//!
//! // ...and record metrics through cached lock-free handles.
//! let sends = telemetry.metrics().counter("runtime.sends");
//! sends.incr();
//!
//! // Spans time an operation between two explicit instants.
//! let span = telemetry.span("mab.route", 2_000);
//! span.end(2_040); // emits `mab.route` with duration_ms=40
//!
//! let events = sink.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "wal.append");
//! assert_eq!(events[1].name, "mab.route");
//! assert_eq!(telemetry.metrics().snapshot().counter("runtime.sends"), 1);
//! ```
//!
//! # Wiring into components
//!
//! Every instrumented component takes a [`Telemetry`] via a
//! `with_telemetry(..)` builder and defaults to [`Telemetry::disabled`],
//! so constructing a component without telemetry costs one `Arc` and each
//! skipped emission is a single branch.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod metrics;
pub mod points;
mod registry;
mod sink;

pub use event::{escape_json, Event, JsonError, Value};
pub use metrics::{Counter, Histogram, MetricSet, Summary};
pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use sink::{JsonLinesSink, NullSink, RingBufferSink, TelemetrySink};

use std::fmt;
use std::sync::Arc;

/// The handle components hold: a sink for events plus a metrics registry.
///
/// Cloning is cheap (two `Arc`s) and every clone shares the same sink and
/// registry. The [`Default`] / [`Telemetry::disabled`] flavor drops events
/// on the floor and keeps metrics in a private registry, so uninstrumented
/// construction stays free.
#[derive(Clone)]
pub struct Telemetry {
    sink: Arc<dyn TelemetrySink>,
    metrics: MetricsRegistry,
    enabled: bool,
}

impl Telemetry {
    /// Telemetry that discards events ([`NullSink`]); metrics still work.
    pub fn disabled() -> Self {
        Telemetry {
            sink: Arc::new(NullSink),
            metrics: MetricsRegistry::new(),
            enabled: false,
        }
    }

    /// Telemetry emitting to `sink` with a fresh metrics registry.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry {
            sink,
            metrics: MetricsRegistry::new(),
            enabled: true,
        }
    }

    /// Telemetry emitting to `sink` recording into an existing `metrics`
    /// registry (e.g. one shared with other components).
    pub fn new(sink: Arc<dyn TelemetrySink>, metrics: MetricsRegistry) -> Self {
        Telemetry {
            sink,
            metrics,
            enabled: true,
        }
    }

    /// Whether events actually go anywhere. Use to skip building
    /// expensive field values:
    ///
    /// ```
    /// # let telemetry = simba_telemetry::Telemetry::disabled();
    /// if telemetry.enabled() {
    ///     // only now format the big debug string...
    /// }
    /// ```
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sends `event` to the sink (a no-op when disabled).
    pub fn emit(&self, event: Event) {
        if self.enabled {
            self.sink.record(&event);
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Starts a span at the explicit instant `start_ms`. Call
    /// [`Span::end`] with the finishing instant; the span then emits one
    /// event named `name` carrying `duration_ms` and records the duration
    /// into the histogram `<name>_ms`.
    pub fn span(&self, name: impl Into<String>, start_ms: u64) -> Span {
        Span {
            telemetry: self.clone(),
            name: name.into(),
            start_ms,
            fields: Vec::new(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// An in-flight timed operation; see [`Telemetry::span`].
///
/// Spans are ended *explicitly* with a caller-supplied timestamp — there is
/// deliberately no `Drop` impl reading a clock, because that would smuggle
/// wall-clock time into deterministic simulation paths.
#[derive(Debug)]
#[must_use = "a span only emits when end() is called"]
pub struct Span {
    telemetry: Telemetry,
    name: String,
    start_ms: u64,
    fields: Vec<(String, Value)>,
}

impl Span {
    /// Attaches a field to the event the span will emit.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Ends the span at `end_ms`, emitting the event and recording the
    /// duration into the `<name>_ms` histogram. Durations are saturating:
    /// an `end_ms` before `start_ms` records 0.
    pub fn end(self, end_ms: u64) {
        let duration_ms = end_ms.saturating_sub(self.start_ms);
        if self.telemetry.enabled {
            self.telemetry
                .metrics
                .histogram(&format!("{}_ms", self.name))
                .observe_ms(duration_ms);
            let mut event = Event::new(self.name, end_ms).with("duration_ms", duration_ms);
            event.fields.extend(self.fields);
            self.telemetry.sink.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.emit(Event::new("x", 1));
        t.span("op", 0).end(10);
        // Metrics registry still usable (but the span skipped it too).
        assert_eq!(t.metrics().snapshot().histograms.len(), 0);
    }

    #[test]
    fn with_sink_emits_and_clones_share() {
        let sink = Arc::new(RingBufferSink::new(16));
        let t = Telemetry::with_sink(sink.clone());
        let t2 = t.clone();
        t.emit(Event::new("a", 1));
        t2.emit(Event::new("b", 2));
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        t.metrics().counter("c").incr();
        assert_eq!(t2.metrics().snapshot().counter("c"), 1);
    }

    #[test]
    fn span_emits_duration_event_and_histogram() {
        let sink = Arc::new(RingBufferSink::new(16));
        let t = Telemetry::with_sink(sink.clone());
        t.span("mab.route", 100).with("user", "alice").end(140);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "mab.route");
        assert_eq!(events[0].time_ms, 140);
        assert_eq!(events[0].field("duration_ms"), Some(&Value::U64(40)));
        assert_eq!(events[0].field("user"), Some(&Value::Str("alice".into())));
        let snap = t.metrics().snapshot();
        assert_eq!(snap.histogram("mab.route_ms").unwrap().count, 1);
    }

    #[test]
    fn span_duration_saturates() {
        let sink = Arc::new(RingBufferSink::new(4));
        let t = Telemetry::with_sink(sink.clone());
        t.span("op", 100).end(50);
        assert_eq!(sink.events()[0].field("duration_ms"), Some(&Value::U64(0)));
    }

    #[test]
    fn shared_registry_flavor() {
        let registry = MetricsRegistry::new();
        let t = Telemetry::new(Arc::new(NullSink), registry.clone());
        t.metrics().counter("shared").incr();
        assert_eq!(registry.snapshot().counter("shared"), 1);
    }
}
