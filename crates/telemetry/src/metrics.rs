//! Single-threaded metric primitives: counters, summaries (exact
//! percentiles over retained samples), and log-bucketed histograms.
//!
//! These types were promoted from `simba-sim`'s experiment harness so the
//! live runtime, CLI, and simulation all share one vocabulary; `simba-sim`
//! re-exports them (plus `SimDuration` convenience glue) for backward
//! compatibility. For the shared, thread-safe flavor used on concurrent
//! paths, see [`crate::MetricsRegistry`].

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A summary of observed values with exact percentiles.
///
/// Retains all samples; experiment runs observe at most a few hundred
/// thousand values, so exactness is worth the memory.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one value. Non-finite values are ignored (and would only
    /// arise from a bug in a sampler, which clamps already).
    pub fn observe(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest observed value, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observed value, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact percentile in `[0, 100]` (nearest-rank), or 0.0 if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        self.samples[rank]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Fraction of observations strictly below `threshold` (0.0 if empty).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let under = self.samples.iter().filter(|&&v| v < threshold).count();
        under as f64 / self.samples.len() as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}",
            s.count(),
            s.mean(),
            s.percentile(50.0),
            s.percentile(95.0),
            s.max()
        )
    }
}

/// A base-2 log-bucketed histogram over non-negative millisecond values.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ms, with bucket 0 covering `[0, 2)`.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one millisecond value.
    pub fn observe_ms(&mut self, ms: u64) {
        let idx = if ms < 2 { 0 } else { 63 - ms.leading_zeros() as usize };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `(bucket_lower_bound_ms, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Fraction of observations at or below `ms`.
    pub fn fraction_le_ms(&self, ms: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut covered = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            if upper <= ms {
                covered += c;
            }
        }
        covered as f64 / self.count as f64
    }
}

/// A named collection of summaries and counters, keyed by `&'static str`-like
/// names, used as the per-run metrics sink in experiments.
#[derive(Debug, Default)]
pub struct MetricSet {
    summaries: BTreeMap<String, Summary>,
    counters: BTreeMap<String, Counter>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Records `value` into the summary called `name`, creating it on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.summaries.entry(name.to_string()).or_default().observe(value);
    }

    /// Increments the counter called `name`.
    pub fn incr(&mut self, name: &str) {
        self.counters.entry(name.to_string()).or_default().incr();
    }

    /// Adds `n` to the counter called `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// The summary called `name`, if it was ever observed.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Mutable access (for percentile queries which sort lazily).
    pub fn summary_mut(&mut self, name: &str) -> Option<&mut Summary> {
        self.summaries.get_mut(name)
    }

    /// The counter value called `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// All summary names, sorted.
    pub fn summary_names(&self) -> impl Iterator<Item = &str> {
        self.summaries.keys().map(String::as_str)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_stats() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.observe(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let mut s = Summary::new();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn summary_fraction_below() {
        let mut s = Summary::new();
        for v in [0.5, 0.9, 1.0, 1.5] {
            s.observe(v);
        }
        assert!((s.fraction_below(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_below(10.0), 1.0);
        assert_eq!(Summary::new().fraction_below(1.0), 0.0);
    }

    #[test]
    fn summary_percentile_after_more_observations() {
        let mut s = Summary::new();
        s.observe(10.0);
        assert_eq!(s.median(), 10.0);
        s.observe(20.0);
        s.observe(30.0);
        assert_eq!(s.median(), 20.0); // re-sorts after new data
    }

    #[test]
    fn summary_display() {
        let mut s = Summary::new();
        s.observe(2.0);
        let text = format!("{s}");
        assert!(text.contains("n=1"));
        assert!(text.contains("mean=2.000"));
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.observe_ms(0);
        h.observe_ms(1);
        h.observe_ms(2);
        h.observe_ms(3);
        h.observe_ms(1024);
        assert_eq!(h.count(), 5);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
    }

    #[test]
    fn histogram_fraction() {
        let mut h = Histogram::new();
        for ms in [1u64, 1, 1, 1000, 5000] {
            h.observe_ms(ms);
        }
        assert!((h.fraction_le_ms(1) - 0.6).abs() < 1e-12);
        assert_eq!(h.fraction_le_ms(u64::MAX / 2), 1.0);
        assert_eq!(Histogram::new().fraction_le_ms(10), 0.0);
    }

    #[test]
    fn metric_set_round_trip() {
        let mut m = MetricSet::new();
        m.observe("latency", 1.5);
        m.observe("latency", 2.5);
        m.incr("delivered");
        m.add("delivered", 2);
        assert_eq!(m.counter("delivered"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.summary("latency").unwrap().count(), 2);
        assert!((m.summary("latency").unwrap().mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.summary_names().collect::<Vec<_>>(), vec!["latency"]);
        assert_eq!(m.counter_names().collect::<Vec<_>>(), vec!["delivered"]);
    }
}
