//! The `simba-cli` binary: a thin shim over [`simba_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = simba_cli::run(&args);
    print!("{}", outcome.output);
    std::process::exit(outcome.code);
}
