//! The subcommand implementations.

use crate::Outcome;
use simba_core::address::AddressBook;
use simba_core::alert::{Alert, AlertId, IncomingAlert, Urgency};
use simba_core::delivery::{
    AttemptOutcome, DeliveryCommand, DeliveryEvent, DeliveryProcess, SendFailure,
};
use simba_core::mode::DeliveryMode;
use simba_core::wal::{FileWal, WriteAheadLog};
use simba_sim::SimTime;
use std::fmt::Write as _;

fn read_file(path: &str) -> Result<String, Outcome> {
    std::fs::read_to_string(path)
        .map_err(|e| Outcome::error(format!("cannot read {path}: {e}\n")))
}

/// `validate addresses|mode|registry <file>`.
pub fn validate(args: &[String]) -> Outcome {
    let [kind, path] = args else {
        return Outcome::usage("validate takes a document kind and a file");
    };
    let content = match read_file(path) {
        Ok(c) => c,
        Err(o) => return o,
    };
    match kind.as_str() {
        "addresses" => match AddressBook::from_xml(&content) {
            Ok(book) => {
                let enabled = book.enabled().count();
                Outcome::ok(format!(
                    "OK: {} addresses ({} enabled)\n",
                    book.len(),
                    enabled
                ))
            }
            Err(e) => Outcome::error(format!("INVALID address book: {e}\n")),
        },
        "mode" => match DeliveryMode::from_xml(&content) {
            Ok(mode) => Outcome::ok(format!(
                "OK: delivery mode {:?} with {} block(s)\n",
                mode.name,
                mode.len()
            )),
            Err(e) => Outcome::error(format!("INVALID delivery mode: {e}\n")),
        },
        "registry" => match simba_core::registry_from_xml(&content) {
            Ok(reg) => Outcome::ok(format!(
                "OK: {} user(s), {} categor(ies)\n",
                reg.users().count(),
                reg.categories().count()
            )),
            Err(e) => Outcome::error(format!("INVALID registry: {e}\n")),
        },
        other => Outcome::usage(&format!("unknown document kind {other:?}")),
    }
}

/// `explain --addresses f --mode f [--disable n]... [--fail n]... [--ack n]`.
pub fn explain(args: &[String]) -> Outcome {
    let mut addresses_path = None;
    let mut mode_path = None;
    let mut disabled = Vec::new();
    let mut failing = Vec::new();
    let mut acked = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| Outcome::usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addresses" => addresses_path = Some(value()),
            "--mode" => mode_path = Some(value()),
            "--disable" => disabled.push(value()),
            "--fail" => failing.push(value()),
            "--ack" => acked = Some(value()),
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    let unwrap2 = |v: Option<Result<String, Outcome>>, name: &str| match v {
        Some(Ok(s)) => Ok(s),
        Some(Err(o)) => Err(o),
        None => Err(Outcome::usage(&format!("--{name} is required"))),
    };
    let addresses_path = match unwrap2(addresses_path, "addresses") {
        Ok(p) => p,
        Err(o) => return o,
    };
    let mode_path = match unwrap2(mode_path, "mode") {
        Ok(p) => p,
        Err(o) => return o,
    };
    let disabled: Vec<String> = match disabled.into_iter().collect() {
        Ok(v) => v,
        Err(o) => return o,
    };
    let failing: Vec<String> = match failing.into_iter().collect() {
        Ok(v) => v,
        Err(o) => return o,
    };
    let acked: Option<String> = match acked.transpose() {
        Ok(v) => v,
        Err(o) => return o,
    };

    let book_xml = match read_file(&addresses_path) {
        Ok(c) => c,
        Err(o) => return o,
    };
    let mode_xml = match read_file(&mode_path) {
        Ok(c) => c,
        Err(o) => return o,
    };
    let mut book = match AddressBook::from_xml(&book_xml) {
        Ok(b) => b,
        Err(e) => return Outcome::error(format!("INVALID address book: {e}\n")),
    };
    let mode = match DeliveryMode::from_xml(&mode_xml) {
        Ok(m) => m,
        Err(e) => return Outcome::error(format!("INVALID delivery mode: {e}\n")),
    };
    for name in &disabled {
        if !book.set_enabled(name, false) {
            return Outcome::error(format!("--disable: no address named {name:?}\n"));
        }
    }

    Outcome::ok(explain_cascade(&mode, &book, &failing, acked.as_deref()))
}

/// Dry-runs the mode and renders the cascade.
pub fn explain_cascade(
    mode: &DeliveryMode,
    book: &AddressBook,
    failing: &[String],
    acked: Option<&str>,
) -> String {
    let alert = Alert {
        id: AlertId(0),
        source: "dry-run".into(),
        category: "dry-run".into(),
        text: "dry-run alert".into(),
        origin_timestamp: SimTime::ZERO,
        received_at: SimTime::ZERO,
        urgency: Urgency::Normal,
    };
    let mut out = String::new();
    let _ = writeln!(out, "delivery mode {:?} against {} address(es):", mode.name, book.len());

    let (mut process, mut commands) = DeliveryProcess::start(alert, mode.clone(), book, SimTime::ZERO);
    let mut now = SimTime::ZERO;
    let mut guard = 0;
    while !commands.is_empty() {
        guard += 1;
        if guard > 50 {
            let _ = writeln!(out, "  ... (cascade truncated)");
            break;
        }
        let mut next = Vec::new();
        for command in commands {
            match command {
                DeliveryCommand::Send { attempt, comm_type, address_name, .. } => {
                    if failing.contains(&address_name) {
                        let _ = writeln!(out, "  [{now}] send {comm_type} via {address_name:?} → FAILS");
                        next.extend(process.handle(
                            DeliveryEvent::SendFailed { attempt, failure: SendFailure::RecipientUnreachable },
                            book,
                            now,
                        ));
                    } else {
                        let _ = writeln!(out, "  [{now}] send {comm_type} via {address_name:?} → accepted");
                        next.extend(process.handle(DeliveryEvent::SendAccepted { attempt }, book, now));
                        if acked == Some(address_name.as_str()) {
                            let _ = writeln!(out, "  [{now}] user acknowledges via {address_name:?}");
                            next.extend(process.handle(DeliveryEvent::Acked { attempt }, book, now));
                        }
                    }
                }
                DeliveryCommand::StartTimer { timer, after } => {
                    // Fast-forward: if the process is still waiting when the
                    // window expires, the timer drives the fallback.
                    now += after;
                    let _ = writeln!(out, "  [{now}] ack window of {after} expires");
                    next.extend(process.handle(DeliveryEvent::TimerFired { timer }, book, now));
                }
            }
        }
        commands = next;
    }

    let _ = writeln!(out, "outcome: {:?}", process.status());
    let _ = writeln!(out, "attempts:");
    for a in process.attempts() {
        let verdict = match a.outcome {
            AttemptOutcome::Pending => "pending".to_string(),
            AttemptOutcome::Accepted => "accepted".to_string(),
            AttemptOutcome::Failed(f) => format!("failed: {f}"),
            AttemptOutcome::Acked(at) => format!("acknowledged at {at}"),
        };
        let _ = writeln!(
            out,
            "  block {} {:>5} via {:<12} {}",
            a.block + 1,
            a.comm_type.to_string(),
            format!("{:?}", a.address_name),
            verdict
        );
    }
    out
}

/// `wal inspect <file>`.
pub fn wal(args: &[String]) -> Outcome {
    let [action, path] = args else {
        return Outcome::usage("wal takes an action and a file");
    };
    if action != "inspect" {
        return Outcome::usage(&format!("unknown wal action {action:?}"));
    }
    match FileWal::open_tolerant(path) {
        Ok(wal) => {
            let unprocessed = wal.unprocessed();
            let mut out = format!(
                "{}: {} record(s), {} unprocessed\n",
                path,
                wal.len(),
                unprocessed.len()
            );
            for r in unprocessed {
                let _ = writeln!(
                    out,
                    "  #{} received {} from {:?}: {}",
                    r.id,
                    r.received_at,
                    r.alert.source,
                    summary_line(&r.alert.body)
                );
            }
            Outcome::ok(out)
        }
        Err(e) => Outcome::error(format!("cannot open log: {e}\n")),
    }
}

fn summary_line(body: &str) -> String {
    let one_line: String = body.chars().map(|c| if c == '\n' { ' ' } else { c }).collect();
    if one_line.chars().count() > 60 {
        let prefix: String = one_line.chars().take(57).collect();
        format!("{prefix}...")
    } else {
        one_line
    }
}

/// `demo pipeline|faultlog [...]`.
pub fn demo(args: &[String]) -> Outcome {
    let Some(which) = args.first() else {
        return Outcome::usage("demo takes a scenario name");
    };
    let mut seed = 42u64;
    let mut alerts = 50u64;
    let mut fixes = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return Outcome::usage("--seed needs a number"),
            },
            "--alerts" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => alerts = v,
                None => return Outcome::usage("--alerts needs a number"),
            },
            "--fixes" => fixes = true,
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    match which.as_str() {
        "pipeline" => Outcome::ok(demo_pipeline(seed, alerts)),
        "faultlog" => Outcome::ok(demo_faultlog(seed, fixes)),
        other => Outcome::usage(&format!("unknown demo {other:?}")),
    }
}

fn demo_pipeline(seed: u64, alerts: u64) -> String {
    use simba_bench::harness::{build, handle, Ev, PipelineOptions};
    use simba_core::alert::IncomingAlert;

    let horizon = SimTime::from_secs(120 + alerts * 60);
    let mut engine = build(PipelineOptions::new(seed, horizon));
    for i in 0..alerts {
        let at = SimTime::from_secs(30 + i * 60);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor demo {i} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag: i, alert });
    }
    engine.run_until(horizon, handle);
    let world = engine.world();
    let seen = world
        .tracks
        .values()
        .filter(|t| t.emitted_at.is_some() && t.seen_at.is_some())
        .count();
    let mut out = format!("pipeline demo: {alerts} alerts, seed {seed}\n");
    let _ = writeln!(out, "  seen by the user: {seen}/{alerts}");
    for name in ["im.one_way", "source.ack_rtt", "user.seen_latency"] {
        if let Some(s) = world.metrics.summary(name) {
            let _ = writeln!(out, "  {name}: {s}");
        }
    }
    out
}

/// `telemetry demo|tail [...]` — inspect the telemetry spine.
pub fn telemetry(args: &[String]) -> Outcome {
    let Some(which) = args.first() else {
        return Outcome::usage("telemetry takes an action (demo or tail)");
    };
    match which.as_str() {
        "demo" => {
            let mut seed = 42u64;
            let mut alerts = 10u64;
            let mut json = false;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return Outcome::usage("--seed needs a number"),
                    },
                    "--alerts" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => alerts = v,
                        None => return Outcome::usage("--alerts needs a number"),
                    },
                    "--json" => json = true,
                    other => return Outcome::usage(&format!("unknown flag {other:?}")),
                }
            }
            Outcome::ok(telemetry_demo(seed, alerts, json))
        }
        "tail" => {
            let [_, path] = args else {
                return Outcome::usage("telemetry tail takes a .jsonl file");
            };
            telemetry_tail(path)
        }
        other => Outcome::usage(&format!("unknown telemetry action {other:?}")),
    }
}

fn telemetry_demo(seed: u64, alerts: u64, json: bool) -> String {
    use simba_core::delivery::{DeliveryEvent, SendFailure};
    use simba_core::mab::{MabEvent, MyAlertBuddy};
    use simba_core::wal::InMemoryWal;
    use simba_core::{
        Address, AddressBook, Classifier, CommType, DeliveryCommand, DeliveryMode,
        IncomingAlert, KeywordField, MabCommand, MabConfig, RejuvenationPolicy,
        SubscriptionRegistry, Telemetry, UserId,
    };
    use simba_sim::{SimDuration, SimRng};
    use simba_telemetry::RingBufferSink;
    use std::sync::Arc;

    // One subscriber, IM with a 60 s ack window falling back to email —
    // the paper's canonical urgent-alert mode.
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "demo");
    classifier.map_keyword("Sensor", "Home.Security");
    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
    book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home.Security", alice, "Urgent").unwrap();
    let config = MabConfig {
        classifier,
        registry,
        rejuvenation: RejuvenationPolicy::default(),
    };

    let sink = Arc::new(RingBufferSink::new(4_096));
    let telemetry = Telemetry::with_sink(sink.clone());

    // The soft-state store feeds presence-aware routing: alice is "away"
    // for the first alert's delivery, so its IM block is skipped; by the
    // second alert the fact has expired (a lazy read drops it, counting
    // `store.expired`) and routing reverts to the static profile.
    let store = simba_store::SoftStateStore::new(Default::default(), telemetry.clone());
    store.put(
        simba_store::PRESENCE_SCOPE,
        "alice",
        "away",
        SimDuration::from_secs(45),
        "wish",
        SimTime::ZERO,
    );

    let mut mab = MyAlertBuddy::new(config, InMemoryWal::new(), SimTime::ZERO)
        .with_telemetry(telemetry.clone())
        .with_mode_selector(Box::new(simba_runtime::StoreModeSelector::new(store)));
    let mut rng = SimRng::new(seed);

    let first_send = |cmds: &[MabCommand]| {
        cmds.iter().find_map(|c| match c {
            MabCommand::Channel {
                delivery,
                command: DeliveryCommand::Send { attempt, .. },
                ..
            } => Some((*delivery, *attempt)),
            _ => None,
        })
    };

    for i in 0..alerts {
        let at = SimTime::from_secs(30 + i * 60);
        let alert =
            IncomingAlert::from_im("aladdin-gw", format!("Basement Sensor demo {i} ON"), at);
        let cmds = mab.handle(MabEvent::AlertByIm(alert), at);
        let Some((id, attempt)) = first_send(&cmds) else {
            continue;
        };
        if i % 5 == 4 {
            // Every fifth alert the IM send fails synchronously, driving
            // the fallback ladder into the email block.
            let failed_at = at + SimDuration::from_secs(1);
            let cmds = mab.handle(
                MabEvent::Delivery {
                    id,
                    event: DeliveryEvent::SendFailed {
                        attempt,
                        failure: SendFailure::ChannelDown,
                    },
                },
                failed_at,
            );
            if let Some((id2, attempt2)) = first_send(&cmds) {
                mab.handle(
                    MabEvent::Delivery {
                        id: id2,
                        event: DeliveryEvent::SendAccepted { attempt: attempt2 },
                    },
                    failed_at + SimDuration::from_secs(2),
                );
            }
        } else {
            let accepted_at = at + SimDuration::from_secs(1);
            mab.handle(
                MabEvent::Delivery { id, event: DeliveryEvent::SendAccepted { attempt } },
                accepted_at,
            );
            let ack_lag = SimDuration::from_secs(rng.range(2, 45));
            mab.handle(
                MabEvent::Delivery { id, event: DeliveryEvent::Acked { attempt } },
                accepted_at + ack_lag,
            );
        }
    }

    let events = sink.events();
    let snapshot = telemetry.metrics().snapshot();
    let mut out = String::new();
    if json {
        for e in &events {
            let _ = writeln!(out, "{}", e.to_json_line());
        }
        out.push_str(&snapshot.to_json());
        out.push('\n');
    } else {
        let _ = writeln!(
            out,
            "telemetry demo: {alerts} alerts, seed {seed}, {} events",
            events.len()
        );
        for e in &events {
            let _ = writeln!(out, "{}", e);
        }
        out.push('\n');
        out.push_str(&snapshot.render_text());
    }
    out
}

fn telemetry_tail(path: &str) -> Outcome {
    use simba_telemetry::Event;
    let content = match read_file(path) {
        Ok(c) => c,
        Err(o) => return o,
    };
    let mut out = String::new();
    let mut parsed = 0u64;
    let mut bad = 0u64;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Ok(e) => {
                parsed += 1;
                let _ = writeln!(out, "{}", e);
            }
            Err(e) => {
                bad += 1;
                let _ = writeln!(out, "line {}: unparseable event: {e}", lineno + 1);
            }
        }
    }
    let _ = writeln!(out, "{parsed} event(s), {bad} unparseable line(s)");
    Outcome::ok(out)
}

/// `host --sharded [--users N] [--active A] [--waves W] [--shards S]
/// [--threads]` — run the sharded/hibernating host (the E8 pipeline) at
/// an interactive scale and report roster vs live-buddy bounds,
/// group-commit amortization, and throughput. `--threads` pins each
/// shard worker to its own OS thread (the multi-core mode) instead of
/// the deterministic single-threaded executor.
fn host_sharded(args: &[String]) -> Outcome {
    use simba_bench::experiments::e8_sharded::{measure, E8Options};

    // Interactive default: a thousandth of the full E8 shape.
    let mut opts = E8Options::smoke();
    opts.users = 1_000;
    opts.active = 100;
    opts.waves = 5;
    opts.shards = 4;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let field = match flag.as_str() {
            "--users" => &mut opts.users,
            "--active" => &mut opts.active,
            "--waves" => &mut opts.waves,
            "--shards" => &mut opts.shards,
            "--threads" => {
                opts.threads = true;
                continue;
            }
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        };
        match it.next().and_then(|v| v.parse().ok()) {
            Some(v) => *field = v,
            None => return Outcome::usage(&format!("{flag} needs a number")),
        }
    }
    if opts.active == 0 || opts.active > opts.users || opts.waves == 0 || opts.shards == 0 {
        return Outcome::usage("need 0 < --active <= --users, --waves >= 1, --shards >= 1");
    }
    if opts.threads {
        // Real threads pace on wall time; the virtual-time hibernation
        // default (30 s) would keep the post-run park from completing.
        opts.hibernate_after = simba_sim::SimDuration::from_millis(250);
    }
    let (numbers, tables) = measure(opts);
    let mut out = format!(
        "sharded host: {} registered, {} active x {} waves over {} shards{}\n\n",
        opts.users,
        opts.active,
        opts.waves,
        opts.shards,
        if opts.threads { " (thread-per-shard)" } else { "" }
    );
    for t in &tables {
        out.push_str(&t.to_text());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "peak live buddies {} (of {} registered); {} hibernated after the sweep",
        numbers.peak_active, numbers.users, numbers.hibernated_final
    );
    let _ = writeln!(
        out,
        "{} alerts acked at {:.0} alerts/s; {:.0} log writes per group commit",
        numbers.acked, numbers.throughput, numbers.writes_per_commit
    );
    Outcome::ok(out)
}

/// `host [--sharded] [--users N] [--alerts M] [--ring R] [--seed S]` —
/// run the multi-user MabHost soak interactively and report the outcome
/// mix, bounded-state peaks/floors, and wall-clock throughput. With
/// `--sharded`, run the sharded/hibernating host instead (see
/// [`host_sharded`] for its flags).
pub fn host(args: &[String]) -> Outcome {
    use simba_bench::experiments::e3_host_soak::{measure, SoakOptions};

    if args.first().is_some_and(|a| a == "--sharded") {
        return host_sharded(&args[1..]);
    }
    let mut opts = SoakOptions::new(42);
    // Interactive default: a tenth of the full soak, still mixed-outcome.
    opts.users = 10;
    opts.alerts_per_user = 50;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--users" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.users = v,
                None => return Outcome::usage("--users needs a number"),
            },
            "--alerts" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.alerts_per_user = v,
                None => return Outcome::usage("--alerts needs a number"),
            },
            "--ring" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.completed_ring = v,
                None => return Outcome::usage("--ring needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return Outcome::usage("--seed needs a number"),
            },
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    if opts.users == 0 || opts.alerts_per_user == 0 {
        return Outcome::usage("--users and --alerts must be at least 1");
    }
    let (numbers, tables) = measure(opts);
    let mut out = format!(
        "host soak: {} users x {} alerts (seed {})\n\n",
        opts.users, opts.alerts_per_user, opts.seed
    );
    for t in &tables {
        out.push_str(&t.to_text());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "host routing: {} routed (host.routed), {} unrouted (host.unrouted)",
        numbers.routed, numbers.unrouted
    );
    let _ = writeln!(
        out,
        "{} deliveries drained to the floor at {:.0} alerts/s",
        numbers.finished, numbers.throughput
    );
    Outcome::ok(out)
}

/// `gateway serve|send|probe` — run the TCP front door, or talk to one.
pub fn gateway(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("serve") => gateway_serve(&args[1..]),
        Some("send") => gateway_send(&args[1..]),
        Some("probe") => gateway_probe(&args[1..]),
        _ => Outcome::usage("gateway takes serve, send, or probe"),
    }
}

/// One hosted user for `gateway serve`: accepts the given source and
/// routes `Sensor` alerts IM-then-email.
fn gateway_user_config(name: &str, source: &str) -> simba_core::MabConfig {
    use simba_core::address::{Address, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::{SubscriptionRegistry, UserId};
    use simba_sim::SimDuration;

    let mut classifier = Classifier::new();
    classifier.accept_source(source, KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = simba_core::address::AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    simba_core::MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

/// `gateway serve [--addr A] [--users N] [--duration-ms D] [--workers W]
/// [--queue Q] [--rate R] [--source S]` — host N users behind a live TCP
/// gateway for D milliseconds, then drain and report.
fn gateway_serve(args: &[String]) -> Outcome {
    use simba_gateway::{intake, pump_into_host, GatewayConfig, GatewayServer, RateLimit};
    use simba_runtime::{HostConfig, LoopbackChannels, MabHost, SharedChannels};
    use simba_telemetry::{RingBufferSink, Telemetry};
    use std::sync::Arc;
    use std::time::Duration;

    let mut addr = "127.0.0.1:0".to_string();
    let mut users = 10usize;
    let mut duration_ms = 2_000u64;
    let mut workers = 4usize;
    let mut queue = 1_024usize;
    let mut rate: Option<u32> = None;
    let mut source = "cli-src".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return Outcome::usage("--addr needs an address"),
            },
            "--users" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => users = v,
                None => return Outcome::usage("--users needs a number"),
            },
            "--duration-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => duration_ms = v,
                None => return Outcome::usage("--duration-ms needs a number"),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return Outcome::usage("--workers needs a number"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => queue = v,
                None => return Outcome::usage("--queue needs a number"),
            },
            "--rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => rate = Some(v),
                None => return Outcome::usage("--rate needs alerts/s"),
            },
            "--source" => match it.next() {
                Some(v) => source = v.clone(),
                None => return Outcome::usage("--source needs a name"),
            },
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    if users == 0 {
        return Outcome::usage("--users must be at least 1");
    }

    let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(8_192)));
    let (intake_tx, intake_rx) = intake(queue);
    let names: Vec<String> = (0..users).map(|i| format!("user{i:03}")).collect();
    let config = GatewayConfig {
        addr,
        workers,
        rate_limit: rate.map(|per_sec| RateLimit { burst: per_sec.max(1) * 2, per_sec }),
        known_users: Some(names.iter().cloned().collect()),
        ..GatewayConfig::default()
    };
    // The soft-state store is shared between the gateway (which serves
    // `simba-cli store put/get/watch`) and the host (whose buddies read
    // presence facts at delivery start).
    let store = simba_store::SoftStateStore::new(Default::default(), telemetry.clone());
    let server = match GatewayServer::bind_with_store(
        config,
        intake_tx,
        telemetry.clone(),
        Some(store.clone()),
    ) {
        Ok(server) => server,
        Err(e) => return Outcome::error(format!("cannot bind gateway: {e}\n")),
    };
    // Printed immediately (not via the Outcome) so clients can connect
    // while the serve window is still open.
    println!(
        "gateway listening on {} — {} users (user000..), source {:?}, serving {} ms",
        server.local_addr(),
        users,
        source,
        duration_ms
    );

    let supervisor = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(duration_ms));
        server.shutdown();
    });

    let pump_telemetry = telemetry.clone();
    let source_for_host = source.clone();
    let report = tokio::runtime::block_on(async move {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(5)));
        let (host, _notices) = MabHost::new(shared, HostConfig::default());
        let mut host = host
            .with_telemetry(pump_telemetry.clone())
            .with_store(store, simba_sim::SimDuration::from_secs(1));
        for name in &names {
            host.add_user(
                simba_core::subscription::UserId::new(name.clone()),
                gateway_user_config(name, &source_for_host),
            )
            .expect("fresh user");
        }
        let report = pump_into_host(&host, intake_rx, &pump_telemetry).await;
        host.shutdown().await;
        report
    });
    let _ = supervisor.join();

    let snap = telemetry.metrics().snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "gateway serve finished after {duration_ms} ms:");
    for counter in [
        "gateway.conn_opened",
        "gateway.accepted",
        "gateway.shed",
        "gateway.decode_err",
        "gateway.unknown_user",
        "gateway.idle_closed",
        "store.puts",
        "store.hits",
        "store.expired",
        "mab.mode_overridden",
    ] {
        let _ = writeln!(out, "  {:<22} {}", counter, snap.counter(counter));
    }
    let _ = writeln!(
        out,
        "host routing: {} routed (host.routed), {} unrouted (host.unrouted)",
        snap.counter("host.routed"),
        snap.counter("host.unrouted")
    );
    let _ = writeln!(out, "pump: {} routed, {} unrouted", report.routed, report.unrouted);
    Outcome::ok(out)
}

/// `gateway send --addr A [--user U] [--body B] [--count N]
/// [--channel im|email] [--source S]`.
fn gateway_send(args: &[String]) -> Outcome {
    use simba_gateway::proto::WireChannel;
    use simba_gateway::{ClientConfig, GatewayClient, SubmitResult};

    let mut addr = None;
    let mut user = "user000".to_string();
    let mut body = "Sensor demo ON".to_string();
    let mut count = 1u64;
    let mut channel = WireChannel::Im;
    let mut source = "cli-src".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--user" => match it.next() {
                Some(v) => user = v.clone(),
                None => return Outcome::usage("--user needs a name"),
            },
            "--body" => match it.next() {
                Some(v) => body = v.clone(),
                None => return Outcome::usage("--body needs text"),
            },
            "--count" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => return Outcome::usage("--count needs a number"),
            },
            "--channel" => match it.next().map(String::as_str) {
                Some("im") => channel = WireChannel::Im,
                Some("email") => channel = WireChannel::Email,
                _ => return Outcome::usage("--channel is im or email"),
            },
            "--source" => match it.next() {
                Some(v) => source = v.clone(),
                None => return Outcome::usage("--source needs a name"),
            },
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    let Some(addr) = addr else {
        return Outcome::usage("gateway send needs --addr");
    };

    let mut client = match GatewayClient::connect(addr.clone(), ClientConfig::default()) {
        Ok(client) => client,
        Err(e) => return Outcome::error(format!("cannot reach gateway at {addr}: {e}\n")),
    };
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut out = String::new();
    for i in 0..count {
        match client.submit(channel, &user, &source, &body) {
            Ok(SubmitResult::Accepted) => accepted += 1,
            Ok(SubmitResult::Rejected { reason, retry_after_ms }) => {
                rejected += 1;
                let _ = writeln!(
                    out,
                    "submission {}: rejected ({reason}, retry after {retry_after_ms} ms)",
                    i + 1
                );
            }
            Err(e) => return Outcome::error(format!("{out}submission {}: {e}\n", i + 1)),
        }
    }
    let _ = writeln!(
        out,
        "{accepted}/{count} accepted, {rejected} rejected ({} reconnect(s))",
        client.reconnects
    );
    Outcome::ok(out)
}

/// `gateway probe --addr A` — one health probe, counters printed.
fn gateway_probe(args: &[String]) -> Outcome {
    use simba_gateway::{ClientConfig, GatewayClient};

    let mut addr = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = it.next().cloned(),
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    let Some(addr) = addr else {
        return Outcome::usage("gateway probe needs --addr");
    };
    let mut client = match GatewayClient::connect(addr.clone(), ClientConfig::default()) {
        Ok(client) => client,
        Err(e) => return Outcome::error(format!("cannot reach gateway at {addr}: {e}\n")),
    };
    match client.probe() {
        Ok(stats) => Outcome::ok(format!(
            "gateway {addr}: accepted {}, shed {}, decode_err {}, queue depth {}/{}\n",
            stats.accepted, stats.shed, stats.decode_err, stats.queue_depth, stats.queue_capacity
        )),
        Err(e) => Outcome::error(format!("probe failed: {e}\n")),
    }
}

/// `store put|get|watch` — soft-state facts through a gateway's
/// `StateUpdate` / `StateQuery` frames.
pub fn store(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("put") => store_put(&args[1..]),
        Some("get") => store_get(&args[1..]),
        Some("watch") => store_watch(&args[1..]),
        _ => Outcome::usage("store takes put, get, or watch"),
    }
}

/// Shared flag parsing for the store commands.
struct StoreFlags {
    addr: Option<String>,
    scope: String,
    key: Option<String>,
    value: Option<String>,
    ttl_ms: u32,
    source: String,
    interval_ms: u64,
    duration_ms: u64,
}

impl StoreFlags {
    fn parse(args: &[String]) -> Result<StoreFlags, Outcome> {
        let mut flags = StoreFlags {
            addr: None,
            scope: "presence".to_string(),
            key: None,
            value: None,
            ttl_ms: 30_000,
            source: "cli".to_string(),
            interval_ms: 250,
            duration_ms: 5_000,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--addr" => flags.addr = it.next().cloned(),
                "--scope" => match it.next() {
                    Some(v) => flags.scope = v.clone(),
                    None => return Err(Outcome::usage("--scope needs a name")),
                },
                "--key" => flags.key = it.next().cloned(),
                "--value" => flags.value = it.next().cloned(),
                "--ttl-ms" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => flags.ttl_ms = v,
                    None => return Err(Outcome::usage("--ttl-ms needs a number")),
                },
                "--source" => match it.next() {
                    Some(v) => flags.source = v.clone(),
                    None => return Err(Outcome::usage("--source needs a name")),
                },
                "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => flags.interval_ms = v,
                    _ => return Err(Outcome::usage("--interval-ms needs a positive number")),
                },
                "--duration-ms" => match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => flags.duration_ms = v,
                    None => return Err(Outcome::usage("--duration-ms needs a number")),
                },
                other => return Err(Outcome::usage(&format!("unknown flag {other:?}"))),
            }
        }
        Ok(flags)
    }

    fn connect(&self) -> Result<simba_gateway::GatewayClient, Outcome> {
        use simba_gateway::{ClientConfig, GatewayClient};
        let Some(addr) = &self.addr else {
            return Err(Outcome::usage("store commands need --addr"));
        };
        GatewayClient::connect(addr.clone(), ClientConfig::default())
            .map_err(|e| Outcome::error(format!("cannot reach gateway at {addr}: {e}\n")))
    }

    fn key(&self) -> Result<&str, Outcome> {
        self.key
            .as_deref()
            .ok_or_else(|| Outcome::usage("store commands need --key"))
    }
}

/// `store put --addr A --key K --value V [--scope S] [--ttl-ms N] [--source S]`.
fn store_put(args: &[String]) -> Outcome {
    use simba_gateway::SubmitResult;
    let flags = match StoreFlags::parse(args) {
        Ok(f) => f,
        Err(o) => return o,
    };
    let (key, value) = match (flags.key(), &flags.value) {
        (Ok(k), Some(v)) => (k, v.as_str()),
        (Err(o), _) => return o,
        (_, None) => return Outcome::usage("store put needs --value"),
    };
    let mut client = match flags.connect() {
        Ok(c) => c,
        Err(o) => return o,
    };
    match client.state_put(&flags.scope, key, value, flags.ttl_ms, &flags.source) {
        Ok(SubmitResult::Accepted) => Outcome::ok(format!(
            "published {}/{} = {:?} (ttl {} ms)\n",
            flags.scope, key, value, flags.ttl_ms
        )),
        Ok(SubmitResult::Rejected { reason, .. }) => {
            Outcome::error(format!("rejected: {reason}\n"))
        }
        Err(e) => Outcome::error(format!("state put failed: {e}\n")),
    }
}

/// `store get --addr A --key K [--scope S]`.
fn store_get(args: &[String]) -> Outcome {
    let flags = match StoreFlags::parse(args) {
        Ok(f) => f,
        Err(o) => return o,
    };
    let key = match flags.key() {
        Ok(k) => k,
        Err(o) => return o,
    };
    let mut client = match flags.connect() {
        Ok(c) => c,
        Err(o) => return o,
    };
    match client.state_get(&flags.scope, key) {
        Ok(Some(fact)) => Outcome::ok(format!(
            "{}/{} = {:?} (generation {}, expires in {} ms)\n",
            flags.scope, key, fact.value, fact.generation, fact.ttl_remaining_ms
        )),
        Ok(None) => Outcome::ok(format!("{}/{}: no live fact\n", flags.scope, key)),
        Err(e) => Outcome::error(format!("state get failed: {e}\n")),
    }
}

/// `store watch --addr A --key K [--scope S] [--interval-ms N]
/// [--duration-ms N]` — polls the fact and reports each transition
/// (published, refreshed, expired). The wire protocol is one request in
/// flight, so watching is polling; the store's own subscription API is
/// in-process only.
fn store_watch(args: &[String]) -> Outcome {
    let flags = match StoreFlags::parse(args) {
        Ok(f) => f,
        Err(o) => return o,
    };
    let key = match flags.key() {
        Ok(k) => k,
        Err(o) => return o,
    };
    let mut client = match flags.connect() {
        Ok(c) => c,
        Err(o) => return o,
    };
    let started = std::time::Instant::now();
    let deadline = started + std::time::Duration::from_millis(flags.duration_ms);
    let mut out = String::new();
    let mut last: Option<u64> = None; // last seen generation
    let mut changes = 0u64;
    loop {
        let seen = match client.state_get(&flags.scope, key) {
            Ok(fact) => fact,
            Err(e) => return Outcome::error(format!("{out}state get failed: {e}\n")),
        };
        let at = started.elapsed().as_millis();
        match (&last, &seen) {
            (None, Some(fact)) => {
                changes += 1;
                let _ = writeln!(
                    out,
                    "[{at:>6} ms] published {}/{} = {:?} (generation {})",
                    flags.scope, key, fact.value, fact.generation
                );
            }
            (Some(gen), Some(fact)) if *gen != fact.generation => {
                changes += 1;
                let _ = writeln!(
                    out,
                    "[{at:>6} ms] refreshed {}/{} = {:?} (generation {})",
                    flags.scope, key, fact.value, fact.generation
                );
            }
            (Some(_), None) => {
                changes += 1;
                let _ = writeln!(out, "[{at:>6} ms] expired {}/{}", flags.scope, key);
            }
            _ => {}
        }
        last = seen.map(|f| f.generation);
        if std::time::Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(flags.interval_ms));
    }
    let _ = writeln!(
        out,
        "watched {}/{} for {} ms: {} change(s)",
        flags.scope, key, flags.duration_ms, changes
    );
    Outcome::ok(out)
}

fn demo_faultlog(seed: u64, fixes: bool) -> String {
    use simba_bench::faultlog::{run_campaign, CampaignOptions};
    let result = run_campaign(&CampaignOptions {
        seed,
        with_fixes: fixes,
        ..CampaignOptions::default()
    });
    let mut out = format!(
        "fault-log demo: 30 simulated days, seed {seed}, fixes {}\n",
        if fixes { "applied" } else { "not applied" }
    );
    let _ = writeln!(out, "  IM downtimes:        {}", result.im_downtimes);
    let _ = writeln!(out, "  re-logons:           {}", result.relogons);
    let _ = writeln!(out, "  client restarts:     {}", result.client_restarts);
    let _ = writeln!(out, "  MDC restarts:        {}", result.mdc_restarts);
    let _ = writeln!(out, "  unrecovered:         {}", result.unrecovered);
    let _ = writeln!(
        out,
        "  delivery rate:       {:.1} %",
        result.delivery_rate() * 100.0
    );
    out
}

/// `ledger ls|dlq|retry --dir <dir>`.
pub fn ledger(args: &[String]) -> Outcome {
    use simba_ledger::{DeliveryLedger, LedgerConfig};

    let Some(action) = args.first() else {
        return Outcome::usage("ledger takes an action (ls, dlq, or retry)");
    };
    let mut dir = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => match it.next() {
                Some(v) => dir = Some(v.clone()),
                None => return Outcome::usage("--dir needs a path"),
            },
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return Outcome::usage("--dir is required");
    };
    let mut ledger = match DeliveryLedger::open(LedgerConfig::on_disk(&dir)) {
        Ok(l) => l,
        Err(e) => return Outcome::error(format!("cannot open ledger at {dir}: {e}\n")),
    };
    match action.as_str() {
        "ls" => {
            let c = ledger.counts();
            let mut out = format!(
                "{dir}: {} pending, {} leased, {} retrying, {} dead-lettered\n",
                c.pending, c.leased, c.retrying, c.dead_lettered
            );
            for r in ledger.records() {
                let holder = match &r.lease {
                    Some(l) => format!(" held by {} until {}", l.worker, l.expires_at),
                    None if r.state == simba_ledger::RecordState::Retrying => {
                        format!(" not before {}", r.not_before)
                    }
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  #{} {:<8} {} {} -> {} ({} attempt(s)){}",
                    r.id, r.state.label(), r.idempotency_key, r.channel, r.address,
                    r.attempts, holder
                );
            }
            Outcome::ok(out)
        }
        "dlq" => {
            let dead: Vec<_> = ledger.dead_letters().collect();
            let mut out = format!("{dir}: {} dead-lettered record(s)\n", dead.len());
            for r in dead {
                let _ = writeln!(
                    out,
                    "  #{} {} {} ({} attempt(s)) last error: {}",
                    r.id,
                    r.idempotency_key,
                    r.channel,
                    r.attempts,
                    r.last_error.as_deref().unwrap_or("none recorded")
                );
            }
            Outcome::ok(out)
        }
        "retry" => {
            let moved = ledger.requeue_dead_letters(SimTime::ZERO);
            if let Err(e) = ledger.commit() {
                return Outcome::error(format!("requeued {moved} but commit failed: {e}\n"));
            }
            Outcome::ok(format!("requeued {moved} dead-lettered record(s)\n"))
        }
        other => Outcome::usage(&format!("unknown ledger action {other:?}")),
    }
}

/// `rules ls|add|rm|test --dir <dir> --user <u> ...` — manage and dry-run
/// a user's alert rules against a rules log on disk.
pub fn rules(args: &[String]) -> Outcome {
    use simba_rules::{
        severity_from_name, severity_name, DigestConfig, RuleAction, RuleEngine, RuleSpec,
        RulesConfig,
    };

    let Some(action) = args.first() else {
        return Outcome::usage("rules takes an action (ls, add, rm, or test)");
    };
    // Flags shared across the actions; unknown ones are usage errors.
    let mut dir = None;
    let mut user = None;
    let mut name = None;
    let mut predicate = None;
    let mut rule_action = "deliver".to_string();
    let mut severity = None;
    let mut dedupe = None;
    let mut window_ms = 60_000u64;
    let mut max_count = 0u32;
    let mut exemplars = 3u8;
    let mut key = None;
    let mut id = None;
    let mut disabled = false;
    let mut source = None;
    let mut kind = String::new();
    let mut body = String::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(Outcome::usage(&format!("{what} needs a value"))),
        };
        match flag.as_str() {
            "--dir" => dir = Some(match value("--dir") { Ok(v) => v, Err(e) => return e }),
            "--user" => user = Some(match value("--user") { Ok(v) => v, Err(e) => return e }),
            "--name" => name = Some(match value("--name") { Ok(v) => v, Err(e) => return e }),
            "--predicate" => {
                predicate = Some(match value("--predicate") { Ok(v) => v, Err(e) => return e });
            }
            "--action" => {
                rule_action = match value("--action") { Ok(v) => v, Err(e) => return e };
            }
            "--severity" => {
                let v = match value("--severity") { Ok(v) => v, Err(e) => return e };
                match severity_from_name(&v) {
                    Some(s) => severity = Some(s),
                    None => {
                        return Outcome::usage(&format!(
                            "--severity must be low, normal, or critical, not {v:?}"
                        ))
                    }
                }
            }
            "--dedupe" => dedupe = Some(match value("--dedupe") { Ok(v) => v, Err(e) => return e }),
            "--window-ms" => {
                let v = match value("--window-ms") { Ok(v) => v, Err(e) => return e };
                match v.parse() {
                    Ok(n) => window_ms = n,
                    Err(_) => return Outcome::usage("--window-ms must be a number"),
                }
            }
            "--max-count" => {
                let v = match value("--max-count") { Ok(v) => v, Err(e) => return e };
                match v.parse() {
                    Ok(n) => max_count = n,
                    Err(_) => return Outcome::usage("--max-count must be a number"),
                }
            }
            "--exemplars" => {
                let v = match value("--exemplars") { Ok(v) => v, Err(e) => return e };
                match v.parse() {
                    Ok(n) => exemplars = n,
                    Err(_) => return Outcome::usage("--exemplars must be a small number"),
                }
            }
            "--key" => key = Some(match value("--key") { Ok(v) => v, Err(e) => return e }),
            "--id" => {
                let v = match value("--id") { Ok(v) => v, Err(e) => return e };
                match v.parse() {
                    Ok(n) => id = Some(n),
                    Err(_) => return Outcome::usage("--id must be a number"),
                }
            }
            "--disabled" => disabled = true,
            "--source" => source = Some(match value("--source") { Ok(v) => v, Err(e) => return e }),
            "--kind" => kind = match value("--kind") { Ok(v) => v, Err(e) => return e },
            "--body" => body = match value("--body") { Ok(v) => v, Err(e) => return e },
            other => return Outcome::usage(&format!("unknown flag {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return Outcome::usage("--dir is required");
    };
    let Some(user) = user else {
        return Outcome::usage("--user is required");
    };
    let engine = match RuleEngine::open(RulesConfig::on_disk(&dir)) {
        Ok(e) => e,
        Err(e) => return Outcome::error(format!("cannot open rules log at {dir}: {e}\n")),
    };

    // Renders one stored rule the way `ls` and `add` report it.
    let render = |rule: &simba_rules::AlertRule| {
        let mut line = format!(
            "  #{} [{}] {:<10} {:?} when {}",
            rule.id,
            if rule.spec.enabled { "on " } else { "off" },
            rule.spec.action.label(),
            rule.spec.name,
            rule.spec.predicate_src,
        );
        if let Some(sev) = rule.spec.severity {
            let _ = write!(line, " severity={}", severity_name(sev));
        }
        if let Some(d) = &rule.spec.dedupe {
            let _ = write!(line, " dedupe={d:?}");
        }
        if let RuleAction::Digest(config) = &rule.spec.action {
            let _ = write!(line, " window={}ms", config.window_ms);
            if config.max_count > 0 {
                let _ = write!(line, " cap={}", config.max_count);
            }
            if let Some(k) = &config.key {
                let _ = write!(line, " key={k:?}");
            }
        }
        line
    };

    match action.as_str() {
        "ls" => {
            let rules = engine.list(&user);
            let mut out = format!("{user}: {} rule(s)\n", rules.len());
            for rule in &rules {
                let _ = writeln!(out, "{}", render(rule));
            }
            Outcome::ok(out)
        }
        "add" => {
            let Some(name) = name else {
                return Outcome::usage("rules add needs --name");
            };
            let Some(predicate) = predicate else {
                return Outcome::usage("rules add needs --predicate");
            };
            let action = match rule_action.as_str() {
                "deliver" => RuleAction::Deliver,
                "suppress" => RuleAction::Suppress,
                "digest" => RuleAction::Digest(DigestConfig {
                    window_ms,
                    max_count,
                    max_exemplars: exemplars,
                    key,
                }),
                other => {
                    return Outcome::usage(&format!(
                        "--action must be deliver, suppress, or digest, not {other:?}"
                    ))
                }
            };
            let spec = RuleSpec {
                name,
                enabled: !disabled,
                severity,
                dedupe,
                predicate_src: predicate,
                action,
            };
            match engine.upsert(&user, id, spec) {
                Ok(rule) => Outcome::ok(format!("stored\n{}\n", render(&rule))),
                Err(e) => Outcome::error(format!("rejected: {e}\n")),
            }
        }
        "rm" => {
            let Some(id) = id else {
                return Outcome::usage("rules rm needs --id");
            };
            match engine.delete(&user, id) {
                Ok(true) => Outcome::ok(format!("deleted rule #{id} for {user}\n")),
                Ok(false) => Outcome::ok(format!("no rule #{id} for {user} (nothing to do)\n")),
                Err(e) => Outcome::error(format!("delete failed: {e}\n")),
            }
        }
        "test" => {
            let Some(source) = source else {
                return Outcome::usage("rules test needs --source");
            };
            let alert = if kind.is_empty() {
                IncomingAlert::from_im(source, body, SimTime::ZERO)
            } else {
                IncomingAlert::from_email(source, "cli", kind, body, SimTime::ZERO)
            };
            let decision = engine.evaluate(&user, &alert, 0);
            let out = match decision {
                simba_rules::Decision::Deliver { rule: None, .. } => {
                    "deliver (no rule matched — the default path)\n".to_string()
                }
                simba_rules::Decision::Deliver { rule: Some(id), severity } => {
                    let mut line = format!("deliver (rule #{id}");
                    if let Some(sev) = severity {
                        let _ = write!(line, ", severity override {}", severity_name(sev));
                    }
                    line.push_str(")\n");
                    line
                }
                simba_rules::Decision::Suppress { rule, reason } => {
                    format!("suppress (rule #{rule}, {reason:?})\n")
                }
                simba_rules::Decision::Digest { rule, key, deadline_ms, .. } => format!(
                    "digest (rule #{rule}): absorbed into window {key:?}, flushes at t+{deadline_ms}ms\n"
                ),
            };
            Outcome::ok(out)
        }
        other => Outcome::usage(&format!("unknown rules action {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_core::address::{Address, CommType};
    use simba_core::mode::Block;
    use simba_sim::SimDuration;

    fn tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join(format!("simba-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn strings(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn validate_good_and_bad_documents() {
        let good = tmp(
            "good-book.xml",
            r#"<Addresses><Address name="IM" type="IM" value="im:a"/></Addresses>"#,
        );
        let out = validate(&strings(&["addresses", &good]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("OK: 1 addresses"));

        let bad = tmp("bad-book.xml", "<Addresses><Address/></Addresses>");
        let out = validate(&strings(&["addresses", &bad]));
        assert_eq!(out.code, 1);
        assert!(out.output.contains("INVALID"));

        let mode = tmp(
            "mode.xml",
            r#"<DeliveryMode name="M"><Block><Action address="IM"/></Block></DeliveryMode>"#,
        );
        assert_eq!(validate(&strings(&["mode", &mode])).code, 0);
        assert_eq!(validate(&strings(&["registry", &mode])).code, 1);
        assert_eq!(validate(&strings(&["nonsense", &mode])).code, 2);
        assert_eq!(validate(&strings(&["addresses", "/no/such/file"])).code, 1);
    }

    #[test]
    fn explain_happy_and_fallback_paths() {
        let book = {
            let mut b = AddressBook::new();
            b.add(Address::new("IM", CommType::Im, "im:a")).unwrap();
            b.add(Address::new("EM", CommType::Email, "a@b")).unwrap();
            b
        };
        let mode = DeliveryMode::new(
            "Urgent",
            vec![
                Block::acked(vec!["IM".into()], SimDuration::from_secs(60)),
                Block::fire_and_forget(vec!["EM".into()]),
            ],
        )
        .unwrap();

        // Acked on the first block.
        let text = explain_cascade(&mode, &book, &[], Some("IM"));
        assert!(text.contains("user acknowledges"), "{text}");
        assert!(text.contains("Acked"), "{text}");

        // No ack: window expires, email fires.
        let text = explain_cascade(&mode, &book, &[], None);
        assert!(text.contains("ack window of 1.0min"), "{text}");
        assert!(text.contains("via \"EM\""), "{text}");
        assert!(text.contains("Unconfirmed"), "{text}");

        // IM fails synchronously.
        let text = explain_cascade(&mode, &book, &["IM".to_string()], None);
        assert!(text.contains("FAILS"), "{text}");
    }

    #[test]
    fn explain_cli_flag_errors() {
        assert_eq!(explain(&strings(&["--mode"])).code, 2);
        assert_eq!(explain(&strings(&["--bogus", "x"])).code, 2);
        assert_eq!(explain(&strings(&[])).code, 2); // missing required flags
    }

    #[test]
    fn wal_inspect_round_trip() {
        use simba_core::alert::IncomingAlert;
        let dir = std::env::temp_dir().join(format!("simba-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inspect.wal");
        let _ = std::fs::remove_file(&path);
        let mut w = FileWal::open(&path).unwrap();
        let id = w
            .append(
                &IncomingAlert::from_im("aladdin-gw", "Sensor ON", SimTime::from_secs(9)),
                SimTime::from_secs(10),
            )
            .unwrap();
        w.append(
            &IncomingAlert::from_im("aladdin-gw", "Sensor OFF", SimTime::from_secs(19)),
            SimTime::from_secs(20),
        )
        .unwrap();
        w.mark_processed(id).unwrap();
        drop(w);

        let out = wal(&strings(&["inspect", path.to_string_lossy().as_ref()]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("2 record(s), 1 unprocessed"));
        assert!(out.output.contains("Sensor OFF"));
        assert!(!out.output.contains("Sensor ON\n")); // processed: not listed
        std::fs::remove_file(&path).unwrap();

        assert_eq!(wal(&strings(&["inspect"])).code, 2);
        assert_eq!(wal(&strings(&["scrub", "x"])).code, 2);
    }

    #[test]
    fn ledger_ls_dlq_retry_round_trip() {
        use simba_core::subscription::UserId;
        use simba_ledger::{DeliveryLedger, LedgerConfig, WorkerId};

        let dir = std::env::temp_dir().join(format!(
            "simba-cli-ledger-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        // Seed a ledger: one pending record, one driven to the DLQ.
        {
            let mut config = LedgerConfig::on_disk(&dir);
            config.max_attempts = 1;
            let mut l = DeliveryLedger::open(config).unwrap();
            l.enqueue(
                &UserId::new("alice"),
                1,
                CommType::Im,
                "im:alice",
                "alert",
                SimTime::ZERO,
            );
            l.enqueue(
                &UserId::new("bob"),
                2,
                CommType::Email,
                "bob@example.com",
                "alert",
                SimTime::ZERO,
            );
            let work = l.lease(&WorkerId::new("w"), SimTime::ZERO, 1);
            assert_eq!(work.len(), 1);
            l.record_failed(&WorkerId::new("w"), work[0].id, "smtp down", SimTime::ZERO)
                .unwrap();
            l.commit().unwrap();
        }

        let out = ledger(&strings(&["ls", "--dir", &dir_s]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("1 pending"), "{}", out.output);
        assert!(out.output.contains("1 dead-lettered"), "{}", out.output);

        let out = ledger(&strings(&["dlq", "--dir", &dir_s]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("smtp down"), "{}", out.output);

        let out = ledger(&strings(&["retry", "--dir", &dir_s]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("requeued 1"), "{}", out.output);

        // The requeue is durable: reopening sees two live records.
        let out = ledger(&strings(&["ls", "--dir", &dir_s]));
        assert!(out.output.contains("2 pending"), "{}", out.output);
        assert!(out.output.contains("0 dead-lettered"), "{}", out.output);

        assert_eq!(ledger(&strings(&["ls"])).code, 2);
        assert_eq!(ledger(&strings(&["scrub", "--dir", &dir_s])).code, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rules_ls_add_rm_test_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "simba-cli-rules-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        // Empty listing first.
        let out = rules(&strings(&["ls", "--dir", &dir_s, "--user", "ada"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("ada: 0 rule(s)"), "{}", out.output);

        // Add a digest rule and a suppress rule.
        let out = rules(&strings(&[
            "add", "--dir", &dir_s, "--user", "ada", "--name", "storm",
            "--predicate", "source == flappy", "--action", "digest",
            "--window-ms", "5000", "--max-count", "100", "--severity", "low",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("#1"), "{}", out.output);
        assert!(out.output.contains("window=5000ms"), "{}", out.output);
        let out = rules(&strings(&[
            "add", "--dir", &dir_s, "--user", "ada", "--name", "mute",
            "--predicate", "body contains noise", "--action", "suppress",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("#2"), "{}", out.output);

        // The log is durable: a fresh engine (new CLI call) sees both, with
        // the predicate canonicalized.
        let out = rules(&strings(&["ls", "--dir", &dir_s, "--user", "ada"]));
        assert!(out.output.contains("ada: 2 rule(s)"), "{}", out.output);
        assert!(out.output.contains("source == \"flappy\""), "{}", out.output);
        assert!(out.output.contains("severity=low"), "{}", out.output);

        // Dry-run: a flappy alert is absorbed; ordinary traffic delivers.
        let out = rules(&strings(&[
            "test", "--dir", &dir_s, "--user", "ada", "--source", "flappy",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("digest (rule #1)"), "{}", out.output);
        let out = rules(&strings(&[
            "test", "--dir", &dir_s, "--user", "ada", "--source", "calm",
        ]));
        assert!(out.output.contains("no rule matched"), "{}", out.output);

        // Remove the digest rule; the removal is durable and idempotent.
        let out = rules(&strings(&["rm", "--dir", &dir_s, "--user", "ada", "--id", "1"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("deleted rule #1"), "{}", out.output);
        let out = rules(&strings(&["rm", "--dir", &dir_s, "--user", "ada", "--id", "1"]));
        assert!(out.output.contains("nothing to do"), "{}", out.output);
        let out = rules(&strings(&["ls", "--dir", &dir_s, "--user", "ada"]));
        assert!(out.output.contains("ada: 1 rule(s)"), "{}", out.output);

        // A bad predicate is a user error (1); bad flags are usage (2).
        let out = rules(&strings(&[
            "add", "--dir", &dir_s, "--user", "ada", "--name", "x",
            "--predicate", "source ==",
        ]));
        assert_eq!(out.code, 1, "{}", out.output);
        assert_eq!(rules(&strings(&["ls"])).code, 2);
        assert_eq!(rules(&strings(&["ls", "--dir", &dir_s])).code, 2);
        assert_eq!(rules(&strings(&["scrub", "--dir", &dir_s, "--user", "a"])).code, 2);
        assert_eq!(
            rules(&strings(&["add", "--dir", &dir_s, "--user", "a", "--severity", "loud"])).code,
            2
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_cli_retry_feeds_workers_and_journal_survives_reopen() {
        use simba_core::subscription::UserId;
        use simba_ledger::{DeliveryLedger, LedgerConfig, WorkerId};

        let dir = std::env::temp_dir().join(format!(
            "simba-cli-ledger-retry-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        // Drive a record into the DLQ.
        {
            let mut config = LedgerConfig::on_disk(&dir);
            config.max_attempts = 1;
            let mut l = DeliveryLedger::open(config).unwrap();
            l.enqueue(&UserId::new("ada"), 7, CommType::Email, "ada@mail", "alert", SimTime::ZERO);
            let work = l.lease(&WorkerId::new("w"), SimTime::ZERO, 1);
            l.record_failed(&WorkerId::new("w"), work[0].id, "smtp down", SimTime::ZERO).unwrap();
            l.commit().unwrap();
        }
        let out = ledger(&strings(&["dlq", "--dir", &dir_s]));
        assert!(out.output.contains("1 dead-lettered"), "{}", out.output);

        // Requeue through the CLI code path.
        let out = ledger(&strings(&["retry", "--dir", &dir_s]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("requeued 1"), "{}", out.output);

        // A worker can now lease the requeued record and finish it; the
        // whole history journals through another reopen.
        {
            let mut l = DeliveryLedger::open(LedgerConfig::on_disk(&dir)).unwrap();
            let work = l.lease(&WorkerId::new("w2"), SimTime::from_secs(1), 4);
            assert_eq!(work.len(), 1, "requeued record must be leasable");
            assert_eq!(work[0].address, "ada@mail");
            l.record_sent(&WorkerId::new("w2"), work[0].id, SimTime::from_secs(1)).unwrap();
            l.commit().unwrap();
        }
        let out = ledger(&strings(&["ls", "--dir", &dir_s]));
        assert!(out.output.contains("0 pending"), "{}", out.output);
        assert!(out.output.contains("0 dead-lettered"), "{}", out.output);
        let out = ledger(&strings(&["dlq", "--dir", &dir_s]));
        assert!(out.output.contains("0 dead-lettered"), "{}", out.output);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn demo_pipeline_prints_summary() {
        let out = demo(&strings(&["pipeline", "--seed", "7", "--alerts", "5"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("seen by the user: 5/5"), "{}", out.output);
        assert_eq!(demo(&strings(&["pipeline", "--seed", "NaN"])).code, 2);
        assert_eq!(demo(&strings(&["nonsense"])).code, 2);
        assert_eq!(demo(&strings(&[])).code, 2);
    }

    #[test]
    fn host_soak_reports_floor_and_throughput() {
        let out = host(&strings(&["--users", "4", "--alerts", "10", "--seed", "7"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("host soak: 4 users x 10 alerts"), "{}", out.output);
        assert!(out.output.contains("terminal outcome mix"), "{}", out.output);
        assert!(out.output.contains("drained to the floor"), "{}", out.output);
        assert_eq!(host(&strings(&["--users", "NaN"])).code, 2);
        assert_eq!(host(&strings(&["--users", "0"])).code, 2);
        assert_eq!(host(&strings(&["--frobnicate"])).code, 2);
    }

    #[test]
    fn host_soak_reports_routing_totals() {
        let out = host(&strings(&["--users", "3", "--alerts", "5", "--seed", "11"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(
            out.output.contains("host routing: 15 routed (host.routed), 0 unrouted"),
            "{}",
            out.output
        );
    }

    #[test]
    fn host_sharded_reports_bounds_and_commit_amortization() {
        let out = host(&strings(&["--sharded", "--users", "200", "--active", "20", "--waves", "3"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(
            out.output.contains("sharded host: 200 registered, 20 active x 3 waves"),
            "{}",
            out.output
        );
        assert!(out.output.contains("log writes per group commit"), "{}", out.output);
        assert!(out.output.contains("20 hibernated after the sweep"), "{}", out.output);
        assert_eq!(host(&strings(&["--sharded", "--active", "0"])).code, 2);
        assert_eq!(host(&strings(&["--sharded", "--waves", "none"])).code, 2);
        assert_eq!(host(&strings(&["--sharded", "--frobnicate"])).code, 2);
    }

    #[test]
    fn host_sharded_threads_runs_thread_per_shard() {
        let out = host(&strings(&[
            "--sharded", "--users", "200", "--active", "20", "--waves", "2", "--shards", "2",
            "--threads",
        ]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("(thread-per-shard)"), "{}", out.output);
        assert!(out.output.contains("20 hibernated after the sweep"), "{}", out.output);
    }

    #[test]
    fn gateway_cli_flag_errors() {
        assert_eq!(gateway(&strings(&[])).code, 2);
        assert_eq!(gateway(&strings(&["frobnicate"])).code, 2);
        assert_eq!(gateway(&strings(&["send"])).code, 2, "send needs --addr");
        assert_eq!(gateway(&strings(&["probe"])).code, 2, "probe needs --addr");
        assert_eq!(gateway(&strings(&["serve", "--users", "0"])).code, 2);
        assert_eq!(gateway(&strings(&["serve", "--rate"])).code, 2);
        // A dead address is a user error (1), not a usage error (2).
        let out = gateway(&strings(&["probe", "--addr", "127.0.0.1:1"]));
        assert_eq!(out.code, 1, "{}", out.output);
        assert!(out.output.contains("cannot reach gateway"), "{}", out.output);
    }

    #[test]
    fn gateway_serve_and_send_round_trip() {
        // Grab a free port, then serve on it from a helper thread while
        // this thread drives the client commands against it.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let serve_addr = addr.clone();
        let serving = std::thread::spawn(move || {
            gateway(&strings(&[
                "serve",
                "--addr",
                &serve_addr,
                "--users",
                "2",
                "--duration-ms",
                "1500",
            ]))
        });
        // Wait for the listener to come up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if std::net::TcpStream::connect(&addr).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "gateway never came up");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        let sent = gateway(&strings(&[
            "send", "--addr", &addr, "--user", "user001", "--count", "5",
        ]));
        assert_eq!(sent.code, 0, "{}", sent.output);
        assert!(sent.output.contains("5/5 accepted"), "{}", sent.output);

        let unknown = gateway(&strings(&[
            "send", "--addr", &addr, "--user", "mallory", "--count", "1",
        ]));
        assert_eq!(unknown.code, 0, "{}", unknown.output);
        assert!(unknown.output.contains("unknown-user"), "{}", unknown.output);

        let probe = gateway(&strings(&["probe", "--addr", &addr]));
        assert_eq!(probe.code, 0, "{}", probe.output);
        assert!(probe.output.contains("accepted 5"), "{}", probe.output);

        let served = serving.join().unwrap();
        assert_eq!(served.code, 0, "{}", served.output);
        assert!(served.output.contains("host routing: 5 routed"), "{}", served.output);
    }

    #[test]
    fn store_cli_flag_errors() {
        assert_eq!(store(&strings(&[])).code, 2);
        assert_eq!(store(&strings(&["frobnicate"])).code, 2);
        assert_eq!(store(&strings(&["put", "--key", "k", "--value", "v"])).code, 2, "needs --addr");
        assert_eq!(
            store(&strings(&["put", "--addr", "127.0.0.1:1", "--key", "k"])).code,
            2,
            "put needs --value"
        );
        assert_eq!(store(&strings(&["get", "--addr", "127.0.0.1:1"])).code, 2, "needs --key");
        assert_eq!(store(&strings(&["watch", "--interval-ms", "0"])).code, 2);
        // A dead address is a user error (1), not a usage error (2).
        let out = store(&strings(&["get", "--addr", "127.0.0.1:1", "--key", "k"]));
        assert_eq!(out.code, 1, "{}", out.output);
        assert!(out.output.contains("cannot reach gateway"), "{}", out.output);
    }

    #[test]
    fn store_commands_round_trip_through_a_serving_gateway() {
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let serve_addr = addr.clone();
        let serving = std::thread::spawn(move || {
            gateway(&strings(&[
                "serve",
                "--addr",
                &serve_addr,
                "--users",
                "2",
                "--duration-ms",
                "2500",
            ]))
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if std::net::TcpStream::connect(&addr).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "gateway never came up");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        // Publish a short-lived presence fact, read it back, then watch
        // it decay: the watch window outlives the TTL, so the poll sees
        // the live fact first and its expiry afterwards.
        let put = store(&strings(&[
            "put", "--addr", &addr, "--key", "user000", "--value", "away", "--ttl-ms", "400",
        ]));
        assert_eq!(put.code, 0, "{}", put.output);
        assert!(put.output.contains("published presence/user000"), "{}", put.output);

        let got = store(&strings(&["get", "--addr", &addr, "--key", "user000"]));
        assert_eq!(got.code, 0, "{}", got.output);
        assert!(got.output.contains("presence/user000 = \"away\""), "{}", got.output);

        let watched = store(&strings(&[
            "watch", "--addr", &addr, "--key", "user000",
            "--interval-ms", "50", "--duration-ms", "800",
        ]));
        assert_eq!(watched.code, 0, "{}", watched.output);
        assert!(watched.output.contains("published presence/user000"), "{}", watched.output);
        assert!(watched.output.contains("expired presence/user000"), "{}", watched.output);

        let gone = store(&strings(&["get", "--addr", &addr, "--key", "user000"]));
        assert!(gone.output.contains("no live fact"), "{}", gone.output);

        let served = serving.join().unwrap();
        assert_eq!(served.code, 0, "{}", served.output);
        // The serve summary shows the store counters our puts/gets drove.
        assert!(served.output.contains("store.puts"), "{}", served.output);
    }

    #[test]
    fn telemetry_demo_prints_events_and_metrics() {
        let out = telemetry(&strings(&["demo", "--seed", "7", "--alerts", "6"]));
        assert_eq!(out.code, 0, "{}", out.output);
        assert!(out.output.contains("mab.received"), "{}", out.output);
        assert!(out.output.contains("wal.append"), "{}", out.output);
        assert!(out.output.contains("delivery.acked"), "{}", out.output);
        // Alert 4 (i % 5 == 4) drives the fallback ladder.
        assert!(out.output.contains("delivery.send_failed"), "{}", out.output);
        // The soft-state store steered alert 0 (presence "away" skipped
        // its IM block) and decayed before alert 1; both facts show in
        // the metrics snapshot.
        assert!(out.output.contains("mab.mode_overridden"), "{}", out.output);
        assert!(out.output.contains("store.puts"), "{}", out.output);
        assert!(out.output.contains("store.expired"), "{}", out.output);

        // Same seed ⇒ byte-identical output (the determinism invariant).
        let again = telemetry(&strings(&["demo", "--seed", "7", "--alerts", "6"]));
        assert_eq!(out.output, again.output);

        assert_eq!(telemetry(&strings(&["demo", "--seed", "NaN"])).code, 2);
        assert_eq!(telemetry(&strings(&["nonsense"])).code, 2);
        assert_eq!(telemetry(&strings(&[])).code, 2);
    }

    #[test]
    fn telemetry_demo_json_round_trips_through_tail() {
        let out = telemetry(&strings(&["demo", "--seed", "3", "--alerts", "4", "--json"]));
        assert_eq!(out.code, 0, "{}", out.output);
        // Every line up to the final metrics object is a parseable event.
        let lines: Vec<&str> = out.output.lines().collect();
        let (events, metrics) = lines.split_at(lines.len() - 1);
        assert!(!events.is_empty());
        for line in events {
            simba_telemetry::Event::from_json_line(line).unwrap();
        }
        assert!(metrics[0].starts_with('{'), "{}", metrics[0]);

        let path = tmp("events.jsonl", &events.join("\n"));
        let tailed = telemetry(&strings(&["tail", &path]));
        assert_eq!(tailed.code, 0, "{}", tailed.output);
        assert!(
            tailed.output.contains(&format!("{} event(s), 0 unparseable", events.len())),
            "{}",
            tailed.output
        );
        assert!(tailed.output.contains("mab.routed"), "{}", tailed.output);

        let bad = tmp("bad.jsonl", "not json\n");
        let tailed = telemetry(&strings(&["tail", &bad]));
        assert!(tailed.output.contains("1 unparseable"), "{}", tailed.output);
        assert_eq!(telemetry(&strings(&["tail"])).code, 2);
    }

    #[test]
    fn summary_line_truncates() {
        assert_eq!(summary_line("short"), "short");
        assert_eq!(summary_line("a\nb"), "a b");
        let long = "x".repeat(100);
        let s = summary_line(&long);
        assert_eq!(s.chars().count(), 60);
        assert!(s.ends_with("..."));
    }
}
