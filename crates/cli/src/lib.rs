//! `simba-cli` — the operator tool for SIMBA deployments.
//!
//! Subcommands (see [`run`] and `simba-cli help`):
//!
//! * `validate addresses|mode|registry <file>` — check the §4.1 XML
//!   documents before installing them;
//! * `explain` — dry-run a delivery mode against an address book and print
//!   the block cascade under chosen failure assumptions;
//! * `wal inspect <file>` — print a pessimistic log's records (tolerating
//!   a torn tail, as a restarting MyAlertBuddy would);
//! * `demo pipeline|faultlog` — run the simulated deployment and print the
//!   summary tables;
//! * `host` — soak a multi-user `MabHost` fleet with mixed
//!   ack/timeout/failure outcomes and report the outcome mix,
//!   bounded-state peaks, routing totals, and throughput; with
//!   `--sharded`, run the sharded/hibernating host and report roster vs
//!   live-buddy bounds and group-commit amortization instead;
//! * `gateway serve|send|probe` — run the framed-TCP ingestion gateway
//!   in front of a live host fleet, submit alerts to one, or check its
//!   health counters;
//! * `store put|get|watch` — publish, read, or poll soft-state facts
//!   (presence, channel health) through a serving gateway's state
//!   frames; facts published this way steer the host's delivery routing;
//! * `telemetry demo|tail` — run an instrumented pipeline and print its
//!   structured event stream and metrics snapshot, or pretty-print a
//!   JSON-lines event file captured elsewhere;
//! * `ledger ls|dlq|retry` — inspect a durable delivery ledger's
//!   pending/leased/retrying records, list its dead-lettered sends with
//!   their last errors, or requeue the dead letters for fresh attempts;
//! * `rules ls|add|rm|test` — manage a user's alert rules in a rules log
//!   (list, add/replace, delete) and dry-run an alert against them to see
//!   which rule would fire and what the engine would decide.
//!
//! All command logic lives here (testable); `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;

use std::fmt::Write as _;

/// A command outcome: what to print and the process exit code.
#[derive(Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit code (0 = success, 1 = user error, 2 = usage error).
    pub code: i32,
}

impl Outcome {
    fn ok(output: impl Into<String>) -> Self {
        Outcome { output: output.into(), code: 0 }
    }

    fn error(output: impl Into<String>) -> Self {
        Outcome { output: output.into(), code: 1 }
    }

    fn usage(extra: &str) -> Self {
        let mut output = String::new();
        if !extra.is_empty() {
            let _ = writeln!(output, "error: {extra}\n");
        }
        output.push_str(USAGE);
        Outcome { output, code: 2 }
    }
}

/// The help text.
pub const USAGE: &str = "\
simba-cli — operate a SIMBA alert-delivery deployment

USAGE:
  simba-cli validate addresses <file.xml>
  simba-cli validate mode <file.xml>
  simba-cli validate registry <file.xml>
  simba-cli explain --addresses <file.xml> --mode <file.xml>
            [--disable <name>]... [--fail <name>]... [--ack <name>]
  simba-cli wal inspect <file.wal>
  simba-cli demo pipeline  [--seed <n>] [--alerts <n>]
  simba-cli demo faultlog  [--seed <n>] [--fixes]
  simba-cli host [--users <n>] [--alerts <n>] [--ring <n>] [--seed <n>]
  simba-cli host --sharded [--users <n>] [--active <n>] [--waves <n>]
            [--shards <n>]
  simba-cli gateway serve [--addr <a>] [--users <n>] [--duration-ms <n>]
            [--workers <n>] [--queue <n>] [--rate <alerts/s>] [--source <s>]
  simba-cli gateway send --addr <a> [--user <u>] [--body <text>]
            [--count <n>] [--channel im|email] [--source <s>]
  simba-cli gateway probe --addr <a>
  simba-cli store put --addr <a> --key <k> --value <v> [--scope <s>]
            [--ttl-ms <n>] [--source <s>]
  simba-cli store get --addr <a> --key <k> [--scope <s>]
  simba-cli store watch --addr <a> --key <k> [--scope <s>]
            [--interval-ms <n>] [--duration-ms <n>]
  simba-cli telemetry demo [--seed <n>] [--alerts <n>] [--json]
  simba-cli telemetry tail <file.jsonl>
  simba-cli ledger ls --dir <dir>
  simba-cli ledger dlq --dir <dir>
  simba-cli ledger retry --dir <dir>
  simba-cli rules ls --dir <dir> --user <u>
  simba-cli rules add --dir <dir> --user <u> --name <n> --predicate <p>
            [--action deliver|suppress|digest] [--severity low|normal|critical]
            [--dedupe <template>] [--window-ms <n>] [--max-count <n>]
            [--exemplars <n>] [--key <template>] [--id <n>] [--disabled]
  simba-cli rules rm --dir <dir> --user <u> --id <n>
  simba-cli rules test --dir <dir> --user <u> --source <s> [--kind <k>]
            [--body <text>]
  simba-cli help

`explain` fires the delivery mode against the address book and reports the
block cascade: --disable turns an address off first, --fail makes a send
to that address fail synchronously, --ack names the address whose send the
user acknowledges (default: nothing is acknowledged, so every ack window
expires).
";

/// Dispatches a command line (without the program name).
pub fn run(args: &[String]) -> Outcome {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Outcome::ok(USAGE),
        Some("validate") => commands::validate(&args[1..]),
        Some("explain") => commands::explain(&args[1..]),
        Some("wal") => commands::wal(&args[1..]),
        Some("demo") => commands::demo(&args[1..]),
        Some("host") => commands::host(&args[1..]),
        Some("gateway") => commands::gateway(&args[1..]),
        Some("store") => commands::store(&args[1..]),
        Some("telemetry") => commands::telemetry(&args[1..]),
        Some("ledger") => commands::ledger(&args[1..]),
        Some("rules") => commands::rules(&args[1..]),
        Some(other) => Outcome::usage(&format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_paths() {
        assert_eq!(run(&[]).code, 0);
        assert_eq!(run(&args(&["help"])).code, 0);
        assert!(run(&args(&["--help"])).output.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let out = run(&args(&["frobnicate"]));
        assert_eq!(out.code, 2);
        assert!(out.output.contains("unknown command"));
    }
}
