//! The telemetry spine through simba-core: every pipeline stage of
//! MyAlertBuddy, the delivery fallback ladder, and the stabilization
//! sweeps emit structured events and metrics when a `Telemetry` is
//! attached — and nothing observable when it is disabled.

use simba_core::delivery::{DeliveryEvent, SendFailure};
use simba_core::mab::{CrashPoint, MabEvent, MyAlertBuddy};
use simba_core::stabilize::{
    check_invariants_observed, HealthSnapshot, StabilizationConfig,
};
use simba_core::wal::InMemoryWal;
use simba_core::{
    Address, AddressBook, Classifier, CommType, DeliveryCommand, DeliveryMode, IncomingAlert,
    KeywordField, MabCommand, MabConfig, RejuvenationPolicy, SubscriptionRegistry, Telemetry,
    UserId,
};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{RingBufferSink, Value};
use std::sync::Arc;

fn config() -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "config");
    classifier.map_keyword("Sensor", "Home.Security");

    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
    book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home.Security", alice, "Urgent").unwrap();

    MabConfig {
        classifier,
        registry,
        rejuvenation: RejuvenationPolicy::default(),
    }
}

fn observed_mab() -> (MyAlertBuddy<InMemoryWal>, Arc<RingBufferSink>, Telemetry) {
    let sink = Arc::new(RingBufferSink::new(256));
    let telemetry = Telemetry::with_sink(sink.clone());
    let mab = MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO)
        .with_telemetry(telemetry.clone());
    (mab, sink, telemetry)
}

fn sensor_alert(secs: u64) -> IncomingAlert {
    IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(secs))
}

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn names(sink: &RingBufferSink) -> Vec<String> {
    sink.events().into_iter().map(|e| e.name).collect()
}

#[test]
fn ingest_pipeline_emits_stage_events_in_order() {
    let (mut m, sink, telemetry) = observed_mab();
    m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));

    let names = names(&sink);
    // The §4.2.1 ordering is visible in the event stream: log before ack,
    // ack before route.
    let pos = |n: &str| names.iter().position(|x| x == n).unwrap_or_else(|| panic!("no {n} in {names:?}"));
    assert!(pos("mab.received") < pos("wal.append"));
    assert!(pos("wal.append") < pos("mab.ack"));
    assert!(pos("mab.ack") < pos("delivery.block_entered"));
    assert!(names.contains(&"mab.routed".to_string()));

    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("mab.received"), 1);
    assert_eq!(snap.counter("wal.appends"), 1);
    assert_eq!(snap.counter("mab.acked"), 1);
    assert_eq!(snap.counter("mab.routed"), 1);
    assert_eq!(snap.counter("mab.deliveries_started"), 1);
    assert_eq!(snap.counter("delivery.sends"), 1);
    assert_eq!(snap.histogram("mab.route_lag_ms").unwrap().count, 1);

    // All events carry the virtual timestamp, never a wall-clock read.
    assert!(sink.events().iter().all(|e| e.time_ms == 1_000));
}

#[test]
fn crash_point_emits_crashed_event_and_replay_is_observed() {
    let (mut m, sink, _) = observed_mab();
    m.inject_crash_at(CrashPoint::AfterAckBeforeRoute);
    m.handle(MabEvent::AlertByIm(sensor_alert(5)), t(5));
    let crash = sink
        .events()
        .into_iter()
        .find(|e| e.name == "mab.crashed")
        .expect("a mab.crashed event");
    assert_eq!(crash.field("point"), Some(&Value::Str("after_ack_before_route".into())));

    // Fresh incarnation over the same log: replay is one wal.replayed event.
    let wal = m.into_wal();
    let sink2 = Arc::new(RingBufferSink::new(64));
    let mut m2 = MyAlertBuddy::new(config(), wal, t(10))
        .with_telemetry(Telemetry::with_sink(sink2.clone()));
    m2.recover(t(10));
    let replayed = sink2
        .events()
        .into_iter()
        .find(|e| e.name == "wal.replayed")
        .expect("a wal.replayed event");
    assert_eq!(replayed.field("records"), Some(&Value::U64(1)));
}

#[test]
fn delivery_fallback_ladder_is_traced() {
    let (mut m, sink, telemetry) = observed_mab();
    let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
    let (id, attempt) = cmds
        .iter()
        .find_map(|c| match c {
            MabCommand::Channel {
                delivery,
                command: DeliveryCommand::Send { attempt, .. },
                ..
            } => Some((*delivery, *attempt)),
            _ => None,
        })
        .unwrap();

    // IM fails synchronously → the email block is entered as a fallback.
    m.handle(
        MabEvent::Delivery {
            id,
            event: DeliveryEvent::SendFailed { attempt, failure: SendFailure::ChannelDown },
        },
        t(2),
    );
    let events = sink.events();
    let failed = events.iter().find(|e| e.name == "delivery.send_failed").unwrap();
    assert_eq!(failed.field("failure"), Some(&Value::Str("channel down".into())));
    let fallback = events
        .iter()
        .filter(|e| e.name == "delivery.block_entered")
        .find(|e| e.field("fallback") == Some(&Value::Bool(true)))
        .expect("a fallback block entry");
    assert_eq!(fallback.field("block"), Some(&Value::U64(1)));
    assert_eq!(telemetry.metrics().snapshot().counter("delivery.send_failed"), 1);
}

#[test]
fn delivery_ack_records_latency_histogram() {
    let (mut m, sink, telemetry) = observed_mab();
    let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
    let (id, attempt) = cmds
        .iter()
        .find_map(|c| match c {
            MabCommand::Channel {
                delivery,
                command: DeliveryCommand::Send { attempt, .. },
                ..
            } => Some((*delivery, *attempt)),
            _ => None,
        })
        .unwrap();
    m.handle(MabEvent::Delivery { id, event: DeliveryEvent::SendAccepted { attempt } }, t(2));
    m.handle(MabEvent::Delivery { id, event: DeliveryEvent::Acked { attempt } }, t(4));

    let acked = sink
        .events()
        .into_iter()
        .find(|e| e.name == "delivery.acked")
        .expect("a delivery.acked event");
    assert_eq!(acked.field("latency_ms"), Some(&Value::U64(3_000)));
    assert_eq!(acked.field("late"), Some(&Value::Bool(false)));
    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("delivery.acked"), 1);
    assert_eq!(snap.histogram("delivery.ack_latency_ms").unwrap().sum_ms, 3_000);
}

#[test]
fn stabilization_sweep_emits_violations() {
    let sink = Arc::new(RingBufferSink::new(64));
    let telemetry = Telemetry::with_sink(sink.clone());
    let cfg = StabilizationConfig::default();
    let snap = HealthSnapshot {
        memory_kb: 999_999,
        threads_alive: false,
        last_progress_at: t(50),
        ..HealthSnapshot::default()
    };
    let out = check_invariants_observed(&cfg, &snap, t(50), &telemetry);
    assert_eq!(out.len(), 2);

    let events = sink.events();
    assert_eq!(events.iter().filter(|e| e.name == "stabilize.violation").count(), 2);
    let kinds: Vec<_> = events
        .iter()
        .filter(|e| e.name == "stabilize.violation")
        .map(|e| e.field("kind").cloned())
        .collect();
    assert!(kinds.contains(&Some(Value::Str("memory_bloat".into()))));
    assert!(kinds.contains(&Some(Value::Str("dead_thread".into()))));
    assert_eq!(telemetry.metrics().snapshot().counter("stabilize.checks"), 1);
    assert_eq!(telemetry.metrics().snapshot().counter("stabilize.violations"), 2);
}

#[test]
fn disabled_telemetry_changes_nothing_observable() {
    // Two identical runs, one instrumented, one not: commands and stats
    // must be byte-for-byte identical (telemetry never alters behavior).
    let mut plain = MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO);
    let (mut observed, _, _) = observed_mab();
    let a = plain.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
    let b = observed.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
    assert_eq!(a, b);
    assert_eq!(plain.stats(), observed.stats());
}
