//! Self-stabilization: periodic invariant checks and corrections (§4.2.1).
//!
//! "Since it is very difficult to anticipate all possible failures and to
//! detect and recover them on the spot, MyAlertBuddy incorporates
//! self-stabilization mechanisms that periodically check system invariants
//! and correct violations." The paper's deployment checked the
//! AreYouWorking callback every 3 minutes, the communication-client sanity
//! APIs every minute, and unprocessed dialog boxes every 20 seconds.

use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{Event, Telemetry};

/// The three periodic check cadences (paper defaults in [`Default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizationConfig {
    /// Cadence of the deep health check run inside the AreYouWorking
    /// callback (process/thread progress, resource consumption).
    pub health_interval: SimDuration,
    /// Cadence of the Email/IM Manager sanity-check API calls.
    pub sanity_interval: SimDuration,
    /// Cadence of the unprocessed-dialog-box scan.
    pub dialog_interval: SimDuration,
    /// Memory ceiling for the MyAlertBuddy process itself.
    pub memory_limit_kb: u64,
    /// An alert sitting unprocessed longer than this means a lost
    /// new-message event; the backlog sweep picks it up.
    pub max_unprocessed_age: SimDuration,
}

impl Default for StabilizationConfig {
    fn default() -> Self {
        StabilizationConfig {
            health_interval: SimDuration::from_mins(3),
            sanity_interval: SimDuration::from_mins(1),
            dialog_interval: SimDuration::from_secs(20),
            memory_limit_kb: 150_000,
            max_unprocessed_age: SimDuration::from_mins(5),
        }
    }
}

/// A snapshot of MyAlertBuddy internals examined by the health check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// IMs received but not yet routed.
    pub unprocessed_ims: usize,
    /// Age of the oldest unprocessed IM.
    pub oldest_unprocessed_age: SimDuration,
    /// Emails received but not yet routed.
    pub unprocessed_emails: usize,
    /// Resident memory of the MyAlertBuddy process in KB.
    pub memory_kb: u64,
    /// When the main loop last made observable progress.
    pub last_progress_at: SimTime,
    /// Whether all worker threads are alive.
    pub threads_alive: bool,
}

/// A violated invariant, with enough detail to pick a correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Messages are sitting unprocessed past the age limit (lost event).
    StaleBacklog {
        /// How many messages are waiting.
        count: usize,
        /// Age of the oldest.
        oldest_age: SimDuration,
    },
    /// The process has grown past the memory ceiling.
    MemoryBloat(
        /// Current resident KB.
        u64,
    ),
    /// No observable progress for longer than one health interval.
    NoProgress(
        /// Time since last progress.
        SimDuration,
    ),
    /// A worker thread died.
    DeadThread,
}

impl Violation {
    /// Short stable name used in `stabilize.violation` telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::StaleBacklog { .. } => "stale_backlog",
            Violation::MemoryBloat(_) => "memory_bloat",
            Violation::NoProgress(_) => "no_progress",
            Violation::DeadThread => "dead_thread",
        }
    }
}

/// The correction the checker prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// Sweep and process the backlog now (recoverable in place).
    ProcessBacklog,
    /// Gracefully terminate and let the MDC restart (rejuvenation): for
    /// violations "that cannot be rectified" in place.
    Rejuvenate,
}

impl Correction {
    /// Short stable name used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            Correction::ProcessBacklog => "process_backlog",
            Correction::Rejuvenate => "rejuvenate",
        }
    }
}

/// Checks a snapshot against the configured invariants.
///
/// Returns `(violation, correction)` pairs; an empty vector means all
/// invariants hold.
pub fn check_invariants(
    config: &StabilizationConfig,
    snapshot: &HealthSnapshot,
    now: SimTime,
) -> Vec<(Violation, Correction)> {
    let mut out = Vec::new();

    if (snapshot.unprocessed_ims > 0 || snapshot.unprocessed_emails > 0)
        && snapshot.oldest_unprocessed_age > config.max_unprocessed_age
    {
        out.push((
            Violation::StaleBacklog {
                count: snapshot.unprocessed_ims + snapshot.unprocessed_emails,
                oldest_age: snapshot.oldest_unprocessed_age,
            },
            Correction::ProcessBacklog,
        ));
    }

    if snapshot.memory_kb > config.memory_limit_kb {
        out.push((Violation::MemoryBloat(snapshot.memory_kb), Correction::Rejuvenate));
    }

    let stalled = now.since(snapshot.last_progress_at);
    if stalled > config.health_interval {
        out.push((Violation::NoProgress(stalled), Correction::Rejuvenate));
    }

    if !snapshot.threads_alive {
        out.push((Violation::DeadThread, Correction::Rejuvenate));
    }

    out
}

/// [`check_invariants`] plus telemetry: one `stabilize.check` event per
/// sweep and one `stabilize.violation` event (and counter bump) per
/// violated invariant.
pub fn check_invariants_observed(
    config: &StabilizationConfig,
    snapshot: &HealthSnapshot,
    now: SimTime,
    telemetry: &Telemetry,
) -> Vec<(Violation, Correction)> {
    let out = check_invariants(config, snapshot, now);
    if telemetry.enabled() {
        telemetry.metrics().counter("stabilize.checks").incr();
        telemetry.emit(
            Event::new("stabilize.check", now.as_millis()).with("violations", out.len()),
        );
        for (violation, correction) in &out {
            telemetry.metrics().counter("stabilize.violations").incr();
            telemetry.emit(
                Event::new("stabilize.violation", now.as_millis())
                    .with("kind", violation.kind())
                    .with("correction", correction.name()),
            );
        }
    }
    out
}

/// Tracks when each periodic check is next due.
#[derive(Debug, Clone, Copy)]
pub struct StabilizationSchedule {
    config: StabilizationConfig,
    next_health: SimTime,
    next_sanity: SimTime,
    next_dialog: SimTime,
}

impl StabilizationSchedule {
    /// Starts the schedule at `now` (first checks due one interval later).
    pub fn new(config: StabilizationConfig, now: SimTime) -> Self {
        StabilizationSchedule {
            config,
            next_health: now + config.health_interval,
            next_sanity: now + config.sanity_interval,
            next_dialog: now + config.dialog_interval,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> StabilizationConfig {
        self.config
    }

    /// Whether the deep health check is due; if so, advances it.
    pub fn health_due(&mut self, now: SimTime) -> bool {
        due(&mut self.next_health, self.config.health_interval, now)
    }

    /// Whether the manager sanity check is due; if so, advances it.
    pub fn sanity_due(&mut self, now: SimTime) -> bool {
        due(&mut self.next_sanity, self.config.sanity_interval, now)
    }

    /// Whether the dialog scan is due; if so, advances it.
    pub fn dialog_due(&mut self, now: SimTime) -> bool {
        due(&mut self.next_dialog, self.config.dialog_interval, now)
    }

    /// The soonest instant at which any check becomes due.
    pub fn next_due(&self) -> SimTime {
        self.next_health.min(self.next_sanity).min(self.next_dialog)
    }
}

fn due(next: &mut SimTime, interval: SimDuration, now: SimTime) -> bool {
    if now >= *next {
        // Skip forward past missed slots (e.g. after an outage) without
        // bursting.
        while *next <= now {
            *next += interval;
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn healthy(now: SimTime) -> HealthSnapshot {
        HealthSnapshot {
            unprocessed_ims: 0,
            oldest_unprocessed_age: SimDuration::ZERO,
            unprocessed_emails: 0,
            memory_kb: 40_000,
            last_progress_at: now,
            threads_alive: true,
        }
    }

    #[test]
    fn healthy_snapshot_has_no_violations() {
        let cfg = StabilizationConfig::default();
        assert!(check_invariants(&cfg, &healthy(t(100)), t(100)).is_empty());
    }

    #[test]
    fn stale_backlog_demands_processing() {
        let cfg = StabilizationConfig::default();
        let snap = HealthSnapshot {
            unprocessed_ims: 3,
            oldest_unprocessed_age: SimDuration::from_mins(10),
            ..healthy(t(1000))
        };
        let v = check_invariants(&cfg, &snap, t(1000));
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], (Violation::StaleBacklog { count: 3, .. }, Correction::ProcessBacklog)));
    }

    #[test]
    fn fresh_backlog_is_tolerated() {
        let cfg = StabilizationConfig::default();
        let snap = HealthSnapshot {
            unprocessed_ims: 3,
            oldest_unprocessed_age: SimDuration::from_secs(5),
            ..healthy(t(1000))
        };
        assert!(check_invariants(&cfg, &snap, t(1000)).is_empty());
    }

    #[test]
    fn memory_bloat_and_dead_thread_rejuvenate() {
        let cfg = StabilizationConfig::default();
        let snap = HealthSnapshot {
            memory_kb: 999_999,
            threads_alive: false,
            ..healthy(t(50))
        };
        let v = check_invariants(&cfg, &snap, t(50));
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|(_, c)| *c == Correction::Rejuvenate));
    }

    #[test]
    fn no_progress_detected() {
        let cfg = StabilizationConfig::default();
        let snap = HealthSnapshot {
            last_progress_at: t(0),
            ..healthy(t(0))
        };
        let v = check_invariants(&cfg, &snap, t(600));
        assert!(matches!(v[0].0, Violation::NoProgress(d) if d == SimDuration::from_secs(600)));
    }

    #[test]
    fn schedule_cadences_match_paper_defaults() {
        let cfg = StabilizationConfig::default();
        assert_eq!(cfg.health_interval, SimDuration::from_mins(3));
        assert_eq!(cfg.sanity_interval, SimDuration::from_mins(1));
        assert_eq!(cfg.dialog_interval, SimDuration::from_secs(20));
    }

    #[test]
    fn schedule_fires_each_check_at_its_own_cadence() {
        let mut s = StabilizationSchedule::new(StabilizationConfig::default(), t(0));
        assert!(!s.dialog_due(t(10)));
        assert!(s.dialog_due(t(20)));
        assert!(!s.dialog_due(t(21)));
        assert!(s.sanity_due(t(60)));
        assert!(!s.health_due(t(60)));
        assert!(s.health_due(t(180)));
        assert_eq!(s.next_due(), t(40)); // next dialog scan
    }

    #[test]
    fn schedule_skips_missed_slots_without_bursting() {
        let mut s = StabilizationSchedule::new(StabilizationConfig::default(), t(0));
        // MAB was down for an hour; exactly one dialog check fires, and the
        // next is due 20 s later — not 180 back-to-back.
        assert!(s.dialog_due(t(3_600)));
        assert!(!s.dialog_due(t(3_610)));
        assert!(s.dialog_due(t(3_620)));
    }
}
