//! Alerts: the unit of information SIMBA delivers.

use simba_sim::SimTime;

/// Unique id assigned by MyAlertBuddy when an alert enters the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlertId(pub u64);

impl std::fmt::Display for AlertId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "alert-{}", self.0)
    }
}

/// How urgent the *source* considers the alert. MyAlertBuddy's category →
/// delivery-mode mapping, not this field, decides how it is delivered —
/// urgency is advisory input to filtering/sub-categorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Urgency {
    /// Informational, no timeliness requirement.
    Low,
    /// Normal alert traffic.
    #[default]
    Normal,
    /// Time-critical, high-importance (basement flooding, outbid with
    /// minutes left).
    Critical,
}

impl std::fmt::Display for Urgency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Urgency::Low => "low",
            Urgency::Normal => "normal",
            Urgency::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// A raw alert as it arrives at MyAlertBuddy, before classification.
///
/// The fields mirror what the two transport channels carry: IM alerts are a
/// body tagged with the sender handle; email alerts additionally carry a
/// sender display name and subject — the two fields the classifier's
/// per-source keyword rules read (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingAlert {
    /// Source identifier: the sending IM handle or email address.
    pub source: String,
    /// Sender display name (email) or empty (IM).
    pub sender_name: String,
    /// Subject line (email) or empty (IM).
    pub subject: String,
    /// Alert text.
    pub body: String,
    /// The source's own timestamp, used for duplicate detection at the
    /// user (§4.2.1: "We use timestamps to allow the user to detect and
    /// discard duplicates").
    pub origin_timestamp: SimTime,
    /// Source-declared urgency.
    pub urgency: Urgency,
}

impl IncomingAlert {
    /// Creates an IM-style incoming alert (no sender name / subject).
    pub fn from_im(source: impl Into<String>, body: impl Into<String>, origin: SimTime) -> Self {
        IncomingAlert {
            source: source.into(),
            sender_name: String::new(),
            subject: String::new(),
            body: body.into(),
            origin_timestamp: origin,
            urgency: Urgency::Normal,
        }
    }

    /// Creates an email-style incoming alert.
    pub fn from_email(
        source: impl Into<String>,
        sender_name: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
        origin: SimTime,
    ) -> Self {
        IncomingAlert {
            source: source.into(),
            sender_name: sender_name.into(),
            subject: subject.into(),
            body: body.into(),
            origin_timestamp: origin,
            urgency: Urgency::Normal,
        }
    }

    /// Sets the urgency, builder style.
    #[must_use]
    pub fn with_urgency(mut self, urgency: Urgency) -> Self {
        self.urgency = urgency;
        self
    }
}

/// A storm of correlated alerts collapsed into one deliverable summary.
///
/// The rules pipeline's windowed correlator (crate `simba-rules`) absorbs
/// bursts that share a correlation key and flushes them as one of these:
/// a count, the window's first/last origin timestamps, and a bounded set
/// of exemplar payloads. [`DigestAlert::to_incoming`] renders it as a
/// normal [`IncomingAlert`] so the delivery pipeline needs no new path —
/// a flapping source costs the user one delivery, not thousands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestAlert {
    /// The user the digest belongs to.
    pub user: String,
    /// The correlation key the burst shared (default `user/source/kind`).
    pub key: String,
    /// Source of the correlated alerts.
    pub source: String,
    /// Kind (subject/category) of the correlated alerts.
    pub kind: String,
    /// How many alerts the digest absorbed.
    pub count: u64,
    /// Origin timestamp of the first absorbed alert.
    pub first: SimTime,
    /// Origin timestamp of the last absorbed alert.
    pub last: SimTime,
    /// Up to `max_exemplars` payload bodies, first-come.
    pub exemplars: Vec<String>,
    /// Highest urgency observed across the burst.
    pub urgency: Urgency,
}

impl DigestAlert {
    /// Renders the digest as a deliverable [`IncomingAlert`]. The subject
    /// carries the count and kind; the body carries the window bounds and
    /// exemplars. The origin timestamp is the window's *last* alert, so
    /// user-side timestamp dedup treats each flushed window as distinct.
    pub fn to_incoming(&self) -> IncomingAlert {
        let mut body = format!(
            "{} alerts from {}/{} between t+{}ms and t+{}ms",
            self.count,
            self.source,
            self.kind,
            self.first.as_millis(),
            self.last.as_millis(),
        );
        for exemplar in &self.exemplars {
            body.push_str("\n  e.g. ");
            body.push_str(exemplar);
        }
        IncomingAlert {
            source: self.source.clone(),
            sender_name: String::new(),
            subject: format!("digest: {}x {}", self.count, self.kind),
            body,
            origin_timestamp: self.last,
            urgency: self.urgency,
        }
    }
}

/// A classified alert flowing through MyAlertBuddy's routing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Pipeline-assigned id.
    pub id: AlertId,
    /// Source identifier.
    pub source: String,
    /// The personal category the classifier assigned.
    pub category: String,
    /// Display text delivered to the user.
    pub text: String,
    /// The source's own timestamp (for dedup).
    pub origin_timestamp: SimTime,
    /// When MyAlertBuddy accepted it.
    pub received_at: SimTime,
    /// Source-declared urgency.
    pub urgency: Urgency,
}

impl Alert {
    /// The key used for timestamp-based duplicate detection at the user:
    /// two alerts with the same source, category, and origin timestamp are
    /// duplicates (a retransmission after an unmarked WAL replay).
    pub fn dedup_key(&self) -> (String, String, SimTime) {
        (
            self.source.clone(),
            self.category.clone(),
            self.origin_timestamp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urgency_orders_low_to_critical() {
        assert!(Urgency::Low < Urgency::Normal);
        assert!(Urgency::Normal < Urgency::Critical);
        assert_eq!(Urgency::default(), Urgency::Normal);
    }

    #[test]
    fn constructors_fill_channel_fields() {
        let im = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO);
        assert!(im.sender_name.is_empty());
        assert!(im.subject.is_empty());
        assert_eq!(im.body, "Basement Water Sensor ON");

        let em = IncomingAlert::from_email(
            "alerts@yahoo",
            "Yahoo! Stocks",
            "MSFT crossed 80",
            "details",
            SimTime::from_secs(5),
        )
        .with_urgency(Urgency::Critical);
        assert_eq!(em.sender_name, "Yahoo! Stocks");
        assert_eq!(em.urgency, Urgency::Critical);
        assert_eq!(em.origin_timestamp, SimTime::from_secs(5));
    }

    #[test]
    fn dedup_key_matches_same_origin() {
        let mk = |id: u64, received: u64| Alert {
            id: AlertId(id),
            source: "aladdin".into(),
            category: "Home.Security".into(),
            text: "x".into(),
            origin_timestamp: SimTime::from_secs(100),
            received_at: SimTime::from_secs(received),
            urgency: Urgency::Critical,
        };
        // Same alert re-sent after a crash: different id and receive time,
        // same dedup key.
        assert_eq!(mk(1, 101).dedup_key(), mk(2, 160).dedup_key());
    }

    #[test]
    fn display_impls() {
        assert_eq!(AlertId(7).to_string(), "alert-7");
        assert_eq!(Urgency::Critical.to_string(), "critical");
    }
}
