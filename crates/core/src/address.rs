//! User addresses and the per-user address book.
//!
//! "An XML document for user addresses consists of a list of all of a
//! user's addresses for alert delivery. Each address is associated with a
//! communication type (e.g., 'IM', 'SMS', and 'EM') and identified by a
//! friendly name such as 'MSN IM', 'Work email'" (§4.1). Addresses can be
//! enabled/disabled at runtime — disabling the SMS address when the phone
//! dies is the §3.3 scenario that makes delivery-mode fallback automatic.

use simba_xml::{Element, XmlError};

/// The communication type of an address — the paper's `"IM"`, `"SMS"`,
/// `"EM"` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommType {
    /// Instant messaging: synchronous, acknowledgeable.
    Im,
    /// Cell-phone short messages: fire-and-forget, coverage-dependent.
    Sms,
    /// Email: store-and-forward fallback.
    Email,
}

impl CommType {
    /// The XML token for this type.
    pub fn as_token(self) -> &'static str {
        match self {
            CommType::Im => "IM",
            CommType::Sms => "SMS",
            CommType::Email => "EM",
        }
    }

    /// Parses the XML token.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "IM" => Some(CommType::Im),
            "SMS" => Some(CommType::Sms),
            "EM" => Some(CommType::Email),
            _ => None,
        }
    }

    /// Whether the channel supports end-to-end acknowledgements (§3.1:
    /// only IM does).
    pub fn supports_ack(self) -> bool {
        matches!(self, CommType::Im)
    }
}

impl std::fmt::Display for CommType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_token())
    }
}

/// One delivery address in a user's address book.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// Friendly name, the key actions in delivery modes refer to.
    pub friendly_name: String,
    /// Channel type.
    pub comm_type: CommType,
    /// Channel-specific value: IM handle, phone number, or email address.
    pub value: String,
    /// Whether the address is currently enabled.
    pub enabled: bool,
}

impl Address {
    /// Creates an enabled address.
    pub fn new(
        friendly_name: impl Into<String>,
        comm_type: CommType,
        value: impl Into<String>,
    ) -> Self {
        Address {
            friendly_name: friendly_name.into(),
            comm_type,
            value: value.into(),
            enabled: true,
        }
    }
}

/// Errors turning XML into an address book.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressBookError {
    /// The XML failed to parse.
    Xml(XmlError),
    /// The document structure was wrong (missing element/attribute).
    Structure(String),
    /// Two addresses share a friendly name.
    DuplicateName(String),
    /// An unknown communication type token.
    UnknownCommType(String),
}

impl std::fmt::Display for AddressBookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressBookError::Xml(e) => write!(f, "xml: {e}"),
            AddressBookError::Structure(s) => write!(f, "bad address book structure: {s}"),
            AddressBookError::DuplicateName(n) => write!(f, "duplicate address name {n:?}"),
            AddressBookError::UnknownCommType(t) => write!(f, "unknown communication type {t:?}"),
        }
    }
}

impl std::error::Error for AddressBookError {}

impl From<XmlError> for AddressBookError {
    fn from(e: XmlError) -> Self {
        AddressBookError::Xml(e)
    }
}

/// A user's address book: friendly-named, typed, enable/disable-able
/// addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AddressBook {
    addresses: Vec<Address>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> Self {
        AddressBook::default()
    }

    /// Adds an address.
    ///
    /// # Errors
    ///
    /// Fails if the friendly name is already taken.
    pub fn add(&mut self, address: Address) -> Result<(), AddressBookError> {
        if self.get(&address.friendly_name).is_some() {
            return Err(AddressBookError::DuplicateName(address.friendly_name));
        }
        self.addresses.push(address);
        Ok(())
    }

    /// Looks an address up by friendly name.
    pub fn get(&self, friendly_name: &str) -> Option<&Address> {
        self.addresses
            .iter()
            .find(|a| a.friendly_name == friendly_name)
    }

    /// Enables or disables an address. Returns `false` if unknown.
    ///
    /// This is the §3.3 one-stop switch: "she only needs to ask
    /// MyAlertBuddy to temporarily disable her SMS address. Any delivery
    /// block that contains an SMS action will automatically fail and fall
    /// back to the next backup block."
    pub fn set_enabled(&mut self, friendly_name: &str, enabled: bool) -> bool {
        match self
            .addresses
            .iter_mut()
            .find(|a| a.friendly_name == friendly_name)
        {
            Some(a) => {
                a.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Enables or disables every address of a communication type.
    /// Returns how many were changed.
    pub fn set_type_enabled(&mut self, comm_type: CommType, enabled: bool) -> usize {
        let mut n = 0;
        for a in &mut self.addresses {
            if a.comm_type == comm_type && a.enabled != enabled {
                a.enabled = enabled;
                n += 1;
            }
        }
        n
    }

    /// All addresses in insertion order.
    pub fn addresses(&self) -> &[Address] {
        &self.addresses
    }

    /// All currently enabled addresses.
    pub fn enabled(&self) -> impl Iterator<Item = &Address> {
        self.addresses.iter().filter(|a| a.enabled)
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Serializes to the §4.1 XML document shape.
    ///
    /// ```xml
    /// <Addresses>
    ///   <Address name="MSN IM" type="IM" value="im:alice" enabled="true"/>
    ///   ...
    /// </Addresses>
    /// ```
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("Addresses");
        for a in &self.addresses {
            root = root.with_child(
                Element::new("Address")
                    .with_attr("name", a.friendly_name.clone())
                    .with_attr("type", a.comm_type.as_token())
                    .with_attr("value", a.value.clone())
                    .with_attr("enabled", if a.enabled { "true" } else { "false" }),
            );
        }
        root.to_xml_pretty()
    }

    /// Parses the §4.1 XML document shape.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML, a wrong root element, missing attributes,
    /// unknown communication types, or duplicate friendly names.
    pub fn from_xml(xml: &str) -> Result<Self, AddressBookError> {
        let root = simba_xml::parse(xml)?;
        if root.name != "Addresses" {
            return Err(AddressBookError::Structure(format!(
                "expected <Addresses> root, found <{}>",
                root.name
            )));
        }
        let mut book = AddressBook::new();
        for el in root.children_named("Address") {
            let name = el
                .attr("name")
                .ok_or_else(|| AddressBookError::Structure("<Address> missing name".into()))?;
            let ty = el
                .attr("type")
                .ok_or_else(|| AddressBookError::Structure("<Address> missing type".into()))?;
            let value = el
                .attr("value")
                .ok_or_else(|| AddressBookError::Structure("<Address> missing value".into()))?;
            let comm_type = CommType::from_token(ty)
                .ok_or_else(|| AddressBookError::UnknownCommType(ty.to_string()))?;
            let enabled = el.attr("enabled").is_none_or(|v| v == "true");
            book.add(Address {
                friendly_name: name.to_string(),
                comm_type,
                value: value.to_string(),
                enabled,
            })?;
        }
        Ok(book)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AddressBook {
        let mut book = AddressBook::new();
        book.add(Address::new("MSN IM", CommType::Im, "im:alice")).unwrap();
        book.add(Address::new("Cell SMS", CommType::Sms, "+1-555-0100")).unwrap();
        book.add(Address::new("Work email", CommType::Email, "alice@work")).unwrap();
        book
    }

    #[test]
    fn comm_type_tokens_round_trip() {
        for t in [CommType::Im, CommType::Sms, CommType::Email] {
            assert_eq!(CommType::from_token(t.as_token()), Some(t));
        }
        assert_eq!(CommType::from_token("FAX"), None);
        assert!(CommType::Im.supports_ack());
        assert!(!CommType::Sms.supports_ack());
        assert!(!CommType::Email.supports_ack());
    }

    #[test]
    fn duplicate_friendly_names_rejected() {
        let mut book = sample();
        let err = book
            .add(Address::new("MSN IM", CommType::Im, "im:other"))
            .unwrap_err();
        assert_eq!(err, AddressBookError::DuplicateName("MSN IM".into()));
    }

    #[test]
    fn enable_disable_by_name() {
        let mut book = sample();
        assert!(book.get("Cell SMS").unwrap().enabled);
        assert!(book.set_enabled("Cell SMS", false));
        assert!(!book.get("Cell SMS").unwrap().enabled);
        assert_eq!(book.enabled().count(), 2);
        assert!(!book.set_enabled("No Such", false));
    }

    #[test]
    fn disable_whole_type() {
        let mut book = sample();
        book.add(Address::new("Home SMS", CommType::Sms, "+1-555-0101")).unwrap();
        assert_eq!(book.set_type_enabled(CommType::Sms, false), 2);
        assert_eq!(book.set_type_enabled(CommType::Sms, false), 0); // already off
        assert!(book.get("MSN IM").unwrap().enabled);
    }

    #[test]
    fn xml_round_trip() {
        let mut book = sample();
        book.set_enabled("Cell SMS", false);
        let xml = book.to_xml();
        let parsed = AddressBook::from_xml(&xml).unwrap();
        assert_eq!(parsed, book);
    }

    #[test]
    fn xml_default_enabled_is_true() {
        let book = AddressBook::from_xml(
            r#"<Addresses><Address name="A" type="IM" value="im:a"/></Addresses>"#,
        )
        .unwrap();
        assert!(book.get("A").unwrap().enabled);
    }

    #[test]
    fn xml_structure_errors() {
        assert!(matches!(
            AddressBook::from_xml("<Wrong/>"),
            Err(AddressBookError::Structure(_))
        ));
        assert!(matches!(
            AddressBook::from_xml(r#"<Addresses><Address type="IM" value="x"/></Addresses>"#),
            Err(AddressBookError::Structure(_))
        ));
        assert!(matches!(
            AddressBook::from_xml(
                r#"<Addresses><Address name="A" type="FAX" value="x"/></Addresses>"#
            ),
            Err(AddressBookError::UnknownCommType(_))
        ));
        assert!(matches!(
            AddressBook::from_xml("not xml"),
            Err(AddressBookError::Xml(_))
        ));
    }

    #[test]
    fn xml_duplicate_names_rejected() {
        let xml = r#"<Addresses>
            <Address name="A" type="IM" value="x"/>
            <Address name="A" type="EM" value="y"/>
        </Addresses>"#;
        assert!(matches!(
            AddressBook::from_xml(xml),
            Err(AddressBookError::DuplicateName(_))
        ));
    }

    #[test]
    fn xml_values_with_special_chars_survive() {
        let mut book = AddressBook::new();
        book.add(Address::new("Odd & Name", CommType::Email, "a<b>@work\"quoted\"")).unwrap();
        let parsed = AddressBook::from_xml(&book.to_xml()).unwrap();
        assert_eq!(parsed, book);
    }
}
