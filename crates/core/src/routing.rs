//! Presence-aware delivery routing.
//!
//! The paper's §5 integration: Aladdin's Soft-State Store and the WISH
//! user-location service tell SIMBA *where the user is* and *which
//! channels are healthy*, and MyAlertBuddy folds that into the delivery
//! mode it starts a delivery with. The static profile stays the source
//! of truth — soft state only reorders or skips blocks, and when the
//! facts are absent or expired the profile is used untouched.
//!
//! The buddy itself stays a pure state machine: it consults a
//! [`ModeSelector`] (injected by the runtime, backed by the soft-state
//! store there) that distills the current facts into a
//! [`RoutingContext`], and the pure [`apply_routing`] function derives
//! the adjusted mode. Core never talks to the store directly.

use crate::address::{AddressBook, CommType};
use crate::mode::DeliveryMode;
use crate::subscription::UserId;
use simba_sim::SimTime;
use std::collections::BTreeSet;

/// Where the user currently is, per the location service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresenceHint {
    /// At their desktop — IM-first routing is ideal.
    AtDesk,
    /// Reachable, but not at a desktop (phone in hand): desktop IM is
    /// deprioritized but still worth trying after mobile channels.
    Mobile,
    /// Away from every watched device: a desktop IM block would burn its
    /// whole ack timeout for nothing, so it is skipped outright.
    Away,
}

impl PresenceHint {
    /// Parses the wire/fact value (`"at_desk"` / `"mobile"` / `"away"`).
    pub fn from_value(value: &str) -> Option<PresenceHint> {
        match value {
            "at_desk" => Some(PresenceHint::AtDesk),
            "mobile" => Some(PresenceHint::Mobile),
            "away" => Some(PresenceHint::Away),
            _ => None,
        }
    }

    /// The canonical fact value for this hint.
    pub fn as_value(self) -> &'static str {
        match self {
            PresenceHint::AtDesk => "at_desk",
            PresenceHint::Mobile => "mobile",
            PresenceHint::Away => "away",
        }
    }
}

/// The soft-state facts relevant to one delivery, distilled. An empty
/// context (the default) means "no live facts" and always leaves the
/// static profile untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingContext {
    /// The user's presence, if a live fact says so.
    pub presence: Option<PresenceHint>,
    /// Channel types a live fact reports unhealthy.
    pub unhealthy: BTreeSet<CommType>,
}

impl RoutingContext {
    /// Whether the context carries no facts at all.
    pub fn is_empty(&self) -> bool {
        self.presence.is_none() && self.unhealthy.is_empty()
    }
}

/// Supplies the [`RoutingContext`] for a user at delivery start. The
/// runtime's implementation reads the soft-state store; `None`-ish
/// (empty) contexts fall back to the static profile.
pub trait ModeSelector: Send + std::fmt::Debug {
    /// The facts in force for `user` at `now`.
    fn context(&self, user: &UserId, now: SimTime) -> RoutingContext;
}

/// How every block in a mode classifies against the address book.
fn block_type(actions: &[String], book: &AddressBook) -> Option<CommType> {
    let mut types = actions.iter().filter_map(|name| book.get(name)).map(|a| a.comm_type);
    let first = types.next()?;
    types.all(|t| t == first).then_some(first)
}

/// Derives the delivery mode to start with, given the static `mode` and
/// the live `ctx`. Returns `None` when the facts change nothing — the
/// caller then uses the static mode as-is, which is also the behaviour
/// whenever an adjustment would leave the mode invalid (e.g. every block
/// skipped): soft state may never make an alert undeliverable.
///
/// Rules, in order:
/// 1. **Away** skips blocks made entirely of IM actions (desktop IM has
///    nobody in front of it; its ack timeout would only delay backups).
/// 2. **Mobile** demotes all-IM blocks behind everything else.
/// 3. Each block whose actions all map to an **unhealthy** channel type
///    is demoted behind the healthy blocks, preserving relative order.
pub fn apply_routing(
    mode: &DeliveryMode,
    book: &AddressBook,
    ctx: &RoutingContext,
) -> Option<DeliveryMode> {
    if ctx.is_empty() {
        return None;
    }
    let mut keep = Vec::new();
    let mut demoted = Vec::new();
    for block in mode.blocks() {
        let ty = block_type(&block.actions, book);
        let is_im = ty == Some(CommType::Im);
        if is_im && ctx.presence == Some(PresenceHint::Away) {
            continue;
        }
        let unhealthy = ty.is_some_and(|t| ctx.unhealthy.contains(&t));
        let mobile_demoted = is_im && ctx.presence == Some(PresenceHint::Mobile);
        if unhealthy || mobile_demoted {
            demoted.push(block.clone());
        } else {
            keep.push(block.clone());
        }
    }
    keep.extend(demoted);
    if keep.len() == mode.len() && keep.iter().zip(mode.blocks()).all(|(a, b)| a == b) {
        return None;
    }
    DeliveryMode::new(mode.name.clone(), keep).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::mode::{AckPolicy, Block};
    use simba_sim::SimDuration;

    fn book() -> AddressBook {
        let mut book = AddressBook::new();
        book.add(Address::new("MSN IM", CommType::Im, "alice@im")).expect("unique");
        book.add(Address::new("Cell SMS", CommType::Sms, "555-0100")).expect("unique");
        book.add(Address::new("Work email", CommType::Email, "alice@work")).expect("unique");
        book
    }

    fn three_block_mode() -> DeliveryMode {
        DeliveryMode::new(
            "Urgent",
            vec![
                Block::acked(vec!["MSN IM".into()], SimDuration::from_secs(60)),
                Block::fire_and_forget(vec!["Cell SMS".into()]),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .expect("static mode")
    }

    #[test]
    fn empty_context_changes_nothing() {
        assert_eq!(apply_routing(&three_block_mode(), &book(), &RoutingContext::default()), None);
    }

    #[test]
    fn at_desk_changes_nothing() {
        let ctx = RoutingContext { presence: Some(PresenceHint::AtDesk), ..Default::default() };
        assert_eq!(apply_routing(&three_block_mode(), &book(), &ctx), None);
    }

    #[test]
    fn away_skips_im_block() {
        let ctx = RoutingContext { presence: Some(PresenceHint::Away), ..Default::default() };
        let adjusted = apply_routing(&three_block_mode(), &book(), &ctx).expect("adjusted");
        assert_eq!(adjusted.len(), 2);
        assert_eq!(adjusted.blocks()[0].actions, vec!["Cell SMS".to_string()]);
        assert_eq!(adjusted.blocks()[1].actions, vec!["Work email".to_string()]);
    }

    #[test]
    fn away_never_empties_the_mode() {
        let im_only = DeliveryMode::new(
            "ImOnly",
            vec![Block::acked(vec!["MSN IM".into()], SimDuration::from_secs(60))],
        )
        .expect("static mode");
        let ctx = RoutingContext { presence: Some(PresenceHint::Away), ..Default::default() };
        // Skipping the only block would make the alert undeliverable;
        // fall back to the static profile instead.
        assert_eq!(apply_routing(&im_only, &book(), &ctx), None);
    }

    #[test]
    fn mobile_demotes_im_behind_backups() {
        let ctx = RoutingContext { presence: Some(PresenceHint::Mobile), ..Default::default() };
        let adjusted = apply_routing(&three_block_mode(), &book(), &ctx).expect("adjusted");
        assert_eq!(adjusted.len(), 3);
        assert_eq!(adjusted.blocks()[0].actions, vec!["Cell SMS".to_string()]);
        assert_eq!(adjusted.blocks()[1].actions, vec!["Work email".to_string()]);
        assert_eq!(adjusted.blocks()[2].actions, vec!["MSN IM".to_string()]);
        // The demoted IM block keeps its ack policy.
        assert_eq!(adjusted.blocks()[2].ack, AckPolicy::Required(SimDuration::from_secs(60)));
    }

    #[test]
    fn unhealthy_channel_demotes_its_block() {
        let ctx = RoutingContext {
            presence: None,
            unhealthy: [CommType::Im].into_iter().collect(),
        };
        let adjusted = apply_routing(&three_block_mode(), &book(), &ctx).expect("adjusted");
        assert_eq!(adjusted.blocks()[0].actions, vec!["Cell SMS".to_string()]);
        assert_eq!(adjusted.blocks()[2].actions, vec!["MSN IM".to_string()]);
    }

    #[test]
    fn mixed_block_is_left_alone() {
        let mixed = DeliveryMode::new(
            "Mixed",
            vec![
                Block::acked(vec!["MSN IM".into(), "Cell SMS".into()], SimDuration::from_secs(60)),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .expect("static mode");
        // A block spanning several channel types still reaches the user
        // through the healthy one; don't second-guess it.
        let ctx = RoutingContext { presence: Some(PresenceHint::Away), ..Default::default() };
        assert_eq!(apply_routing(&mixed, &book(), &ctx), None);
    }

    #[test]
    fn unknown_actions_are_left_alone() {
        let unknown = DeliveryMode::new(
            "Unknown",
            vec![
                Block::fire_and_forget(vec!["No such address".into()]),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .expect("static mode");
        let ctx = RoutingContext { presence: Some(PresenceHint::Away), ..Default::default() };
        assert_eq!(apply_routing(&unknown, &book(), &ctx), None);
    }

    #[test]
    fn presence_values_round_trip() {
        for hint in [PresenceHint::AtDesk, PresenceHint::Mobile, PresenceHint::Away] {
            assert_eq!(PresenceHint::from_value(hint.as_value()), Some(hint));
        }
        assert_eq!(PresenceHint::from_value("gone fishing"), None);
    }
}
