//! Software rejuvenation policy (§4.2.1).
//!
//! "We perform three kinds of rejuvenation tasks in MyAlertBuddy: (1)
//! whenever MyAlertBuddy catches an exception that cannot be handled or any
//! of the self-stabilization checks reveals invariant violations that
//! cannot be rectified ... (2) Every night at 11:30 PM ... (3) to
//! facilitate remote administration, SIMBA allows users to send IMs or
//! emails with special keywords to explicitly trigger rejuvenation."

use simba_sim::{SimDuration, SimTime};

/// Why a rejuvenation was initiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejuvenationTrigger {
    /// An exception that could not be handled.
    UnhandledException,
    /// A self-stabilization invariant violation that could not be
    /// rectified in place.
    InvariantViolation,
    /// The nightly scheduled restart.
    Nightly,
    /// A remote-administration command arrived by IM or email.
    RemoteCommand,
}

impl std::fmt::Display for RejuvenationTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejuvenationTrigger::UnhandledException => "unhandled-exception",
            RejuvenationTrigger::InvariantViolation => "invariant-violation",
            RejuvenationTrigger::Nightly => "nightly",
            RejuvenationTrigger::RemoteCommand => "remote-command",
        };
        f.write_str(s)
    }
}

/// The rejuvenation policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejuvenationPolicy {
    /// Minute-of-day for the nightly restart (paper: 11:30 PM), or `None`
    /// to disable nightly rejuvenation (the A4 ablation).
    pub nightly_minute: Option<u32>,
    /// The magic keyword recognized in IM/email bodies.
    pub remote_keyword: String,
}

impl Default for RejuvenationPolicy {
    fn default() -> Self {
        RejuvenationPolicy {
            nightly_minute: Some(23 * 60 + 30),
            remote_keyword: "SIMBA-REJUVENATE".to_string(),
        }
    }
}

impl RejuvenationPolicy {
    /// A policy with nightly rejuvenation disabled.
    pub fn without_nightly() -> Self {
        RejuvenationPolicy {
            nightly_minute: None,
            ..RejuvenationPolicy::default()
        }
    }

    /// The next nightly rejuvenation instant strictly after `now`, if
    /// nightly rejuvenation is enabled.
    pub fn next_nightly(&self, now: SimTime) -> Option<SimTime> {
        let minute = self.nightly_minute?;
        let target_ms = u64::from(minute) * 60_000;
        let today = SimTime::from_days(now.day_index()) + SimDuration::from_millis(target_ms);
        Some(if today > now {
            today
        } else {
            today + SimDuration::from_days(1)
        })
    }

    /// Inspects a message body for the remote rejuvenation command.
    pub fn remote_trigger(&self, body: &str) -> Option<RejuvenationTrigger> {
        if body.contains(&self.remote_keyword) {
            Some(RejuvenationTrigger::RemoteCommand)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nightly_is_2330_by_default() {
        let p = RejuvenationPolicy::default();
        let morning = SimTime::from_hours(9);
        let next = p.next_nightly(morning).unwrap();
        assert_eq!(next, SimTime::from_hours(23) + SimDuration::from_mins(30));
    }

    #[test]
    fn nightly_after_2330_rolls_to_tomorrow() {
        let p = RejuvenationPolicy::default();
        let late = SimTime::from_hours(23) + SimDuration::from_mins(45);
        let next = p.next_nightly(late).unwrap();
        assert_eq!(next.day_index(), 1);
        assert_eq!(next.millis_of_day(), (23 * 60 + 30) * 60_000);
    }

    #[test]
    fn nightly_exactly_at_2330_schedules_tomorrow() {
        let p = RejuvenationPolicy::default();
        let at = SimTime::from_hours(23) + SimDuration::from_mins(30);
        let next = p.next_nightly(at).unwrap();
        assert!(next > at);
        assert_eq!(next.day_index(), 1);
    }

    #[test]
    fn nightly_disabled() {
        let p = RejuvenationPolicy::without_nightly();
        assert_eq!(p.next_nightly(SimTime::ZERO), None);
    }

    #[test]
    fn nightly_works_across_many_days() {
        let p = RejuvenationPolicy::default();
        let mut now = SimTime::ZERO;
        for day in 0..5 {
            let next = p.next_nightly(now).unwrap();
            assert_eq!(next.day_index(), day);
            assert_eq!(next.millis_of_day(), (23 * 60 + 30) * 60_000);
            now = next + SimDuration::from_millis(1);
        }
    }

    #[test]
    fn remote_keyword_detection() {
        let p = RejuvenationPolicy::default();
        assert_eq!(
            p.remote_trigger("please SIMBA-REJUVENATE now"),
            Some(RejuvenationTrigger::RemoteCommand)
        );
        assert_eq!(p.remote_trigger("ordinary alert text"), None);
        // Case-sensitive on purpose: it is a command, not prose.
        assert_eq!(p.remote_trigger("simba-rejuvenate"), None);
    }

    #[test]
    fn trigger_display_names() {
        assert_eq!(RejuvenationTrigger::Nightly.to_string(), "nightly");
        assert_eq!(
            RejuvenationTrigger::UnhandledException.to_string(),
            "unhandled-exception"
        );
    }
}
