//! Delivery modes: the paper's abstraction for personalized dependability.
//!
//! "An XML document for a delivery mode contains one or more communication
//! blocks, each of which contains one or more actions. Each action maps to
//! the friendly name of an address" (§4.1, Figure 4). A block's actions
//! fire together; if the block requires acknowledgement and none arrives
//! within the timeout, the next (backup) block fires.

use simba_sim::SimDuration;
use simba_xml::{Element, XmlError};

/// Whether a block waits for an end-to-end acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Wait up to the timeout for a user/MAB acknowledgement; fall back to
    /// the next block if none arrives. Only meaningful when the block
    /// contains an IM action (the one channel with acks, §3.1).
    Required(
        /// How long to wait for the acknowledgement.
        SimDuration,
    ),
    /// Fire and forget: the block completes (unconfirmed) as soon as at
    /// least one send is accepted.
    None,
}

/// One communication block: a set of actions fired together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Friendly names of the addresses to fire.
    pub actions: Vec<String>,
    /// Acknowledgement policy.
    pub ack: AckPolicy,
}

impl Block {
    /// A block that requires an ack within `timeout`.
    pub fn acked(actions: Vec<String>, timeout: SimDuration) -> Self {
        Block {
            actions,
            ack: AckPolicy::Required(timeout),
        }
    }

    /// A fire-and-forget block.
    pub fn fire_and_forget(actions: Vec<String>) -> Self {
        Block {
            actions,
            ack: AckPolicy::None,
        }
    }
}

/// Validation / parse errors for delivery modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeError {
    /// The XML failed to parse.
    Xml(XmlError),
    /// Structural problem (wrong root, missing attribute...).
    Structure(String),
    /// A mode must contain at least one block.
    NoBlocks,
    /// A block must contain at least one action.
    EmptyBlock(
        /// Zero-based block index.
        usize,
    ),
    /// The `ackTimeoutSecs` attribute was not a positive integer.
    BadTimeout(String),
}

impl std::fmt::Display for ModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeError::Xml(e) => write!(f, "xml: {e}"),
            ModeError::Structure(s) => write!(f, "bad delivery mode structure: {s}"),
            ModeError::NoBlocks => write!(f, "delivery mode has no blocks"),
            ModeError::EmptyBlock(i) => write!(f, "block {i} has no actions"),
            ModeError::BadTimeout(v) => write!(f, "bad ackTimeoutSecs value {v:?}"),
        }
    }
}

impl std::error::Error for ModeError {}

impl From<XmlError> for ModeError {
    fn from(e: XmlError) -> Self {
        ModeError::Xml(e)
    }
}

/// A named delivery mode: an ordered list of blocks, first is primary,
/// the rest are backups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryMode {
    /// The user-chosen friendly name ("Urgent", "Daytime", ...).
    pub name: String,
    blocks: Vec<Block>,
}

impl DeliveryMode {
    /// Creates a validated mode.
    ///
    /// # Errors
    ///
    /// Fails if there are no blocks or any block has no actions.
    pub fn new(name: impl Into<String>, blocks: Vec<Block>) -> Result<Self, ModeError> {
        if blocks.is_empty() {
            return Err(ModeError::NoBlocks);
        }
        for (i, b) in blocks.iter().enumerate() {
            if b.actions.is_empty() {
                return Err(ModeError::EmptyBlock(i));
            }
        }
        Ok(DeliveryMode {
            name: name.into(),
            blocks,
        })
    }

    /// The paper's flagship mode: "IM-with-acknowledgement followed by
    /// email" (§4.2) — block 1 is the IM address with an ack timeout,
    /// block 2 the email fallback.
    pub fn im_then_email(
        name: impl Into<String>,
        im_address: impl Into<String>,
        email_address: impl Into<String>,
        ack_timeout: SimDuration,
    ) -> Self {
        DeliveryMode::new(
            name,
            vec![
                Block::acked(vec![im_address.into()], ack_timeout),
                Block::fire_and_forget(vec![email_address.into()]),
            ],
        )
        // simba-analyze: allow(hygiene.unwrap): the two-block vec above is statically non-empty
        .expect("statically non-empty")
    }

    /// The ordered blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A delivery mode is never empty (validated at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes to the Figure 4 XML shape.
    ///
    /// ```xml
    /// <DeliveryMode name="Urgent">
    ///   <Block ackTimeoutSecs="60">
    ///     <Action address="MSN IM"/>
    ///   </Block>
    ///   <Block>
    ///     <Action address="Work email"/>
    ///   </Block>
    /// </DeliveryMode>
    /// ```
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("DeliveryMode").with_attr("name", self.name.clone());
        for b in &self.blocks {
            let mut block = Element::new("Block");
            if let AckPolicy::Required(t) = b.ack {
                block = block.with_attr("ackTimeoutSecs", t.as_secs().to_string());
            }
            for action in &b.actions {
                block = block.with_child(Element::new("Action").with_attr("address", action.clone()));
            }
            root = root.with_child(block);
        }
        root.to_xml_pretty()
    }

    /// Parses the Figure 4 XML shape.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML, a wrong root element, a missing mode name,
    /// an action without an address, a non-numeric/zero ack timeout, or a
    /// structurally empty mode/block.
    pub fn from_xml(xml: &str) -> Result<Self, ModeError> {
        let root = simba_xml::parse(xml)?;
        if root.name != "DeliveryMode" {
            return Err(ModeError::Structure(format!(
                "expected <DeliveryMode> root, found <{}>",
                root.name
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| ModeError::Structure("<DeliveryMode> missing name".into()))?;
        let mut blocks = Vec::new();
        for block_el in root.children_named("Block") {
            let ack = match block_el.attr("ackTimeoutSecs") {
                Some(v) => {
                    let secs: u64 = v
                        .parse()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or_else(|| ModeError::BadTimeout(v.to_string()))?;
                    AckPolicy::Required(SimDuration::from_secs(secs))
                }
                None => AckPolicy::None,
            };
            let mut actions = Vec::new();
            for action_el in block_el.children_named("Action") {
                let addr = action_el
                    .attr("address")
                    .ok_or_else(|| ModeError::Structure("<Action> missing address".into()))?;
                actions.push(addr.to_string());
            }
            blocks.push(Block { actions, ack });
        }
        DeliveryMode::new(name, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urgent() -> DeliveryMode {
        DeliveryMode::new(
            "Urgent",
            vec![
                Block::acked(
                    vec!["MSN IM".into(), "Cell SMS".into()],
                    SimDuration::from_secs(60),
                ),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_empty() {
        assert_eq!(DeliveryMode::new("x", vec![]), Err(ModeError::NoBlocks));
        assert_eq!(
            DeliveryMode::new("x", vec![Block::fire_and_forget(vec![])]),
            Err(ModeError::EmptyBlock(0))
        );
        assert_eq!(
            DeliveryMode::new(
                "x",
                vec![
                    Block::fire_and_forget(vec!["a".into()]),
                    Block::fire_and_forget(vec![])
                ]
            ),
            Err(ModeError::EmptyBlock(1))
        );
    }

    #[test]
    fn im_then_email_shape() {
        let m = DeliveryMode::im_then_email("Critical", "MSN IM", "Work email", SimDuration::from_secs(90));
        assert_eq!(m.len(), 2);
        assert_eq!(m.blocks()[0].ack, AckPolicy::Required(SimDuration::from_secs(90)));
        assert_eq!(m.blocks()[1].ack, AckPolicy::None);
        assert_eq!(m.blocks()[1].actions, vec!["Work email".to_string()]);
    }

    #[test]
    fn xml_round_trip() {
        let m = urgent();
        let xml = m.to_xml();
        assert_eq!(DeliveryMode::from_xml(&xml).unwrap(), m);
    }

    #[test]
    fn xml_parses_figure4_shape() {
        let m = DeliveryMode::from_xml(
            r#"<DeliveryMode name="Urgent">
                 <Block ackTimeoutSecs="60">
                   <Action address="MSN IM"/>
                   <Action address="Cell SMS"/>
                 </Block>
                 <Block>
                   <Action address="Work email"/>
                 </Block>
               </DeliveryMode>"#,
        )
        .unwrap();
        assert_eq!(m, urgent());
    }

    #[test]
    fn xml_errors() {
        assert!(matches!(DeliveryMode::from_xml("<Wrong/>"), Err(ModeError::Structure(_))));
        assert!(matches!(
            DeliveryMode::from_xml("<DeliveryMode name='x'/>"),
            Err(ModeError::NoBlocks)
        ));
        assert!(matches!(
            DeliveryMode::from_xml("<DeliveryMode name='x'><Block/></DeliveryMode>"),
            Err(ModeError::EmptyBlock(0))
        ));
        assert!(matches!(
            DeliveryMode::from_xml(
                "<DeliveryMode name='x'><Block ackTimeoutSecs='abc'><Action address='a'/></Block></DeliveryMode>"
            ),
            Err(ModeError::BadTimeout(_))
        ));
        assert!(matches!(
            DeliveryMode::from_xml(
                "<DeliveryMode name='x'><Block ackTimeoutSecs='0'><Action address='a'/></Block></DeliveryMode>"
            ),
            Err(ModeError::BadTimeout(_))
        ));
        assert!(matches!(
            DeliveryMode::from_xml(
                "<DeliveryMode name='x'><Block><Action/></Block></DeliveryMode>"
            ),
            Err(ModeError::Structure(_))
        ));
        assert!(matches!(
            DeliveryMode::from_xml("<DeliveryMode><Block><Action address='a'/></Block></DeliveryMode>"),
            Err(ModeError::Structure(_))
        ));
    }
}
