//! The subscription layer: users, their address books and modes, and the
//! category → `(user, mode)` mapping (§4.1).
//!
//! "It provides a subscription API for mapping a category name to a user
//! with a particular delivery mode. Each category can have multiple
//! subscribers, each of which can specify a different delivery mode."
//! Subscriptions also carry the §3.3/§4.2 conveniences: per-subscription
//! enable/disable ("temporarily blocks unwanted alerts") and delivery time
//! windows ("specifying delivery time constraints").

use crate::address::AddressBook;
use crate::mode::DeliveryMode;
use simba_sim::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A user identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub String);

impl UserId {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        UserId(s.into())
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A daily delivery window in wall-clock minutes-of-day, half-open.
/// Windows may wrap midnight (`start > end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// Start, minutes after local midnight (inclusive).
    pub start_min: u32,
    /// End, minutes after local midnight (exclusive).
    pub end_min: u32,
}

impl TimeWindow {
    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        let minute = (at.millis_of_day() / 60_000) as u32;
        if self.start_min <= self.end_min {
            (self.start_min..self.end_min).contains(&minute)
        } else {
            // Wraps midnight.
            minute >= self.start_min || minute < self.end_min
        }
    }
}

/// One subscription: deliver alerts of a category to a user via a mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// The subscriber.
    pub user: UserId,
    /// Name of the delivery mode to use (resolved against the user's modes).
    pub mode_name: String,
    /// Whether the subscription is currently active.
    pub enabled: bool,
    /// Optional daily delivery window; outside it, alerts are suppressed
    /// ("disable these alerts during certain hours to avoid distractions",
    /// §3.3).
    pub window: Option<TimeWindow>,
}

/// Errors from the subscription registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionError {
    /// The user is not registered.
    UnknownUser(UserId),
    /// The user has no mode with that name.
    UnknownMode {
        /// The subscriber.
        user: UserId,
        /// The missing mode name.
        mode_name: String,
    },
    /// The same (category, user) pair is already subscribed.
    Duplicate {
        /// The category.
        category: String,
        /// The subscriber.
        user: UserId,
    },
}

impl std::fmt::Display for SubscriptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscriptionError::UnknownUser(u) => write!(f, "unknown user {u}"),
            SubscriptionError::UnknownMode { user, mode_name } => {
                write!(f, "user {user} has no delivery mode {mode_name:?}")
            }
            SubscriptionError::Duplicate { category, user } => {
                write!(f, "user {user} already subscribes to {category:?}")
            }
        }
    }
}

impl std::error::Error for SubscriptionError {}

/// Per-user profile: address book plus named delivery modes.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    /// The user's addresses.
    pub address_book: AddressBook,
    /// Shared so a routed alert hands its [`DeliveryMode`] to the delivery
    /// process without a deep clone (the alert hot path).
    modes: BTreeMap<String, Arc<DeliveryMode>>,
}

impl UserProfile {
    /// Registers (or replaces) a delivery mode under its name.
    pub fn define_mode(&mut self, mode: DeliveryMode) {
        self.modes.insert(mode.name.clone(), Arc::new(mode));
    }

    /// Looks a mode up by name.
    pub fn mode(&self, name: &str) -> Option<&DeliveryMode> {
        self.modes.get(name).map(|m| &**m)
    }

    /// Like [`UserProfile::mode`], but returning the shared handle — the
    /// cheap way to start a delivery with this mode.
    pub fn mode_shared(&self, name: &str) -> Option<Arc<DeliveryMode>> {
        self.modes.get(name).cloned()
    }

    /// Names of all defined modes.
    pub fn mode_names(&self) -> impl Iterator<Item = &str> {
        self.modes.keys().map(String::as_str)
    }
}

/// The registry behind the subscription layer.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionRegistry {
    users: BTreeMap<UserId, UserProfile>,
    /// category → subscriptions.
    subscriptions: BTreeMap<String, Vec<Subscription>>,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SubscriptionRegistry::default()
    }

    /// Registers a user (idempotent).
    pub fn register_user(&mut self, user: UserId) -> &mut UserProfile {
        self.users.entry(user).or_default()
    }

    /// The user's profile, if registered.
    pub fn user(&self, user: &UserId) -> Option<&UserProfile> {
        self.users.get(user)
    }

    /// Mutable profile access (address enable/disable, mode updates).
    pub fn user_mut(&mut self, user: &UserId) -> Option<&mut UserProfile> {
        self.users.get_mut(user)
    }

    /// Subscribes `user` to `category` with delivery mode `mode_name`.
    ///
    /// # Errors
    ///
    /// Fails if the user or mode is unknown, or the pair already exists.
    pub fn subscribe(
        &mut self,
        category: impl Into<String>,
        user: UserId,
        mode_name: impl Into<String>,
    ) -> Result<(), SubscriptionError> {
        let category = category.into();
        let mode_name = mode_name.into();
        let profile = self
            .users
            .get(&user)
            .ok_or_else(|| SubscriptionError::UnknownUser(user.clone()))?;
        if profile.mode(&mode_name).is_none() {
            return Err(SubscriptionError::UnknownMode { user, mode_name });
        }
        let subs = self.subscriptions.entry(category.clone()).or_default();
        if subs.iter().any(|s| s.user == user) {
            return Err(SubscriptionError::Duplicate { category, user });
        }
        subs.push(Subscription {
            user,
            mode_name,
            enabled: true,
            window: None,
        });
        Ok(())
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn unsubscribe(&mut self, category: &str, user: &UserId) -> bool {
        match self.subscriptions.get_mut(category) {
            Some(subs) => {
                let before = subs.len();
                subs.retain(|s| &s.user != user);
                before != subs.len()
            }
            None => false,
        }
    }

    /// Enables/disables a subscription. Returns whether it existed.
    pub fn set_enabled(&mut self, category: &str, user: &UserId, enabled: bool) -> bool {
        self.with_subscription(category, user, |s| s.enabled = enabled)
    }

    /// Switches the delivery mode of an existing subscription — the §3.3
    /// one-stop change ("temporarily switch the delivery mechanism for all
    /// 'Investment' alerts from SMS to IM").
    ///
    /// # Errors
    ///
    /// Fails if the subscription doesn't exist or the mode is undefined.
    pub fn set_mode(
        &mut self,
        category: &str,
        user: &UserId,
        mode_name: impl Into<String>,
    ) -> Result<(), SubscriptionError> {
        let mode_name = mode_name.into();
        let profile = self
            .users
            .get(user)
            .ok_or_else(|| SubscriptionError::UnknownUser(user.clone()))?;
        if profile.mode(&mode_name).is_none() {
            return Err(SubscriptionError::UnknownMode {
                user: user.clone(),
                mode_name,
            });
        }
        if self.with_subscription(category, user, |s| s.mode_name = mode_name.clone()) {
            Ok(())
        } else {
            Err(SubscriptionError::UnknownUser(user.clone()))
        }
    }

    /// Sets (or clears) a subscription's daily delivery window.
    pub fn set_window(&mut self, category: &str, user: &UserId, window: Option<TimeWindow>) -> bool {
        self.with_subscription(category, user, |s| s.window = window)
    }

    fn with_subscription(
        &mut self,
        category: &str,
        user: &UserId,
        f: impl FnOnce(&mut Subscription),
    ) -> bool {
        if let Some(subs) = self.subscriptions.get_mut(category) {
            if let Some(s) = subs.iter_mut().find(|s| &s.user == user) {
                f(s);
                return true;
            }
        }
        false
    }

    /// The subscriptions that should fire for `category` at `now`:
    /// enabled, inside their window. Categories are matched hierarchically:
    /// a subscription to `"Home.Security"` also receives
    /// `"Home.Security.Urgent"` unless a more specific subscription exists
    /// for the same user.
    pub fn active_subscriptions(&self, category: &str, now: SimTime) -> Vec<&Subscription> {
        let mut out: Vec<&Subscription> = Vec::new();
        // Walk from most-specific to least-specific prefix.
        let mut prefix = category;
        loop {
            if let Some(subs) = self.subscriptions.get(prefix) {
                for s in subs {
                    if !s.enabled {
                        continue;
                    }
                    if let Some(w) = s.window {
                        if !w.contains(now) {
                            continue;
                        }
                    }
                    if out.iter().all(|existing| existing.user != s.user) {
                        out.push(s);
                    }
                }
            }
            match prefix.rfind('.') {
                Some(idx) => prefix = &category[..idx],
                None => break,
            }
        }
        out
    }

    /// All categories with at least one subscription.
    pub fn categories(&self) -> impl Iterator<Item = &str> {
        self.subscriptions.keys().map(String::as_str)
    }

    /// All subscriptions registered under exactly `category` (no
    /// hierarchical matching, no enabled/window filtering) — the raw
    /// configuration, for persistence and inspection.
    pub fn subscriptions_in(&self, category: &str) -> &[Subscription] {
        self.subscriptions.get(category).map_or(&[], Vec::as_slice)
    }

    /// All registered users with their profiles, in id order.
    pub fn users(&self) -> impl Iterator<Item = (&UserId, &UserProfile)> {
        self.users.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{Address, CommType};
    use simba_sim::SimDuration;

    fn registry() -> SubscriptionRegistry {
        let mut r = SubscriptionRegistry::new();
        let alice = UserId::new("alice");
        let profile = r.register_user(alice.clone());
        profile
            .address_book
            .add(Address::new("MSN IM", CommType::Im, "im:alice"))
            .unwrap();
        profile
            .address_book
            .add(Address::new("Work email", CommType::Email, "alice@work"))
            .unwrap();
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "MSN IM",
            "Work email",
            SimDuration::from_secs(60),
        ));
        r
    }

    fn alice() -> UserId {
        UserId::new("alice")
    }

    #[test]
    fn subscribe_requires_user_and_mode() {
        let mut r = registry();
        assert!(matches!(
            r.subscribe("Investment", UserId::new("bob"), "Urgent"),
            Err(SubscriptionError::UnknownUser(_))
        ));
        assert!(matches!(
            r.subscribe("Investment", alice(), "NoSuchMode"),
            Err(SubscriptionError::UnknownMode { .. })
        ));
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        assert!(matches!(
            r.subscribe("Investment", alice(), "Urgent"),
            Err(SubscriptionError::Duplicate { .. })
        ));
    }

    #[test]
    fn multiple_subscribers_per_category() {
        let mut r = registry();
        let bob = UserId::new("bob");
        let p = r.register_user(bob.clone());
        p.address_book.add(Address::new("IM", CommType::Im, "im:bob")).unwrap();
        p.define_mode(DeliveryMode::im_then_email("M", "IM", "IM", SimDuration::from_secs(30)));
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        r.subscribe("Investment", bob.clone(), "M").unwrap();
        let subs = r.active_subscriptions("Investment", SimTime::ZERO);
        assert_eq!(subs.len(), 2);
        // Different users may use different modes.
        assert_ne!(subs[0].mode_name, subs[1].mode_name);
    }

    #[test]
    fn disabled_subscription_does_not_fire() {
        let mut r = registry();
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        assert_eq!(r.active_subscriptions("Investment", SimTime::ZERO).len(), 1);
        assert!(r.set_enabled("Investment", &alice(), false));
        assert!(r.active_subscriptions("Investment", SimTime::ZERO).is_empty());
        assert!(r.set_enabled("Investment", &alice(), true));
        assert_eq!(r.active_subscriptions("Investment", SimTime::ZERO).len(), 1);
    }

    #[test]
    fn unsubscribe_removes() {
        let mut r = registry();
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        assert!(r.unsubscribe("Investment", &alice()));
        assert!(!r.unsubscribe("Investment", &alice()));
        assert!(r.active_subscriptions("Investment", SimTime::ZERO).is_empty());
    }

    #[test]
    fn time_window_gates_delivery() {
        let mut r = registry();
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        // 09:00–17:00 window.
        r.set_window("Investment", &alice(), Some(TimeWindow { start_min: 540, end_min: 1020 }));
        let nine_am = SimTime::from_hours(9);
        let eight_pm = SimTime::from_hours(20);
        assert_eq!(r.active_subscriptions("Investment", nine_am).len(), 1);
        assert!(r.active_subscriptions("Investment", eight_pm).is_empty());
        // Day boundaries honour millis_of_day: day 3 at 10:00 works too.
        let day3_ten = SimTime::from_days(3) + SimDuration::from_hours(10);
        assert_eq!(r.active_subscriptions("Investment", day3_ten).len(), 1);
    }

    #[test]
    fn midnight_wrapping_window() {
        let w = TimeWindow { start_min: 22 * 60, end_min: 6 * 60 };
        assert!(w.contains(SimTime::from_hours(23)));
        assert!(w.contains(SimTime::from_hours(3)));
        assert!(!w.contains(SimTime::from_hours(12)));
    }

    #[test]
    fn hierarchical_categories_match_prefix() {
        let mut r = registry();
        r.subscribe("Home.Security", alice(), "Urgent").unwrap();
        // Subcategory alert reaches the parent subscription.
        let subs = r.active_subscriptions("Home.Security.Urgent", SimTime::ZERO);
        assert_eq!(subs.len(), 1);
        // Unrelated category does not.
        assert!(r.active_subscriptions("Home", SimTime::ZERO).is_empty());
        assert!(r.active_subscriptions("Investment", SimTime::ZERO).is_empty());
    }

    #[test]
    fn specific_subscription_shadows_parent_for_same_user() {
        let mut r = registry();
        let profile = r.user_mut(&alice()).unwrap();
        profile.define_mode(DeliveryMode::im_then_email(
            "Quiet",
            "Work email",
            "Work email",
            SimDuration::from_secs(60),
        ));
        r.subscribe("Home.Security", alice(), "Quiet").unwrap();
        r.subscribe("Home.Security.Urgent", alice(), "Urgent").unwrap();
        let subs = r.active_subscriptions("Home.Security.Urgent", SimTime::ZERO);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].mode_name, "Urgent"); // most specific wins
    }

    #[test]
    fn set_mode_switches_delivery() {
        let mut r = registry();
        let profile = r.user_mut(&alice()).unwrap();
        profile.define_mode(DeliveryMode::im_then_email(
            "Travel",
            "Work email",
            "Work email",
            SimDuration::from_secs(60),
        ));
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        r.set_mode("Investment", &alice(), "Travel").unwrap();
        let subs = r.active_subscriptions("Investment", SimTime::ZERO);
        assert_eq!(subs[0].mode_name, "Travel");
        assert!(r.set_mode("Investment", &alice(), "Nope").is_err());
    }

    #[test]
    fn categories_lists_subscribed() {
        let mut r = registry();
        r.subscribe("Investment", alice(), "Urgent").unwrap();
        r.subscribe("Daily", alice(), "Urgent").unwrap();
        let cats: Vec<&str> = r.categories().collect();
        assert_eq!(cats, vec!["Daily", "Investment"]);
    }
}
