//! MyAlertBuddy: the per-user personal alert router (§3.3, §4.2).
//!
//! Pipeline on every incoming alert: **pessimistic log → acknowledge →
//! classify → aggregate/filter → route** — then mark the log record
//! processed. The ordering is the §4.2.1 crash-safety protocol: the log
//! write precedes the ack, so an acknowledged alert always survives a
//! crash (it is replayed from the log on restart), and a crash before the
//! ack makes the *sender's* delivery mode fall back instead.
//!
//! [`MyAlertBuddy`] is a state machine like [`DeliveryProcess`]: events in
//! ([`MabEvent`]), commands out ([`MabCommand`]). Crash points can be
//! injected at every pipeline stage, which is how the WAL-safety property
//! tests exercise "MyAlertBuddy may crash or get terminated due to some
//! anomaly" at arbitrary moments.

use crate::address::AddressBook;
use crate::alert::{Alert, AlertId, IncomingAlert};
use crate::classify::Classifier;
use crate::delivery::{AttemptId, DeliveryCommand, DeliveryEvent, DeliveryProcess, DeliveryStatus};
use crate::rejuvenate::{RejuvenationPolicy, RejuvenationTrigger};
use crate::snapshot::BuddySnapshot;
use crate::subscription::{SubscriptionRegistry, UserId};
use crate::wal::{WalRecord, WriteAheadLog};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{Event, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default capacity of the completed-delivery ring.
pub const DEFAULT_COMPLETED_CAP: usize = 256;

/// Identifies one in-flight delivery inside MyAlertBuddy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeliveryId(pub u64);

/// Configuration that survives MyAlertBuddy restarts (in the real system
/// this lives on disk; in the simulation the harness clones it into each
/// incarnation).
#[derive(Debug, Clone, Default)]
pub struct MabConfig {
    /// The alert classifier (accepted sources, keyword → category maps).
    pub classifier: Classifier,
    /// Users, address books, modes, and subscriptions.
    pub registry: SubscriptionRegistry,
    /// Rejuvenation policy.
    pub rejuvenation: RejuvenationPolicy,
}

/// An occurrence fed into MyAlertBuddy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MabEvent {
    /// An alert arrived over the IM channel (will be acknowledged).
    AlertByIm(IncomingAlert),
    /// An alert arrived over the email channel (no acknowledgement).
    AlertByEmail(IncomingAlert),
    /// A channel/timer event for an in-flight delivery.
    Delivery {
        /// Which delivery.
        id: DeliveryId,
        /// What happened.
        event: DeliveryEvent,
    },
}

/// An instruction from MyAlertBuddy to the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MabCommand {
    /// Send the application-level IM acknowledgement back to `to`.
    AckIm {
        /// Source handle to acknowledge.
        to: String,
        /// The log id backing the ack (for tracing).
        wal_id: u64,
    },
    /// Execute a delivery-layer command for `delivery` on behalf of `user`.
    Channel {
        /// Which delivery the command belongs to.
        delivery: DeliveryId,
        /// The subscriber being delivered to.
        user: UserId,
        /// The channel command.
        command: DeliveryCommand,
    },
    /// Gracefully terminate for rejuvenation; the MDC will restart us.
    Rejuvenate(
        /// Why.
        RejuvenationTrigger,
    ),
}

/// Where to crash, for fault-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash before the pessimistic log write (sender gets no ack).
    BeforeLog,
    /// Crash after the log write but before the ack (sender gets no ack;
    /// the alert will be replayed — a possible duplicate).
    AfterLogBeforeAck,
    /// Crash after the ack but before routing (the §4.2.1 scenario the log
    /// exists for: without it the alert would be silently lost).
    AfterAckBeforeRoute,
    /// Crash after routing but before the processed mark (replay causes a
    /// duplicate delivery; timestamp dedup discards it at the user).
    AfterRouteBeforeMark,
}

impl CrashPoint {
    /// Short stable name used in `mab.crashed` telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeLog => "before_log",
            CrashPoint::AfterLogBeforeAck => "after_log_before_ack",
            CrashPoint::AfterAckBeforeRoute => "after_ack_before_route",
            CrashPoint::AfterRouteBeforeMark => "after_route_before_mark",
        }
    }
}

/// Running totals for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MabStats {
    /// Alerts received over IM.
    pub received_im: u64,
    /// Alerts received over email.
    pub received_email: u64,
    /// IM acknowledgements sent.
    pub acked: u64,
    /// Alerts rejected by the classifier.
    pub rejected: u64,
    /// Alerts routed to at least one subscriber.
    pub routed: u64,
    /// Alerts whose category had no active subscription.
    pub unsubscribed: u64,
    /// Delivery processes started.
    pub deliveries_started: u64,
    /// Alerts replayed from the log on restart.
    pub replayed: u64,
    /// Remote rejuvenation commands honoured.
    pub remote_commands: u64,
    /// Terminal deliveries retired out of the active table.
    pub retired: u64,
    /// Deliveries whose mode was adjusted by live presence/health facts.
    pub mode_overridden: u64,
}

impl MabStats {
    /// Sums `other` into `self` (host-level aggregation across users).
    pub fn merge(&mut self, other: MabStats) {
        self.received_im += other.received_im;
        self.received_email += other.received_email;
        self.acked += other.acked;
        self.rejected += other.rejected;
        self.routed += other.routed;
        self.unsubscribed += other.unsubscribed;
        self.deliveries_started += other.deliveries_started;
        self.replayed += other.replayed;
        self.remote_commands += other.remote_commands;
        self.retired += other.retired;
        self.mode_overridden += other.mode_overridden;
    }
}

/// The summary of a delivery evicted from the active table after reaching
/// a terminal state; kept in a bounded completed-ring for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetiredDelivery {
    /// The delivery's id (never reused).
    pub id: DeliveryId,
    /// The subscriber it delivered to.
    pub user: UserId,
    /// The terminal status at retirement.
    pub status: DeliveryStatus,
    /// Every attempt the process issued (the runtime uses this to drop
    /// its `attempt_owner` entries).
    pub attempts: Vec<AttemptId>,
    /// Messages actually sent (the irritability cost).
    pub messages_sent: usize,
    /// When the delivery started.
    pub started_at: SimTime,
    /// When it was retired.
    pub retired_at: SimTime,
}

/// The MyAlertBuddy daemon state machine.
#[derive(Debug)]
pub struct MyAlertBuddy<W> {
    config: MabConfig,
    wal: W,
    deliveries: BTreeMap<DeliveryId, (UserId, DeliveryProcess)>,
    completed: VecDeque<RetiredDelivery>,
    completed_cap: usize,
    retirement_grace: SimDuration,
    next_delivery: u64,
    next_alert: u64,
    stats: MabStats,
    crash_point: Option<CrashPoint>,
    crashed: bool,
    hung: bool,
    last_progress_at: SimTime,
    telemetry: Telemetry,
    mode_selector: Option<Box<dyn crate::routing::ModeSelector>>,
}

impl<W: WriteAheadLog> MyAlertBuddy<W> {
    /// Launches MyAlertBuddy over an existing (possibly non-empty) log.
    /// Call [`MyAlertBuddy::recover`] next — the paper's restart protocol
    /// replays unprocessed alerts "before accepting new alerts".
    pub fn new(config: MabConfig, wal: W, now: SimTime) -> Self {
        MyAlertBuddy {
            config,
            wal,
            deliveries: BTreeMap::new(),
            completed: VecDeque::new(),
            completed_cap: DEFAULT_COMPLETED_CAP,
            retirement_grace: SimDuration::ZERO,
            next_delivery: 0,
            next_alert: 0,
            stats: MabStats::default(),
            crash_point: None,
            crashed: false,
            hung: false,
            last_progress_at: now,
            telemetry: Telemetry::disabled(),
            mode_selector: None,
        }
    }

    /// Routes events and metrics to `telemetry` (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Routes events and metrics to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Consults `selector` for live presence/health facts when starting a
    /// delivery (builder style). Without one, the static profile always
    /// wins — exactly the behaviour when every fact has expired.
    #[must_use]
    pub fn with_mode_selector(mut self, selector: Box<dyn crate::routing::ModeSelector>) -> Self {
        self.mode_selector = Some(selector);
        self
    }

    /// Consults `selector` for live presence/health facts when starting a
    /// delivery.
    pub fn set_mode_selector(&mut self, selector: Box<dyn crate::routing::ModeSelector>) {
        self.mode_selector = Some(selector);
    }

    /// The configuration in force.
    pub fn config(&self) -> &MabConfig {
        &self.config
    }

    /// Mutable configuration access (runtime re-customization: §3.3's
    /// "she only needs to update MyAlertBuddy").
    pub fn config_mut(&mut self) -> &mut MabConfig {
        &mut self.config
    }

    /// Running totals.
    pub fn stats(&self) -> MabStats {
        self.stats
    }

    /// Access to the log (for health snapshots).
    pub fn wal(&self) -> &W {
        &self.wal
    }

    /// Tears the buddy down, releasing the log for the next incarnation.
    pub fn into_wal(self) -> W {
        self.wal
    }

    /// Arms a one-shot crash at the given pipeline stage.
    pub fn inject_crash_at(&mut self, point: CrashPoint) {
        self.crash_point = Some(point);
    }

    /// Wedges the main loop (AreYouWorking() will stop responding).
    pub fn inject_hang(&mut self) {
        self.hung = true;
    }

    /// Whether the process is crashed (terminated).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The watchdog's non-blocking health probe.
    pub fn are_you_working(&self) -> bool {
        !self.crashed && !self.hung
    }

    /// When the pipeline last made progress.
    pub fn last_progress_at(&self) -> SimTime {
        self.last_progress_at
    }

    /// In-flight delivery count.
    pub fn in_flight(&self) -> usize {
        self.deliveries
            .values()
            .filter(|(_, p)| !p.status().is_terminal())
            .count()
    }

    /// Status of a specific delivery.
    pub fn delivery_status(&self, id: DeliveryId) -> Option<DeliveryStatus> {
        self.deliveries.get(&id).map(|(_, p)| p.status())
    }

    /// All deliveries and their owners (for reporting).
    pub fn deliveries(&self) -> impl Iterator<Item = (DeliveryId, &UserId, &DeliveryProcess)> {
        self.deliveries.iter().map(|(id, (u, p))| (*id, u, p))
    }

    /// Deliveries held in the active table (in-progress plus terminal ones
    /// not yet retired). The soak harness asserts this returns to zero.
    pub fn tracked(&self) -> usize {
        self.deliveries.len()
    }

    /// The completed-ring contents, oldest first.
    pub fn retired(&self) -> impl Iterator<Item = &RetiredDelivery> {
        self.completed.iter()
    }

    /// Number of retired summaries currently held (≤ the configured cap).
    pub fn retired_len(&self) -> usize {
        self.completed.len()
    }

    /// Every id below this has been assigned to a delivery. Monotone; the
    /// runtime snapshots it around an event to learn which deliveries that
    /// event started.
    pub fn delivery_watermark(&self) -> u64 {
        self.next_delivery
    }

    /// Configures delivery retirement: `grace` is how long a terminal
    /// delivery lingers in the active table (giving straggling acks a
    /// chance to upgrade the outcome), `completed_cap` bounds the ring of
    /// retired summaries.
    pub fn set_retirement(&mut self, grace: SimDuration, completed_cap: usize) {
        self.retirement_grace = grace;
        self.completed_cap = completed_cap;
        while self.completed.len() > completed_cap {
            self.completed.pop_front();
        }
    }

    /// Evicts deliveries that reached a terminal state at least
    /// `retirement_grace` ago: they leave the active table for the bounded
    /// completed-ring, and their summaries are returned so the harness can
    /// drop per-attempt bookkeeping and cancel pending timer tasks.
    pub fn retire_terminal(&mut self, now: SimTime) -> Vec<RetiredDelivery> {
        let due: Vec<DeliveryId> = self
            .deliveries
            .iter()
            .filter_map(|(id, (_, p))| {
                let at = p.status().terminal_at()?;
                (now.since(at) >= self.retirement_grace).then_some(*id)
            })
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for id in due {
            let Some((user, process)) = self.deliveries.remove(&id) else {
                continue;
            };
            let summary = RetiredDelivery {
                id,
                user,
                status: process.status(),
                attempts: process.attempts().iter().map(|r| r.attempt).collect(),
                messages_sent: process.messages_sent(),
                started_at: process.started_at(),
                retired_at: now,
            };
            self.stats.retired += 1;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("mab.retired").incr();
                self.telemetry.emit(
                    Event::new("mab.retired", now.as_millis())
                        .with("delivery", id.0)
                        .with("user", summary.user.0.clone())
                        .with("status", status_name(summary.status))
                        .with("attempts", summary.attempts.len()),
                );
            }
            if self.completed_cap > 0 {
                if self.completed.len() == self.completed_cap {
                    self.completed.pop_front();
                }
                self.completed.push_back(summary.clone());
            }
            out.push(summary);
        }
        out
    }

    /// Whether the buddy can hibernate: alive, no tracked deliveries, no
    /// unprocessed log records. Everything else it holds is counters.
    pub fn is_idle(&self) -> bool {
        !self.crashed && self.deliveries.is_empty() && !self.wal.has_unprocessed()
    }

    /// Captures the compact hibernation snapshot, or `None` when the
    /// buddy is not [idle](MyAlertBuddy::is_idle). `user` tags the
    /// snapshot with its owner (checked again at rehydration). The caller
    /// drops the buddy afterwards — [`MyAlertBuddy::into_wal`] first if
    /// the log must outlive it.
    pub fn hibernate(&self, user: &UserId, _now: SimTime) -> Option<BuddySnapshot> {
        if !self.is_idle() {
            return None;
        }
        Some(BuddySnapshot {
            user: user.clone(),
            stats: self.stats,
            next_delivery: self.next_delivery,
            next_alert: self.next_alert,
            last_progress_at: self.last_progress_at,
        })
    }

    /// Rebuilds a buddy from a hibernation snapshot: counters and id
    /// watermarks resume where hibernation left them, so stats survive
    /// any number of hibernate/rehydrate cycles and delivery/alert ids
    /// are never reused. Configuration is rebuilt by the caller (it is
    /// derivable state, deliberately not serialized).
    pub fn rehydrate(config: MabConfig, wal: W, snapshot: &BuddySnapshot, now: SimTime) -> Self {
        let mut buddy = MyAlertBuddy::new(config, wal, now);
        buddy.stats = snapshot.stats;
        buddy.next_delivery = snapshot.next_delivery;
        buddy.next_alert = snapshot.next_alert;
        buddy.last_progress_at = snapshot.last_progress_at.max(SimTime::ZERO);
        buddy
    }

    /// Replays unprocessed log records (the restart protocol). Returns the
    /// commands to execute; acks are *not* re-sent.
    pub fn recover(&mut self, now: SimTime) -> Vec<MabCommand> {
        let mut cmds = Vec::new();
        let backlog: Vec<WalRecord> = self.wal.unprocessed();
        if self.telemetry.enabled() && !backlog.is_empty() {
            self.telemetry.metrics().counter("wal.replays").add(backlog.len() as u64);
            self.telemetry.emit(
                Event::new("wal.replayed", now.as_millis()).with("records", backlog.len()),
            );
        }
        for record in backlog {
            self.stats.replayed += 1;
            self.route_logged(record, now, &mut cmds);
        }
        cmds
    }

    /// Feeds one event through the pipeline.
    ///
    /// A crashed or hung buddy processes nothing (events are effectively
    /// dropped, exactly like a dead process — senders see missing acks and
    /// fall back).
    pub fn handle(&mut self, event: MabEvent, now: SimTime) -> Vec<MabCommand> {
        if self.crashed || self.hung {
            return Vec::new();
        }
        self.last_progress_at = now;
        let mut cmds = Vec::new();
        match event {
            MabEvent::AlertByIm(alert) => {
                self.stats.received_im += 1;
                self.note_received("im", &alert, now);
                self.ingest(alert, true, now, &mut cmds);
            }
            MabEvent::AlertByEmail(alert) => {
                self.stats.received_email += 1;
                self.note_received("email", &alert, now);
                self.ingest(alert, false, now, &mut cmds);
            }
            MabEvent::Delivery { id, event } => {
                if let Some((user, process)) = self.deliveries.get_mut(&id) {
                    // Borrow the profile's book directly (`registry` and
                    // `deliveries` are disjoint fields); cloning it per
                    // delivery event dominated the hot path.
                    let empty = AddressBook::default();
                    let book = self
                        .config
                        .registry
                        .user(user)
                        .map(|p| &p.address_book)
                        .unwrap_or(&empty);
                    for command in process.handle(event, book, now) {
                        cmds.push(MabCommand::Channel {
                            delivery: id,
                            user: user.clone(),
                            command,
                        });
                    }
                }
            }
        }
        cmds
    }

    fn note_received(&self, channel: &str, alert: &IncomingAlert, now: SimTime) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("mab.received").incr();
            self.telemetry.emit(
                Event::new("mab.received", now.as_millis())
                    .with("channel", channel)
                    .with("source", alert.source.as_str()),
            );
        }
    }

    fn crash_if(&mut self, point: CrashPoint, now: SimTime) -> bool {
        if self.crash_point == Some(point) {
            self.crash_point = None;
            self.crashed = true;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("mab.crashes").incr();
                self.telemetry
                    .emit(Event::new("mab.crashed", now.as_millis()).with("point", point.name()));
            }
            true
        } else {
            false
        }
    }

    /// The §4.2.1 receive pipeline.
    fn ingest(&mut self, alert: IncomingAlert, ack: bool, now: SimTime, cmds: &mut Vec<MabCommand>) {
        if self.crash_if(CrashPoint::BeforeLog, now) {
            return;
        }
        // (1) Pessimistic log, before anything observable.
        let Ok(wal_id) = self.wal.append(&alert, now) else {
            // Persistence failed: do not ack; the sender will fall back.
            self.crashed = true;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("mab.crashes").incr();
                self.telemetry.emit(
                    Event::new("mab.crashed", now.as_millis()).with("point", "wal_append_failed"),
                );
            }
            return;
        };
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("wal.appends").incr();
            self.telemetry.emit(
                Event::new("wal.append", now.as_millis())
                    .with("wal_id", wal_id)
                    .with("source", alert.source.as_str()),
            );
        }
        if self.crash_if(CrashPoint::AfterLogBeforeAck, now) {
            return;
        }
        // (2) Acknowledge (IM channel only).
        if ack {
            self.stats.acked += 1;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("mab.acked").incr();
                self.telemetry.emit(
                    Event::new("mab.ack", now.as_millis())
                        .with("to", alert.source.as_str())
                        .with("wal_id", wal_id),
                );
            }
            cmds.push(MabCommand::AckIm {
                to: alert.source.clone(),
                wal_id,
            });
        }
        if self.crash_if(CrashPoint::AfterAckBeforeRoute, now) {
            return;
        }
        // (3..) Classify and route.
        let record = WalRecord {
            id: wal_id,
            received_at: now,
            alert,
            processed: false,
            user: None,
        };
        self.route_logged(record, now, cmds);
    }

    /// Classification + routing + processed-mark for a logged alert.
    fn route_logged(&mut self, record: WalRecord, now: SimTime, cmds: &mut Vec<MabCommand>) {
        let alert = &record.alert;

        // Remote administration check precedes classification: the command
        // keyword is not an alert.
        if let Some(trigger) = self.config.rejuvenation.remote_trigger(&alert.body) {
            self.stats.remote_commands += 1;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("mab.remote_commands").incr();
                self.telemetry.emit(
                    Event::new("rejuvenate.triggered", now.as_millis())
                        .with("trigger", "remote")
                        .with("source", alert.source.as_str()),
                );
            }
            if !self.mark_processed_or_crash(record.id, now) {
                return;
            }
            cmds.push(MabCommand::Rejuvenate(trigger));
            return;
        }

        match self.config.classifier.classify(alert) {
            Ok(category) => {
                let subs: Vec<(UserId, String)> = self
                    .config
                    .registry
                    .active_subscriptions(&category, now)
                    .into_iter()
                    .map(|s| (s.user.clone(), s.mode_name.clone()))
                    .collect();
                if subs.is_empty() {
                    self.stats.unsubscribed += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("mab.unsubscribed").incr();
                        self.telemetry.emit(
                            Event::new("mab.unsubscribed", now.as_millis())
                                .with("category", category.as_str()),
                        );
                    }
                } else {
                    self.stats.routed += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("mab.routed").incr();
                        self.telemetry
                            .metrics()
                            .histogram("mab.route_lag_ms")
                            .observe_ms(now.since(record.received_at).as_millis());
                        self.telemetry.emit(
                            Event::new("mab.routed", now.as_millis())
                                .with("category", category.as_str())
                                .with("fanout", subs.len()),
                        );
                    }
                }
                for (user, mode_name) in subs {
                    let Some(profile) = self.config.registry.user(&user) else {
                        continue;
                    };
                    let Some(mode) = profile.mode_shared(&mode_name) else {
                        continue;
                    };
                    // Presence-aware mode selection: live soft-state facts
                    // may skip or demote blocks; absent/expired facts leave
                    // the static profile untouched.
                    let mode = match &self.mode_selector {
                        Some(selector) => {
                            let ctx = selector.context(&user, now);
                            match crate::routing::apply_routing(&mode, &profile.address_book, &ctx)
                            {
                                Some(adjusted) => {
                                    self.stats.mode_overridden += 1;
                                    if self.telemetry.enabled() {
                                        self.telemetry
                                            .metrics()
                                            .counter("mab.mode_overridden")
                                            .incr();
                                        self.telemetry.emit(
                                            Event::new("mab.mode_overridden", now.as_millis())
                                                .with("user", user.0.as_str())
                                                .with("mode", mode_name.as_str())
                                                .with(
                                                    "presence",
                                                    ctx.presence
                                                        .map_or("none", |p| p.as_value()),
                                                )
                                                .with("unhealthy", ctx.unhealthy.len()),
                                        );
                                    }
                                    Arc::new(adjusted)
                                }
                                None => mode,
                            }
                        }
                        None => mode,
                    };
                    let alert_out = Alert {
                        id: AlertId(self.next_alert),
                        source: alert.source.clone(),
                        category: category.clone(),
                        text: display_text(alert),
                        origin_timestamp: alert.origin_timestamp,
                        received_at: now,
                        urgency: alert.urgency,
                    };
                    self.next_alert += 1;
                    let (process, commands) = DeliveryProcess::start_observed(
                        alert_out,
                        mode,
                        &profile.address_book,
                        now,
                        self.telemetry.clone(),
                    );
                    let id = DeliveryId(self.next_delivery);
                    self.next_delivery += 1;
                    self.stats.deliveries_started += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("mab.deliveries_started").incr();
                    }
                    for command in commands {
                        cmds.push(MabCommand::Channel {
                            delivery: id,
                            user: user.clone(),
                            command,
                        });
                    }
                    self.deliveries.insert(id, (user, process));
                }
            }
            Err(_) => {
                self.stats.rejected += 1;
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("mab.rejected").incr();
                    self.telemetry.emit(
                        Event::new("mab.rejected", now.as_millis())
                            .with("source", alert.source.as_str()),
                    );
                }
            }
        }

        if self.crash_if(CrashPoint::AfterRouteBeforeMark, now) {
            return;
        }
        // (4) Mark processed.
        self.mark_processed_or_crash(record.id, now);
    }

    /// Marks a log record processed, treating failure like a failed
    /// append: the buddy crashes rather than letting disk and memory
    /// diverge silently. The record stays unprocessed, so the next
    /// incarnation replays it — a duplicate the user-side dedup discards.
    fn mark_processed_or_crash(&mut self, id: u64, now: SimTime) -> bool {
        if self.wal.mark_processed(id).is_ok() {
            return true;
        }
        self.crashed = true;
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("mab.crashes").incr();
            self.telemetry.emit(
                Event::new("mab.crashed", now.as_millis()).with("point", "wal_mark_failed"),
            );
        }
        false
    }
}

/// Short stable status name for telemetry events.
fn status_name(status: DeliveryStatus) -> &'static str {
    match status {
        DeliveryStatus::InProgress => "in_progress",
        DeliveryStatus::Acked { .. } => "acked",
        DeliveryStatus::Unconfirmed { .. } => "unconfirmed",
        DeliveryStatus::Exhausted { .. } => "exhausted",
    }
}

/// The text shown to the user: subject line if the channel had one,
/// otherwise the body.
fn display_text(alert: &IncomingAlert) -> String {
    if alert.subject.is_empty() {
        alert.body.clone()
    } else {
        format!("{}: {}", alert.subject, alert.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{Address, AddressBook, CommType};
    use crate::classify::KeywordField;
    use crate::mode::DeliveryMode;
    use crate::wal::InMemoryWal;
    use simba_sim::SimDuration;

    fn config() -> MabConfig {
        let mut classifier = Classifier::new();
        classifier.accept_source("aladdin-gw", KeywordField::Body, "config");
        classifier.map_keyword("Sensor", "Home.Security");
        classifier.accept_source("alerts@yahoo", KeywordField::SenderName, "web");
        classifier.map_keyword("Stocks", "Investment");

        let mut registry = SubscriptionRegistry::new();
        let alice = UserId::new("alice");
        let profile = registry.register_user(alice.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
        book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "IM",
            "EM",
            SimDuration::from_secs(60),
        ));
        registry.subscribe("Home.Security", alice.clone(), "Urgent").unwrap();
        registry.subscribe("Investment", alice, "Urgent").unwrap();

        MabConfig {
            classifier,
            registry,
            rejuvenation: RejuvenationPolicy::default(),
        }
    }

    fn mab() -> MyAlertBuddy<InMemoryWal> {
        MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO)
    }

    fn sensor_alert(secs: u64) -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(secs))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn im_alert_logged_acked_and_routed() {
        let mut m = mab();
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        // Command order is the pipeline order: ack first, then the send.
        assert!(matches!(&cmds[0], MabCommand::AckIm { to, .. } if to == "aladdin-gw"));
        assert!(cmds.iter().any(|c| matches!(
            c,
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type: CommType::Im, .. }, .. }
        )));
        assert_eq!(m.stats().acked, 1);
        assert_eq!(m.stats().routed, 1);
        assert_eq!(m.stats().deliveries_started, 1);
        assert_eq!(m.in_flight(), 1);
        // The log record is already marked processed.
        assert!(m.wal().unprocessed().is_empty());
        assert_eq!(m.wal().len(), 1);
    }

    #[derive(Debug)]
    struct FixedSelector(crate::routing::RoutingContext);

    impl crate::routing::ModeSelector for FixedSelector {
        fn context(&self, _user: &UserId, _now: SimTime) -> crate::routing::RoutingContext {
            self.0.clone()
        }
    }

    #[test]
    fn away_presence_overrides_mode_to_skip_im() {
        let mut m = mab().with_mode_selector(Box::new(FixedSelector(
            crate::routing::RoutingContext {
                presence: Some(crate::routing::PresenceHint::Away),
                ..Default::default()
            },
        )));
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        // The static profile's first block (IM) is skipped: the first (and
        // only) send goes straight to email.
        assert!(!cmds.iter().any(|c| matches!(
            c,
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type: CommType::Im, .. }, .. }
        )));
        assert!(cmds.iter().any(|c| matches!(
            c,
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type: CommType::Email, .. }, .. }
        )));
        assert_eq!(m.stats().mode_overridden, 1);
        assert_eq!(m.stats().deliveries_started, 1);
    }

    #[test]
    fn empty_context_keeps_static_profile() {
        let mut m = mab().with_mode_selector(Box::new(FixedSelector(
            crate::routing::RoutingContext::default(),
        )));
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        // No live facts: the static IM-first profile is used untouched.
        assert!(cmds.iter().any(|c| matches!(
            c,
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type: CommType::Im, .. }, .. }
        )));
        assert_eq!(m.stats().mode_overridden, 0);
    }

    #[test]
    fn email_alert_not_acked_but_routed() {
        let mut m = mab();
        let alert = IncomingAlert::from_email("alerts@yahoo", "Yahoo! Stocks", "MSFT", "b", t(0));
        let cmds = m.handle(MabEvent::AlertByEmail(alert), t(1));
        assert!(!cmds.iter().any(|c| matches!(c, MabCommand::AckIm { .. })));
        assert_eq!(m.stats().acked, 0);
        assert_eq!(m.stats().routed, 1);
    }

    #[test]
    fn rejected_source_counted_and_marked_processed() {
        let mut m = mab();
        let cmds = m.handle(
            MabEvent::AlertByIm(IncomingAlert::from_im("spammer", "junk", t(0))),
            t(1),
        );
        // Ack still goes out (receipt ≠ acceptance), but nothing routes.
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], MabCommand::AckIm { .. }));
        assert_eq!(m.stats().rejected, 1);
        assert!(m.wal().unprocessed().is_empty());
    }

    #[test]
    fn crash_after_ack_before_route_replays_on_recovery() {
        // The scenario pessimistic logging exists for.
        let mut m = mab();
        m.inject_crash_at(CrashPoint::AfterAckBeforeRoute);
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(5)), t(5));
        // The ack went out...
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], MabCommand::AckIm { .. }));
        assert!(m.is_crashed());
        // ...but nothing was routed. The log still holds the alert.
        let wal = m.into_wal();
        assert_eq!(wal.unprocessed().len(), 1);

        // MDC restarts a fresh incarnation over the same log.
        let mut m2 = MyAlertBuddy::new(config(), wal, t(10));
        let cmds = m2.recover(t(10));
        assert!(cmds.iter().any(|c| matches!(c, MabCommand::Channel { .. })));
        assert_eq!(m2.stats().replayed, 1);
        assert!(m2.wal().unprocessed().is_empty());
    }

    #[test]
    fn crash_before_log_loses_nothing_durable_and_sends_no_ack() {
        let mut m = mab();
        m.inject_crash_at(CrashPoint::BeforeLog);
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(5)), t(5));
        assert!(cmds.is_empty()); // no ack: sender falls back
        let wal = m.into_wal();
        assert_eq!(wal.len(), 0);
    }

    #[test]
    fn crash_after_route_before_mark_causes_replayable_duplicate() {
        let mut m = mab();
        m.inject_crash_at(CrashPoint::AfterRouteBeforeMark);
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(5)), t(5));
        // Routed once...
        assert!(cmds.iter().any(|c| matches!(c, MabCommand::Channel { .. })));
        let wal = m.into_wal();
        // ...but unmarked, so recovery routes it again (duplicate; the
        // user-side timestamp dedup discards it).
        assert_eq!(wal.unprocessed().len(), 1);
        let mut m2 = MyAlertBuddy::new(config(), wal, t(10));
        let replay = m2.recover(t(10));
        assert!(replay.iter().any(|c| matches!(c, MabCommand::Channel { .. })));
    }

    #[test]
    fn crashed_buddy_processes_nothing() {
        let mut m = mab();
        m.inject_crash_at(CrashPoint::BeforeLog);
        m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        assert!(m.is_crashed());
        assert!(!m.are_you_working());
        assert!(m.handle(MabEvent::AlertByIm(sensor_alert(2)), t(2)).is_empty());
        assert_eq!(m.wal().len(), 0);
    }

    #[test]
    fn hung_buddy_fails_health_probe_but_keeps_state() {
        let mut m = mab();
        m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        m.inject_hang();
        assert!(!m.are_you_working());
        assert!(!m.is_crashed());
        assert!(m.handle(MabEvent::AlertByIm(sensor_alert(2)), t(2)).is_empty());
        assert_eq!(m.wal().len(), 1); // only the pre-hang alert
    }

    #[test]
    fn delivery_events_drive_fallback_through_mab() {
        let mut m = mab();
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        let (id, attempt) = cmds
            .iter()
            .find_map(|c| match c {
                MabCommand::Channel {
                    delivery,
                    command: DeliveryCommand::Send { attempt, .. },
                    ..
                } => Some((*delivery, *attempt)),
                _ => None,
            })
            .unwrap();
        // IM send fails synchronously → email fallback command emerges.
        let cmds2 = m.handle(
            MabEvent::Delivery {
                id,
                event: DeliveryEvent::SendFailed {
                    attempt,
                    failure: crate::delivery::SendFailure::RecipientUnreachable,
                },
            },
            t(2),
        );
        assert!(cmds2.iter().any(|c| matches!(
            c,
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type: CommType::Email, .. }, .. }
        )));
    }

    #[test]
    fn remote_rejuvenation_command_recognized() {
        let mut m = mab();
        let cmds = m.handle(
            MabEvent::AlertByIm(IncomingAlert::from_im("aladdin-gw", "SIMBA-REJUVENATE", t(0))),
            t(1),
        );
        assert!(cmds
            .iter()
            .any(|c| matches!(c, MabCommand::Rejuvenate(RejuvenationTrigger::RemoteCommand))));
        assert_eq!(m.stats().remote_commands, 1);
        assert_eq!(m.stats().routed, 0);
        assert!(m.wal().unprocessed().is_empty());
    }

    #[test]
    fn unsubscribed_category_counted() {
        let mut m = mab();
        m.config_mut()
            .registry
            .set_enabled("Home.Security", &UserId::new("alice"), false);
        m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));
        assert_eq!(m.stats().unsubscribed, 1);
        assert_eq!(m.stats().deliveries_started, 0);
    }

    /// A log whose processed-marks can be made to fail, for exercising the
    /// disk/memory-divergence crash path.
    struct MarkFailWal {
        inner: InMemoryWal,
        fail_marks: bool,
    }

    impl WriteAheadLog for MarkFailWal {
        fn append(&mut self, alert: &IncomingAlert, received_at: SimTime) -> Result<u64, crate::wal::WalError> {
            self.inner.append(alert, received_at)
        }

        fn mark_processed(&mut self, id: u64) -> Result<(), crate::wal::WalError> {
            if self.fail_marks {
                Err(crate::wal::WalError::Io(std::io::Error::other("disk full")))
            } else {
                self.inner.mark_processed(id)
            }
        }

        fn unprocessed(&self) -> Vec<WalRecord> {
            self.inner.unprocessed()
        }

        fn len(&self) -> usize {
            self.inner.len()
        }
    }

    #[test]
    fn failed_processed_mark_crashes_like_failed_append() {
        // Regression: a mark_processed error used to be swallowed by
        // `let _ =`, leaving the record unprocessed with no signal. It must
        // crash the buddy (the MDC restarts it; replay dedups the alert).
        use simba_telemetry::{RingBufferSink, Telemetry};
        let sink = std::sync::Arc::new(RingBufferSink::new(64));
        let wal = MarkFailWal { inner: InMemoryWal::new(), fail_marks: true };
        let mut m = MyAlertBuddy::new(config(), wal, SimTime::ZERO)
            .with_telemetry(Telemetry::with_sink(sink.clone()));
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(1)), t(1));

        // The pipeline ran (ack + route went out) before the mark failed...
        assert!(cmds.iter().any(|c| matches!(c, MabCommand::AckIm { .. })));
        assert!(cmds.iter().any(|c| matches!(c, MabCommand::Channel { .. })));
        // ...then the buddy crashed instead of continuing with divergent state.
        assert!(m.is_crashed());
        assert!(!m.are_you_working());
        assert!(sink
            .events()
            .iter()
            .any(|e| e.name == "mab.crashed"
                && e.fields.iter().any(|(k, v)| k == "point" && v.to_string().contains("wal_mark_failed"))));

        // The record survives unprocessed: the next incarnation replays it.
        let wal = m.into_wal();
        assert_eq!(wal.unprocessed().len(), 1);
        let mut m2 = MyAlertBuddy::new(config(), MarkFailWal { inner: wal.inner, fail_marks: false }, t(10));
        let replay = m2.recover(t(10));
        assert!(replay.iter().any(|c| matches!(c, MabCommand::Channel { .. })));
        assert!(m2.wal().unprocessed().is_empty());
    }

    #[test]
    fn failed_mark_on_remote_rejuvenate_crashes_without_rejuvenating() {
        let wal = MarkFailWal { inner: InMemoryWal::new(), fail_marks: true };
        let mut m = MyAlertBuddy::new(config(), wal, SimTime::ZERO);
        let cmds = m.handle(
            MabEvent::AlertByIm(IncomingAlert::from_im("aladdin-gw", "SIMBA-REJUVENATE", t(0))),
            t(1),
        );
        // Crashing beats gracefully rejuvenating: the MDC restart covers both.
        assert!(!cmds.iter().any(|c| matches!(c, MabCommand::Rejuvenate(_))));
        assert!(m.is_crashed());
    }

    /// Drives one alert to a terminal state and returns (mab, delivery id).
    fn delivered_mab(secs: u64) -> (MyAlertBuddy<InMemoryWal>, DeliveryId) {
        let mut m = mab();
        let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(secs)), t(secs));
        let (id, attempt) = cmds
            .iter()
            .find_map(|c| match c {
                MabCommand::Channel {
                    delivery,
                    command: DeliveryCommand::Send { attempt, .. },
                    ..
                } => Some((*delivery, *attempt)),
                _ => None,
            })
            .unwrap();
        m.handle(
            MabEvent::Delivery { id, event: DeliveryEvent::SendAccepted { attempt } },
            t(secs + 1),
        );
        m.handle(
            MabEvent::Delivery { id, event: DeliveryEvent::Acked { attempt } },
            t(secs + 2),
        );
        (m, id)
    }

    #[test]
    fn retire_terminal_evicts_only_terminal_deliveries() {
        let (mut m, id) = delivered_mab(1);
        // A second, still-pending delivery.
        m.handle(MabEvent::AlertByIm(sensor_alert(5)), t(5));
        assert_eq!(m.tracked(), 2);
        assert_eq!(m.in_flight(), 1);

        let retired = m.retire_terminal(t(10));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].id, id);
        assert_eq!(retired[0].user, UserId::new("alice"));
        assert!(matches!(retired[0].status, DeliveryStatus::Acked { .. }));
        assert_eq!(retired[0].attempts.len(), 1);
        assert_eq!(retired[0].started_at, t(1));
        assert_eq!(retired[0].retired_at, t(10));

        // The acked delivery left the table; the pending one stayed.
        assert_eq!(m.tracked(), 1);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.delivery_status(id), None);
        assert_eq!(m.retired_len(), 1);
        assert_eq!(m.stats().retired, 1);
        // Ids are never reused: the watermark is untouched by retirement.
        assert_eq!(m.delivery_watermark(), 2);
    }

    #[test]
    fn retirement_grace_keeps_terminal_deliveries_for_late_acks() {
        let (mut m, id) = delivered_mab(1);
        m.set_retirement(SimDuration::from_secs(60), DEFAULT_COMPLETED_CAP);
        // Terminal at t(3); within the grace window nothing is retired.
        assert!(m.retire_terminal(t(30)).is_empty());
        assert_eq!(m.delivery_status(id).map(|s| s.is_terminal()), Some(true));
        // Past the window it goes.
        assert_eq!(m.retire_terminal(t(63)).len(), 1);
        assert_eq!(m.delivery_status(id), None);
    }

    #[test]
    fn completed_ring_is_bounded() {
        let mut m = mab();
        m.set_retirement(SimDuration::ZERO, 2);
        for i in 0..4u64 {
            let cmds = m.handle(MabEvent::AlertByIm(sensor_alert(10 * i + 1)), t(10 * i + 1));
            let (id, attempt) = cmds
                .iter()
                .find_map(|c| match c {
                    MabCommand::Channel {
                        delivery,
                        command: DeliveryCommand::Send { attempt, .. },
                        ..
                    } => Some((*delivery, *attempt)),
                    _ => None,
                })
                .unwrap();
            m.handle(
                MabEvent::Delivery { id, event: DeliveryEvent::Acked { attempt } },
                t(10 * i + 2),
            );
            m.retire_terminal(t(10 * i + 3));
        }
        // All four retired, but the ring only keeps the newest two.
        assert_eq!(m.stats().retired, 4);
        assert_eq!(m.retired_len(), 2);
        let kept: Vec<u64> = m.retired().map(|r| r.id.0).collect();
        assert_eq!(kept, vec![2, 3]);
        assert_eq!(m.tracked(), 0);
    }

    #[test]
    fn subject_prefixes_display_text() {
        let mut m = mab();
        let alert = IncomingAlert::from_email("alerts@yahoo", "Yahoo! Stocks", "MSFT at 80", "details", t(0));
        let cmds = m.handle(MabEvent::AlertByEmail(alert), t(1));
        let text = cmds
            .iter()
            .find_map(|c| match c {
                MabCommand::Channel {
                    command: DeliveryCommand::Send { text, .. },
                    ..
                } => Some(text.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(text, "MSFT at 80: details");
    }
}
