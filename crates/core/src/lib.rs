//! `simba-core` — the SIMBA library and MyAlertBuddy.
//!
//! This crate implements the paper's primary contribution (§3–§4):
//!
//! * the **subscription layer** — user [`address`] books, personal alert
//!   categories, personalized [`mode`]s (delivery modes), and the
//!   [`subscription`] registry mapping categories to `(user, mode)` pairs,
//!   all expressible as XML documents per §4.1;
//! * the **delivery layer** — the [`delivery`] state machine that executes
//!   a delivery mode block by block: fire every enabled action in a block,
//!   await acknowledgement within the block's timeout, and fall back to the
//!   next block on failure (§3.2);
//! * **MyAlertBuddy** ([`mab`]) — the per-user personal alert router:
//!   [`classify`] (accepted sources + keyword extraction), aggregation and
//!   filtering (keyword → personal category and sub-categorization), and
//!   routing to every subscriber of the category (§4.2);
//! * the **fault-tolerance stack** that keeps MyAlertBuddy highly available
//!   (§4.2.1): [`wal`] (pessimistic logging), [`mdc`] (the Master Daemon
//!   Controller watchdog), [`stabilize`] (self-stabilization invariant
//!   checks), [`rejuvenate`] (software rejuvenation policy), and [`dedup`]
//!   (timestamp-based duplicate suppression at the user).
//!
//! Everything here is an event-driven state machine over
//! [`simba_sim::SimTime`]: the same code runs under the deterministic
//! simulation harness (experiments) and under the tokio live runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod alert;
pub mod classify;
pub mod dedup;
pub mod delivery;
pub mod mab;
pub mod mdc;
pub mod mode;
pub mod profile_xml;
pub mod rejuvenate;
pub mod routing;
pub mod shardlog;
pub mod snapshot;
pub mod stabilize;
pub mod subscription;
pub mod wal;

pub use address::{Address, AddressBook, CommType};
pub use alert::{Alert, AlertId, DigestAlert, IncomingAlert, Urgency};
pub use classify::{Classifier, KeywordField};
pub use dedup::DuplicateDetector;
pub use delivery::{
    AttemptId, DeliveryCommand, DeliveryEvent, DeliveryProcess, DeliveryStatus, SendFailure,
};
pub use mab::{MabCommand, MabConfig, MabEvent, MyAlertBuddy};
pub use mdc::{MasterDaemonController, MdcAction, MdcConfig};
pub use mode::{AckPolicy, Block, DeliveryMode};
pub use profile_xml::{registry_from_xml, registry_to_xml, RegistryXmlError};
pub use rejuvenate::{RejuvenationPolicy, RejuvenationTrigger};
pub use routing::{apply_routing, ModeSelector, PresenceHint, RoutingContext};
pub use shardlog::{ShardLog, ShardLogConfig, ShardLogHandle, ShardLogStats, UserShardWal};
pub use snapshot::{BuddySnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use subscription::{Subscription, SubscriptionRegistry, UserId};
pub use wal::{FileWal, InMemoryWal, WalError, WalRecord, WriteAheadLog};

// Components take a `Telemetry` via `with_telemetry(..)`; re-exported so
// embedders don't need a direct `simba-telemetry` dependency.
pub use simba_telemetry::Telemetry;
