//! Hibernation snapshots: the compact, durable form of an *idle*
//! MyAlertBuddy.
//!
//! A million registered users cannot each keep a live buddy resident —
//! the sharded host (`simba-runtime`) hibernates buddies that have no
//! in-flight deliveries and no unprocessed log records, keeping only a
//! [`BuddySnapshot`] (a few dozen bytes) until the next routed alert or
//! replay demand rehydrates them. The snapshot carries exactly the state
//! that must survive the round trip: running totals and the monotonic
//! id watermarks (delivery/alert ids are never reused, even across
//! hibernate/rehydrate cycles).
//!
//! The encoding is versioned and CRC-guarded. Decoding a corrupt or
//! foreign-version snapshot fails loudly ([`SnapshotError`]) so the host
//! can fall back to the §4.2.1 recovery path: start a fresh buddy and
//! replay the shard log. Nothing a snapshot holds is required for
//! *correctness* — alerts live in the write-ahead log — so losing one
//! costs counters, never deliveries.

use crate::mab::MabStats;
use crate::subscription::UserId;
use simba_sim::SimTime;

/// Current encoding version. Bump on any layout change; decoders reject
/// versions they do not know instead of guessing.
pub const SNAPSHOT_VERSION: u16 = 1;

/// The 4-byte magic prefix of every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SBSN";

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte string ended before the declared content did.
    Truncated,
    /// The magic prefix is wrong — this is not a snapshot at all.
    BadMagic,
    /// The version is not one this build can decode.
    BadVersion(
        /// The version found.
        u16,
    ),
    /// The checksum did not match: the payload was damaged at rest.
    BadCrc {
        /// CRC stored in the snapshot.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// A field inside the payload was malformed.
    Malformed(
        /// Which field.
        &'static str,
    ),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::BadVersion(v) => write!(f, "snapshot version {v} unsupported"),
            SnapshotError::BadCrc { stored, computed } => {
                write!(f, "snapshot crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            SnapshotError::Malformed(field) => write!(f, "snapshot field malformed: {field}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The serializable state of an idle buddy.
///
/// Captured by [`crate::MyAlertBuddy::hibernate`] and restored by
/// [`crate::MyAlertBuddy::rehydrate`]. "Idle" means no tracked
/// deliveries and no unprocessed log records, so delivery state never
/// needs to be encoded — only counters and watermarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuddySnapshot {
    /// The owning user (integrity check at rehydration: a snapshot routed
    /// to the wrong slot is rejected like a corrupt one).
    pub user: UserId,
    /// Running totals at hibernation; rehydration resumes them so
    /// fleet-level accounting survives any number of hibernation cycles.
    pub stats: MabStats,
    /// The delivery-id watermark (ids below this are burned).
    pub next_delivery: u64,
    /// The outbound alert-id watermark.
    pub next_alert: u64,
    /// When the buddy last made pipeline progress.
    pub last_progress_at: SimTime,
}

impl BuddySnapshot {
    /// Serializes to the versioned, CRC-trailed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let user = self.user.0.as_bytes();
        let mut out = Vec::with_capacity(4 + 2 + 4 + user.len() + 14 * 8 + 4);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(user.len() as u32).to_le_bytes());
        out.extend_from_slice(user);
        for v in self.counter_words() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and verifies an encoded snapshot.
    ///
    /// # Errors
    ///
    /// Any structural or checksum problem is reported as a
    /// [`SnapshotError`]; the caller should treat every variant the same
    /// way — discard the snapshot and recover from the log.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 + 2 + 4 + 4 {
            return Err(SnapshotError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let computed = crc32(body);
        if stored != computed {
            return Err(SnapshotError::BadCrc { stored, computed });
        }
        let mut r = Reader { bytes: body, pos: 0 };
        if r.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().map_err(|_| SnapshotError::Truncated)?);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let user_len = u32::from_le_bytes(r.take(4)?.try_into().map_err(|_| SnapshotError::Truncated)?) as usize;
        let user = std::str::from_utf8(r.take(user_len)?)
            .map_err(|_| SnapshotError::Malformed("user"))?
            .to_string();
        let mut words = [0u64; 14];
        for w in &mut words {
            *w = u64::from_le_bytes(r.take(8)?.try_into().map_err(|_| SnapshotError::Truncated)?);
        }
        if r.pos != body.len() {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(BuddySnapshot {
            user: UserId(user),
            stats: MabStats {
                received_im: words[0],
                received_email: words[1],
                acked: words[2],
                rejected: words[3],
                routed: words[4],
                unsubscribed: words[5],
                deliveries_started: words[6],
                replayed: words[7],
                remote_commands: words[8],
                retired: words[9],
                mode_overridden: words[10],
            },
            next_delivery: words[11],
            next_alert: words[12],
            last_progress_at: SimTime::from_millis(words[13]),
        })
    }

    /// The fixed-width payload words, in encoding order.
    fn counter_words(&self) -> [u64; 14] {
        let s = &self.stats;
        [
            s.received_im,
            s.received_email,
            s.acked,
            s.rejected,
            s.routed,
            s.unsubscribed,
            s.deliveries_started,
            s.replayed,
            s.remote_commands,
            s.retired,
            s.mode_overridden,
            self.next_delivery,
            self.next_alert,
            self.last_progress_at.as_millis(),
        ]
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> BuddySnapshot {
        BuddySnapshot {
            user: UserId::new("alice"),
            stats: MabStats {
                received_im: 10,
                received_email: 2,
                acked: 10,
                rejected: 1,
                routed: 9,
                unsubscribed: 2,
                deliveries_started: 9,
                replayed: 3,
                remote_commands: 0,
                retired: 9,
                mode_overridden: 4,
            },
            next_delivery: 9,
            next_alert: 9,
            last_progress_at: SimTime::from_secs(1234),
        }
    }

    #[test]
    fn round_trips() {
        let snap = snapshot();
        let bytes = snap.encode();
        assert_eq!(BuddySnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = snapshot().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            BuddySnapshot::decode(&bytes),
            Err(SnapshotError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = snapshot().encode();
        for cut in [0, 3, 9, bytes.len() - 5] {
            let err = BuddySnapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadCrc { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let snap = snapshot();
        let mut bytes = snap.encode();
        // Rewrite the version field and re-seal the CRC so only the
        // version check can object.
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert_eq!(
            BuddySnapshot::decode(&bytes),
            Err(SnapshotError::BadVersion(0xFFFF))
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = snapshot().encode();
        bytes[0] = b'X';
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert_eq!(BuddySnapshot::decode(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn empty_input_is_truncated_not_panic() {
        assert_eq!(BuddySnapshot::decode(&[]), Err(SnapshotError::Truncated));
    }
}
