//! Pessimistic logging (§4.2.1).
//!
//! "Upon receiving an IM, MyAlertBuddy instructs the SIMBA library to save
//! a copy to a log file **before** sending the acknowledgement. After
//! processing the IM, MyAlertBuddy marks the saved copy as 'Processed'.
//! Every time MyAlertBuddy is restarted, it first checks the log file for
//! unprocessed IMs before accepting new alerts."
//!
//! The invariant this buys (property-tested in `tests/wal_safety.rs`): an
//! alert that was acknowledged to its sender is never lost, at any crash
//! point. Crash before append ⇒ no ack ⇒ the sender's delivery mode falls
//! back. Crash after append ⇒ replayed on restart (possibly causing a
//! duplicate, which timestamp dedup discards at the user).

use crate::alert::{IncomingAlert, Urgency};
use crate::subscription::UserId;
use simba_sim::SimTime;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// One logged alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log-assigned id (monotonic).
    pub id: u64,
    /// When MyAlertBuddy received the alert.
    pub received_at: SimTime,
    /// The raw alert payload.
    pub alert: IncomingAlert,
    /// Whether routing completed.
    pub processed: bool,
    /// Which buddy the record belongs to. Per-user logs leave this `None`
    /// (the file itself scopes the owner); shard logs multiplex many
    /// buddies into one file and tag every record with its owner.
    pub user: Option<UserId>,
}

/// Errors from a write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failed (file backend).
    Io(std::io::Error),
    /// A persisted line could not be parsed during recovery.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// `mark_processed` named an id that was never appended.
    UnknownId(
        /// The offending id.
        u64,
    ),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt { line, reason } => write!(f, "wal corrupt at line {line}: {reason}"),
            WalError::UnknownId(id) => write!(f, "wal id {id} unknown"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The pessimistic-logging interface used by MyAlertBuddy.
pub trait WriteAheadLog {
    /// Persists an alert *before* it is acknowledged. Returns the log id.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] if persistence failed — in that case the
    /// caller must NOT acknowledge the alert.
    fn append(&mut self, alert: &IncomingAlert, received_at: SimTime) -> Result<u64, WalError>;

    /// Marks a logged alert as processed (routing completed).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::UnknownId`] for ids never appended.
    fn mark_processed(&mut self, id: u64) -> Result<(), WalError>;

    /// All records still unprocessed, in append order — the restart replay
    /// set.
    fn unprocessed(&self) -> Vec<WalRecord>;

    /// Whether any record is still unprocessed. The hibernation sweep
    /// calls this on every idle candidate, so implementations should
    /// answer without building the full replay set.
    fn has_unprocessed(&self) -> bool {
        !self.unprocessed().is_empty()
    }

    /// Total records in the log.
    fn len(&self) -> usize;

    /// Whether the log holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory log for simulation harnesses: the harness owns the log so
/// it survives a simulated MyAlertBuddy crash.
#[derive(Debug, Clone, Default)]
pub struct InMemoryWal {
    records: BTreeMap<u64, WalRecord>,
    next_id: u64,
}

impl InMemoryWal {
    /// An empty log.
    pub fn new() -> Self {
        InMemoryWal::default()
    }
}

impl WriteAheadLog for InMemoryWal {
    fn append(&mut self, alert: &IncomingAlert, received_at: SimTime) -> Result<u64, WalError> {
        let id = self.next_id;
        self.next_id += 1;
        self.records.insert(
            id,
            WalRecord {
                id,
                received_at,
                alert: alert.clone(),
                processed: false,
                user: None,
            },
        );
        Ok(id)
    }

    fn mark_processed(&mut self, id: u64) -> Result<(), WalError> {
        match self.records.get_mut(&id) {
            Some(r) => {
                r.processed = true;
                Ok(())
            }
            None => Err(WalError::UnknownId(id)),
        }
    }

    fn unprocessed(&self) -> Vec<WalRecord> {
        self.records.values().filter(|r| !r.processed).cloned().collect()
    }

    fn has_unprocessed(&self) -> bool {
        self.records.values().any(|r| !r.processed)
    }

    fn len(&self) -> usize {
        self.records.len()
    }
}

/// A file-backed log: one line per event, flushed on every append
/// (pessimistic). Reopening the file replays it, reconstructing the
/// unprocessed set — that *is* the §4.2.1 restart protocol.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
    records: BTreeMap<u64, WalRecord>,
    next_id: u64,
}

impl FileWal {
    /// Opens (creating if missing) the log at `path` and replays it.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a corrupt line.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut records = BTreeMap::new();
        let mut next_id = 0u64;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for (lineno, line) in reader.lines().enumerate() {
                let line = line?;
                if line.is_empty() {
                    continue;
                }
                parse_line(&line, lineno + 1, &mut records)?;
            }
            next_id = records.keys().next_back().map_or(0, |id| id + 1);
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileWal {
            path,
            file,
            records,
            next_id,
        })
    }

    /// Opens the log, tolerating a torn tail: a crash in the middle of an
    /// append leaves a partial last line, which this constructor discards
    /// (truncating the file to the last complete record) instead of
    /// failing. Corruption anywhere *before* the tail is still an error —
    /// that is not a crash artifact but real damage.
    ///
    /// The discarded record was, by the §4.2.1 protocol, never
    /// acknowledged (the ack follows the durable append), so dropping it
    /// is exactly the "crash before log" case: the sender falls back.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or non-tail corruption.
    pub fn open_tolerant(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            let content = std::fs::read_to_string(&path)?;
            let mut valid_len = 0usize;
            let mut scratch = BTreeMap::new();
            let mut lines = content.split_inclusive('\n').enumerate().peekable();
            while let Some((lineno, line)) = lines.next() {
                let is_last = lines.peek().is_none();
                let complete = line.ends_with('\n');
                let trimmed = line.trim_end_matches('\n');
                if trimmed.is_empty() {
                    valid_len += line.len();
                    continue;
                }
                match parse_line(trimmed, lineno + 1, &mut scratch) {
                    Ok(()) if complete => valid_len += line.len(),
                    Ok(()) => break, // complete-looking but unterminated tail: drop it
                    Err(e) if is_last => {
                        // Torn tail: discard.
                        let _ = e;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if valid_len < content.len() {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_len as u64)?;
                file.sync_data()?;
            }
        }
        FileWal::open(path)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Simulates a crash-restart: drops all in-memory state and replays
    /// the file from scratch.
    ///
    /// # Errors
    ///
    /// Same as [`FileWal::open`].
    pub fn reopen(self) -> Result<Self, WalError> {
        let path = self.path.clone();
        drop(self);
        FileWal::open(path)
    }
}

fn parse_line(
    line: &str,
    lineno: usize,
    records: &mut BTreeMap<u64, WalRecord>,
) -> Result<(), WalError> {
    let corrupt = |reason: &str| WalError::Corrupt {
        line: lineno,
        reason: reason.to_string(),
    };
    let mut fields = line.split('\t');
    let tag = fields.next().ok_or_else(|| corrupt("empty line"))?;
    match tag {
        "R" => {
            let id: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad id"))?;
            let received_ms: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad received timestamp"))?;
            let origin_ms: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad origin timestamp"))?;
            let urgency = match fields.next() {
                Some("low") => Urgency::Low,
                Some("normal") => Urgency::Normal,
                Some("critical") => Urgency::Critical,
                _ => return Err(corrupt("bad urgency")),
            };
            let mut unescape_next = || -> Result<String, WalError> {
                fields.next().map(unescape).ok_or_else(|| corrupt("missing field"))
            };
            let source = unescape_next()?;
            let sender_name = unescape_next()?;
            let subject = unescape_next()?;
            let body = unescape_next()?;
            records.insert(
                id,
                WalRecord {
                    id,
                    received_at: SimTime::from_millis(received_ms),
                    alert: IncomingAlert {
                        source,
                        sender_name,
                        subject,
                        body,
                        origin_timestamp: SimTime::from_millis(origin_ms),
                        urgency,
                    },
                    processed: false,
                    user: None,
                },
            );
            Ok(())
        }
        "P" => {
            let id: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| corrupt("bad id"))?;
            // A 'P' for an unknown id means the 'R' line was lost — that
            // cannot happen with append-order writes, so treat as corrupt.
            let rec = records
                .get_mut(&id)
                .ok_or_else(|| corrupt("processed mark for unknown record"))?;
            rec.processed = true;
            Ok(())
        }
        other => Err(corrupt(&format!("unknown tag {other:?}"))),
    }
}

/// Escapes tabs, newlines, and backslashes so `s` survives a
/// tab-separated, newline-terminated journal line. Shared by every
/// journal in the workspace (shard WALs, the delivery ledger).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

impl WriteAheadLog for FileWal {
    fn append(&mut self, alert: &IncomingAlert, received_at: SimTime) -> Result<u64, WalError> {
        let id = self.next_id;
        let line = format!(
            "R\t{id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            received_at.as_millis(),
            alert.origin_timestamp.as_millis(),
            alert.urgency,
            escape(&alert.source),
            escape(&alert.sender_name),
            escape(&alert.subject),
            escape(&alert.body),
        );
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.next_id += 1;
        self.records.insert(
            id,
            WalRecord {
                id,
                received_at,
                alert: alert.clone(),
                processed: false,
                user: None,
            },
        );
        Ok(id)
    }

    fn mark_processed(&mut self, id: u64) -> Result<(), WalError> {
        let Some(record) = self.records.get_mut(&id) else {
            return Err(WalError::UnknownId(id));
        };
        self.file.write_all(format!("P\t{id}\n").as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        record.processed = true;
        Ok(())
    }

    fn unprocessed(&self) -> Vec<WalRecord> {
        self.records.values().filter(|r| !r.processed).cloned().collect()
    }

    fn has_unprocessed(&self) -> bool {
        self.records.values().any(|r| !r.processed)
    }

    fn len(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(body: &str, origin_secs: u64) -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", body, SimTime::from_secs(origin_secs))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn in_memory_append_mark_replay() {
        let mut wal = InMemoryWal::new();
        let a = wal.append(&alert("one", 1), t(1)).unwrap();
        let b = wal.append(&alert("two", 2), t(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.unprocessed().len(), 2);
        wal.mark_processed(a).unwrap();
        let un = wal.unprocessed();
        assert_eq!(un.len(), 1);
        assert_eq!(un[0].alert.body, "two");
        assert!(matches!(wal.mark_processed(99), Err(WalError::UnknownId(99))));
    }

    #[test]
    fn file_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("survives_reopen.wal");
        let _ = std::fs::remove_file(&path);

        let mut wal = FileWal::open(&path).unwrap();
        let a = wal.append(&alert("critical: basement", 10), t(11)).unwrap();
        let _b = wal.append(&alert("second", 20), t(21)).unwrap();
        wal.mark_processed(a).unwrap();

        // Crash + restart.
        let wal = wal.reopen().unwrap();
        assert_eq!(wal.len(), 2);
        let un = wal.unprocessed();
        assert_eq!(un.len(), 1);
        assert_eq!(un[0].alert.body, "second");
        assert_eq!(un[0].alert.origin_timestamp, t(20));
        assert_eq!(un[0].received_at, t(21));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_wal_new_ids_continue_after_reopen() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ids_continue.wal");
        let _ = std::fs::remove_file(&path);

        let mut wal = FileWal::open(&path).unwrap();
        let a = wal.append(&alert("x", 1), t(1)).unwrap();
        let mut wal = wal.reopen().unwrap();
        let b = wal.append(&alert("y", 2), t(2)).unwrap();
        assert!(b > a);
        assert_eq!(wal.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_wal_escaping_round_trips_awkward_text() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("escaping.wal");
        let _ = std::fs::remove_file(&path);

        let mut nasty = IncomingAlert::from_email(
            "src\twith\ttabs",
            "name\nwith\nnewlines",
            "subject \\ backslash",
            "body\r\nmixed\tall",
            t(5),
        );
        nasty.urgency = Urgency::Critical;
        let mut wal = FileWal::open(&path).unwrap();
        wal.append(&nasty, t(6)).unwrap();
        let wal = wal.reopen().unwrap();
        assert_eq!(wal.unprocessed()[0].alert, nasty);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.wal");
        std::fs::write(&path, "R\tnot-a-number\n").unwrap();
        assert!(matches!(FileWal::open(&path), Err(WalError::Corrupt { line: 1, .. })));
        std::fs::write(&path, "P\t42\n").unwrap();
        assert!(matches!(FileWal::open(&path), Err(WalError::Corrupt { .. })));
        std::fs::write(&path, "Z\n").unwrap();
        assert!(matches!(FileWal::open(&path), Err(WalError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerant_open_discards_torn_tail() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_tail.wal");
        let _ = std::fs::remove_file(&path);

        let mut wal = FileWal::open(&path).unwrap();
        wal.append(&alert("complete record", 1), t(1)).unwrap();
        drop(wal);
        // Simulate a crash mid-append: a partial line at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"R\t1\t2000\t20").unwrap(); // truncated record, no newline
        }
        // Strict open rejects it; tolerant open recovers the prefix.
        assert!(matches!(FileWal::open(&path), Err(WalError::Corrupt { .. })));
        let wal = FileWal::open_tolerant(&path).unwrap();
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.unprocessed()[0].alert.body, "complete record");
        // The file was truncated, so a subsequent strict open also works.
        let mut wal = wal.reopen().unwrap();
        assert_eq!(wal.len(), 1);
        // And appending continues cleanly.
        wal.append(&alert("after recovery", 2), t(2)).unwrap();
        assert_eq!(wal.reopen().unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerant_open_still_rejects_mid_file_corruption() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid_corrupt.wal");
        std::fs::write(&path, "GARBAGE LINE\nP\t0\n").unwrap();
        assert!(matches!(
            FileWal::open_tolerant(&path),
            Err(WalError::Corrupt { line: 1, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerant_open_of_clean_or_missing_file_is_plain_open() {
        let dir = std::env::temp_dir().join(format!("simba-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = FileWal::open_tolerant(&path).unwrap();
        assert!(wal.is_empty());
        wal.append(&alert("x", 1), t(1)).unwrap();
        drop(wal);
        let wal = FileWal::open_tolerant(&path).unwrap();
        assert_eq!(wal.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escape_unescape_inverse() {
        for s in ["plain", "a\tb", "a\nb", "a\\b", "\\t literal", "", "trailing\\"] {
            assert_eq!(unescape(&escape(s)), s, "for {s:?}");
        }
    }
}
