//! XML persistence for the whole subscription layer (§4.1).
//!
//! The paper expresses addresses and delivery modes as XML "to allow
//! extensibility"; a real deployment also has to persist the rest of the
//! registry — users, their modes, and the category subscriptions — so a
//! restarted MyAlertBuddy comes back with its configuration. This module
//! defines that document:
//!
//! ```xml
//! <SimbaRegistry>
//!   <User id="alice">
//!     <Addresses>…</Addresses>
//!     <DeliveryMode name="Urgent">…</DeliveryMode>
//!     <Subscription category="Investment" mode="Urgent" enabled="true"
//!                   windowStartMin="540" windowEndMin="1020"/>
//!   </User>
//! </SimbaRegistry>
//! ```

use crate::address::{AddressBook, AddressBookError};
use crate::mode::{DeliveryMode, ModeError};
use crate::subscription::{SubscriptionRegistry, TimeWindow, UserId};
use simba_xml::{Element, XmlError};

/// Errors loading a registry document.
#[derive(Debug)]
pub enum RegistryXmlError {
    /// The XML failed to parse.
    Xml(XmlError),
    /// Structural problem.
    Structure(String),
    /// An embedded address book was invalid.
    Addresses(AddressBookError),
    /// An embedded delivery mode was invalid.
    Mode(ModeError),
    /// A subscription referenced a missing user or mode.
    Subscription(crate::subscription::SubscriptionError),
}

impl std::fmt::Display for RegistryXmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryXmlError::Xml(e) => write!(f, "xml: {e}"),
            RegistryXmlError::Structure(s) => write!(f, "bad registry structure: {s}"),
            RegistryXmlError::Addresses(e) => write!(f, "addresses: {e}"),
            RegistryXmlError::Mode(e) => write!(f, "delivery mode: {e}"),
            RegistryXmlError::Subscription(e) => write!(f, "subscription: {e}"),
        }
    }
}

impl std::error::Error for RegistryXmlError {}

impl From<XmlError> for RegistryXmlError {
    fn from(e: XmlError) -> Self {
        RegistryXmlError::Xml(e)
    }
}
impl From<AddressBookError> for RegistryXmlError {
    fn from(e: AddressBookError) -> Self {
        RegistryXmlError::Addresses(e)
    }
}
impl From<ModeError> for RegistryXmlError {
    fn from(e: ModeError) -> Self {
        RegistryXmlError::Mode(e)
    }
}
impl From<crate::subscription::SubscriptionError> for RegistryXmlError {
    fn from(e: crate::subscription::SubscriptionError) -> Self {
        RegistryXmlError::Subscription(e)
    }
}

/// Serializes the whole registry (users, address books, modes,
/// subscriptions) to one XML document.
pub fn registry_to_xml(registry: &SubscriptionRegistry) -> String {
    let mut root = Element::new("SimbaRegistry");
    // Collect subscriptions grouped by user for a compact document.
    let mut subs_by_user: std::collections::BTreeMap<&UserId, Vec<(&str, &crate::subscription::Subscription)>> =
        std::collections::BTreeMap::new();
    for category in registry.categories().collect::<Vec<_>>() {
        for sub in registry.subscriptions_in(category) {
            subs_by_user.entry(&sub.user).or_default().push((category, sub));
        }
    }

    for (user, profile) in registry.users() {
        let mut user_el = Element::new("User").with_attr("id", user.0.clone());

        // Inline the address book (reparse of its own document shape).
        // simba-analyze: allow(hygiene.unwrap): reparsing our own serializer's output; a failure is a codec bug the roundtrip tests catch
        let book_doc = simba_xml::parse(&profile.address_book.to_xml()).expect("own XML parses");
        user_el = user_el.with_child(book_doc);

        for name in profile.mode_names().collect::<Vec<_>>() {
            let Some(mode) = profile.mode(name) else { continue };
            // simba-analyze: allow(hygiene.unwrap): reparsing our own serializer's output; a failure is a codec bug the roundtrip tests catch
            let mode_doc = simba_xml::parse(&mode.to_xml()).expect("own XML parses");
            user_el = user_el.with_child(mode_doc);
        }

        if let Some(subs) = subs_by_user.get(user) {
            for (category, sub) in subs {
                let mut el = Element::new("Subscription")
                    .with_attr("category", category.to_string())
                    .with_attr("mode", sub.mode_name.clone())
                    .with_attr("enabled", if sub.enabled { "true" } else { "false" });
                if let Some(w) = sub.window {
                    el = el
                        .with_attr("windowStartMin", w.start_min.to_string())
                        .with_attr("windowEndMin", w.end_min.to_string());
                }
                user_el = user_el.with_child(el);
            }
        }
        root = root.with_child(user_el);
    }
    root.to_xml_pretty()
}

/// Loads a registry from the document produced by [`registry_to_xml`].
///
/// # Errors
///
/// Fails on malformed XML, structural problems, invalid embedded
/// documents, or subscriptions referencing unknown users/modes.
pub fn registry_from_xml(xml: &str) -> Result<SubscriptionRegistry, RegistryXmlError> {
    let root = simba_xml::parse(xml)?;
    if root.name != "SimbaRegistry" {
        return Err(RegistryXmlError::Structure(format!(
            "expected <SimbaRegistry> root, found <{}>",
            root.name
        )));
    }
    let mut registry = SubscriptionRegistry::new();
    // First pass: users, books, modes.
    for user_el in root.children_named("User") {
        let id = user_el
            .attr("id")
            .ok_or_else(|| RegistryXmlError::Structure("<User> missing id".into()))?;
        let user = UserId::new(id);
        let profile = registry.register_user(user.clone());
        if let Some(book_el) = user_el.child("Addresses") {
            profile.address_book = AddressBook::from_xml(&book_el.to_xml())?;
        }
        for mode_el in user_el.children_named("DeliveryMode") {
            let mode = DeliveryMode::from_xml(&mode_el.to_xml())?;
            profile.define_mode(mode);
        }
    }
    // Second pass: subscriptions (need users/modes in place).
    for user_el in root.children_named("User") {
        let id = user_el
            .attr("id")
            .ok_or_else(|| RegistryXmlError::Structure("<User> missing id".into()))?;
        let user = UserId::new(id);
        for sub_el in user_el.children_named("Subscription") {
            let category = sub_el
                .attr("category")
                .ok_or_else(|| RegistryXmlError::Structure("<Subscription> missing category".into()))?;
            let mode = sub_el
                .attr("mode")
                .ok_or_else(|| RegistryXmlError::Structure("<Subscription> missing mode".into()))?;
            registry.subscribe(category, user.clone(), mode)?;
            if sub_el.attr("enabled") == Some("false") {
                registry.set_enabled(category, &user, false);
            }
            if let (Some(start), Some(end)) = (sub_el.attr("windowStartMin"), sub_el.attr("windowEndMin")) {
                let start: u32 = start
                    .parse()
                    .map_err(|_| RegistryXmlError::Structure("bad windowStartMin".into()))?;
                let end: u32 = end
                    .parse()
                    .map_err(|_| RegistryXmlError::Structure("bad windowEndMin".into()))?;
                registry.set_window(category, &user, Some(TimeWindow { start_min: start, end_min: end }));
            }
        }
    }
    Ok(registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{Address, CommType};
    use simba_sim::{SimDuration, SimTime};

    fn registry() -> SubscriptionRegistry {
        let mut r = SubscriptionRegistry::new();
        for (user, im) in [("alice", "im:alice"), ("bob", "im:bob")] {
            let uid = UserId::new(user);
            let p = r.register_user(uid.clone());
            p.address_book.add(Address::new("IM", CommType::Im, im)).expect("fresh book");
            p.address_book
                .add(Address::new("EM", CommType::Email, format!("{user}@work")))
                .expect("fresh book");
            p.define_mode(DeliveryMode::im_then_email("Urgent", "IM", "EM", SimDuration::from_secs(60)));
            p.define_mode(DeliveryMode::im_then_email("Relaxed", "EM", "EM", SimDuration::from_secs(600)));
        }
        r.subscribe("Investment", UserId::new("alice"), "Urgent").expect("valid");
        r.subscribe("Investment", UserId::new("bob"), "Relaxed").expect("valid");
        r.subscribe("Daily", UserId::new("alice"), "Relaxed").expect("valid");
        r.set_enabled("Daily", &UserId::new("alice"), false);
        r.set_window(
            "Investment",
            &UserId::new("alice"),
            Some(TimeWindow { start_min: 540, end_min: 1020 }),
        );
        r
    }

    #[test]
    fn registry_round_trips() {
        let original = registry();
        let xml = registry_to_xml(&original);
        let loaded = registry_from_xml(&xml).expect("own output parses");

        // Structural equality: users, addresses, modes.
        for user in [UserId::new("alice"), UserId::new("bob")] {
            let a = original.user(&user).expect("user in original");
            let b = loaded.user(&user).expect("user restored");
            assert_eq!(a.address_book, b.address_book, "{user}");
            let modes_a: Vec<&str> = a.mode_names().collect();
            let modes_b: Vec<&str> = b.mode_names().collect();
            assert_eq!(modes_a, modes_b);
            for m in modes_a {
                assert_eq!(a.mode(m), b.mode(m));
            }
        }

        // Behavioural equality of the subscriptions: same active sets at
        // representative instants.
        for at in [SimTime::from_hours(10), SimTime::from_hours(20)] {
            for cat in ["Investment", "Daily", "Investment.Sub"] {
                let a: Vec<_> = original
                    .active_subscriptions(cat, at)
                    .into_iter()
                    .map(|s| (s.user.clone(), s.mode_name.clone()))
                    .collect();
                let b: Vec<_> = loaded
                    .active_subscriptions(cat, at)
                    .into_iter()
                    .map(|s| (s.user.clone(), s.mode_name.clone()))
                    .collect();
                assert_eq!(a, b, "category {cat} at {at}");
            }
        }
    }

    #[test]
    fn double_serialization_is_stable() {
        let original = registry();
        let once = registry_to_xml(&original);
        let twice = registry_to_xml(&registry_from_xml(&once).expect("parses"));
        assert_eq!(once, twice);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(registry_from_xml("<Wrong/>"), Err(RegistryXmlError::Structure(_))));
        assert!(matches!(registry_from_xml("not xml"), Err(RegistryXmlError::Xml(_))));
        // Subscription referencing an undefined mode.
        let xml = r#"<SimbaRegistry>
            <User id="alice">
              <Addresses><Address name="IM" type="IM" value="im:a"/></Addresses>
              <Subscription category="X" mode="NoSuch"/>
            </User>
          </SimbaRegistry>"#;
        assert!(matches!(registry_from_xml(xml), Err(RegistryXmlError::Subscription(_))));
        // User element without id.
        assert!(matches!(
            registry_from_xml("<SimbaRegistry><User/></SimbaRegistry>"),
            Err(RegistryXmlError::Structure(_))
        ));
    }

    #[test]
    fn empty_registry_round_trips() {
        let xml = registry_to_xml(&SubscriptionRegistry::new());
        let loaded = registry_from_xml(&xml).expect("parses");
        assert_eq!(loaded.categories().count(), 0);
    }
}
