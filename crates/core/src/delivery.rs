//! The delivery layer: executing a delivery mode for one alert.
//!
//! Semantics from §3.2/§4.1:
//!
//! * blocks fire in order; within a block, **all actions mapping to
//!   currently-enabled addresses** fire together ("Only actions that map to
//!   enabled addresses at that time are performed");
//! * a block whose actions are all disabled "will automatically fail and
//!   fall back to the next backup block" — immediately;
//! * an ack-required block succeeds when any acknowledgement arrives before
//!   its timeout; otherwise the next block fires;
//! * a fire-and-forget block completes (unconfirmed) as soon as one send is
//!   accepted — it is the terminal fallback, typically email.
//!
//! [`DeliveryProcess`] is a pure state machine: it emits
//! [`DeliveryCommand`]s (sends, timers) and consumes [`DeliveryEvent`]s
//! (accepts, failures, acks, timer firings). The harness — simulated or
//! live — owns the channels and the clock.

use crate::address::{AddressBook, CommType};
use crate::alert::{Alert, AlertId};
use crate::mode::{AckPolicy, DeliveryMode};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{Event, Telemetry};
use std::sync::Arc;

/// Identifies one send attempt within a delivery process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttemptId(pub u64);

/// Identifies one ack timer within a delivery process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Why a send attempt failed synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFailure {
    /// The channel service is down (IM outage).
    ChannelDown,
    /// The recipient is unreachable (offline IM handle, uncovered phone).
    RecipientUnreachable,
    /// The local client software was unusable (hung, dialogs, ...).
    ClientSoftware,
}

impl std::fmt::Display for SendFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SendFailure::ChannelDown => "channel down",
            SendFailure::RecipientUnreachable => "recipient unreachable",
            SendFailure::ClientSoftware => "client software unusable",
        };
        f.write_str(s)
    }
}

/// An instruction from the delivery process to the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryCommand {
    /// Send `text` to `address_value` over `comm_type`; report the outcome
    /// with the given attempt id.
    Send {
        /// Attempt identifier to echo back in events.
        attempt: AttemptId,
        /// Channel to use.
        comm_type: CommType,
        /// Friendly name of the address (for traces).
        address_name: String,
        /// Channel-specific address value.
        address_value: String,
        /// The alert being delivered.
        alert: AlertId,
        /// Text to deliver.
        text: String,
    },
    /// Arrange for [`DeliveryEvent::TimerFired`] after `after`.
    StartTimer {
        /// Timer identifier to echo back.
        timer: TimerId,
        /// Delay until firing.
        after: SimDuration,
    },
}

/// An occurrence reported by the harness to the delivery process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryEvent {
    /// The channel accepted the send (it may still be lost downstream).
    SendAccepted {
        /// Which attempt.
        attempt: AttemptId,
    },
    /// The send failed synchronously.
    SendFailed {
        /// Which attempt.
        attempt: AttemptId,
        /// Why.
        failure: SendFailure,
    },
    /// An end-to-end acknowledgement arrived for an attempt.
    Acked {
        /// Which attempt.
        attempt: AttemptId,
    },
    /// A previously started timer fired.
    TimerFired {
        /// Which timer.
        timer: TimerId,
    },
}

/// Terminal or in-progress state of a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Still executing blocks.
    InProgress,
    /// Confirmed: an acknowledgement arrived.
    Acked {
        /// The acknowledged attempt.
        attempt: AttemptId,
        /// When the ack was processed.
        at: SimTime,
        /// Zero-based index of the block that succeeded.
        block: usize,
    },
    /// A fire-and-forget block handed the alert to a channel; no
    /// confirmation is possible on that channel.
    Unconfirmed {
        /// When the block completed.
        at: SimTime,
        /// Zero-based index of the completing block.
        block: usize,
    },
    /// Every block failed.
    Exhausted {
        /// When the last block failed.
        at: SimTime,
    },
}

impl DeliveryStatus {
    /// Whether the process has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, DeliveryStatus::InProgress)
    }

    /// Whether the alert reached a channel (acked or unconfirmed).
    pub fn is_handed_off(self) -> bool {
        matches!(self, DeliveryStatus::Acked { .. } | DeliveryStatus::Unconfirmed { .. })
    }

    /// When the terminal state was reached (`None` while in progress).
    pub fn terminal_at(self) -> Option<SimTime> {
        match self {
            DeliveryStatus::InProgress => None,
            DeliveryStatus::Acked { at, .. }
            | DeliveryStatus::Unconfirmed { at, .. }
            | DeliveryStatus::Exhausted { at } => Some(at),
        }
    }
}

/// Outcome of one attempt, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Issued, no response yet.
    Pending,
    /// Channel accepted it.
    Accepted,
    /// Failed synchronously.
    Failed(SendFailure),
    /// Acknowledged end-to-end.
    Acked(SimTime),
}

/// The record of one send attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Attempt identifier.
    pub attempt: AttemptId,
    /// Zero-based block index.
    pub block: usize,
    /// Friendly name of the address used.
    pub address_name: String,
    /// Channel type used.
    pub comm_type: CommType,
    /// When the attempt was issued.
    pub sent_at: SimTime,
    /// Latest known outcome.
    pub outcome: AttemptOutcome,
}

/// The per-alert delivery state machine.
#[derive(Debug)]
pub struct DeliveryProcess {
    alert: Alert,
    mode: Arc<DeliveryMode>,
    block_idx: usize,
    status: DeliveryStatus,
    attempts: Vec<AttemptRecord>,
    /// Attempts issued for the *current* block.
    current: Vec<AttemptId>,
    current_failed: usize,
    current_accepted: usize,
    current_timer: Option<TimerId>,
    next_attempt: u64,
    next_timer: u64,
    started_at: SimTime,
    telemetry: Telemetry,
}

impl DeliveryProcess {
    /// Creates the process and fires the first block. Returns the process
    /// plus the initial commands.
    pub fn start(
        alert: Alert,
        mode: impl Into<Arc<DeliveryMode>>,
        book: &AddressBook,
        now: SimTime,
    ) -> (Self, Vec<DeliveryCommand>) {
        DeliveryProcess::start_observed(alert, mode, book, now, Telemetry::disabled())
    }

    /// Like [`DeliveryProcess::start`], but emitting `delivery.*` telemetry
    /// events (block entries/skips, fallbacks, terminal outcomes) through
    /// `telemetry` as the state machine runs.
    pub fn start_observed(
        alert: Alert,
        mode: impl Into<Arc<DeliveryMode>>,
        book: &AddressBook,
        now: SimTime,
        telemetry: Telemetry,
    ) -> (Self, Vec<DeliveryCommand>) {
        let mut p = DeliveryProcess {
            alert,
            mode: mode.into(),
            block_idx: 0,
            status: DeliveryStatus::InProgress,
            attempts: Vec::new(),
            current: Vec::new(),
            current_failed: 0,
            current_accepted: 0,
            current_timer: None,
            next_attempt: 0,
            next_timer: 0,
            started_at: now,
            telemetry,
        };
        let mut cmds = Vec::new();
        p.enter_block(0, book, now, &mut cmds);
        (p, cmds)
    }

    /// A `delivery.*` event pre-tagged with this process's alert id.
    fn event(&self, name: &str, now: SimTime) -> Event {
        Event::new(name, now.as_millis()).with("alert", self.alert.id.0)
    }

    /// The alert being delivered.
    pub fn alert(&self) -> &Alert {
        &self.alert
    }

    /// Current status.
    pub fn status(&self) -> DeliveryStatus {
        self.status
    }

    /// All attempt records so far.
    pub fn attempts(&self) -> &[AttemptRecord] {
        &self.attempts
    }

    /// Total messages sent (the "irritability" cost of this delivery).
    pub fn messages_sent(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| !matches!(a.outcome, AttemptOutcome::Failed(_)))
            .count()
    }

    /// When the process started.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Feeds one event into the machine; returns follow-up commands.
    /// Events for unknown/stale attempt or timer ids are ignored — the
    /// harness may race a timer against an ack.
    pub fn handle(&mut self, event: DeliveryEvent, book: &AddressBook, now: SimTime) -> Vec<DeliveryCommand> {
        let mut cmds = Vec::new();
        if self.status.is_terminal() {
            match event {
                // Late events (acks after fallback already concluded) can
                // still upgrade an Unconfirmed/Exhausted outcome to Acked:
                // the user did receive it.
                DeliveryEvent::Acked { attempt } => {
                    if !matches!(self.status, DeliveryStatus::Acked { .. }) {
                        if let Some(rec) = self.record_mut(attempt) {
                            rec.outcome = AttemptOutcome::Acked(now);
                            let block = rec.block;
                            self.status = DeliveryStatus::Acked { attempt, at: now, block };
                            self.note_acked(block, now, true);
                        }
                    }
                }
                // Straggling send outcomes are recorded for accurate
                // reporting but never regress a concluded status.
                DeliveryEvent::SendAccepted { attempt } => {
                    if let Some(rec) = self.record_mut(attempt) {
                        if matches!(rec.outcome, AttemptOutcome::Pending) {
                            rec.outcome = AttemptOutcome::Accepted;
                        }
                    }
                }
                DeliveryEvent::SendFailed { attempt, failure } => {
                    if let Some(rec) = self.record_mut(attempt) {
                        if matches!(rec.outcome, AttemptOutcome::Pending) {
                            rec.outcome = AttemptOutcome::Failed(failure);
                        }
                    }
                }
                DeliveryEvent::TimerFired { .. } => {}
            }
            return cmds;
        }
        match event {
            DeliveryEvent::SendAccepted { attempt } => {
                if let Some(rec) = self.record_mut(attempt) {
                    if matches!(rec.outcome, AttemptOutcome::Pending) {
                        rec.outcome = AttemptOutcome::Accepted;
                    }
                }
                if self.current.contains(&attempt) {
                    self.current_accepted += 1;
                    self.check_block_progress(book, now, &mut cmds);
                }
            }
            DeliveryEvent::SendFailed { attempt, failure } => {
                if let Some(rec) = self.record_mut(attempt) {
                    rec.outcome = AttemptOutcome::Failed(failure);
                }
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("delivery.send_failed").incr();
                    self.telemetry.emit(
                        self.event("delivery.send_failed", now)
                            .with("attempt", attempt.0)
                            .with("failure", failure.to_string()),
                    );
                }
                if self.current.contains(&attempt) {
                    self.current_failed += 1;
                    self.check_block_progress(book, now, &mut cmds);
                }
            }
            DeliveryEvent::Acked { attempt } => {
                if let Some(rec) = self.record_mut(attempt) {
                    rec.outcome = AttemptOutcome::Acked(now);
                    let block = rec.block;
                    self.status = DeliveryStatus::Acked { attempt, at: now, block };
                    self.note_acked(block, now, false);
                }
            }
            DeliveryEvent::TimerFired { timer } => {
                if self.current_timer == Some(timer) {
                    // Ack window expired: fall back.
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("delivery.ack_timeout").incr();
                        self.telemetry.emit(
                            self.event("delivery.ack_timeout", now).with("block", self.block_idx),
                        );
                    }
                    self.advance(book, now, &mut cmds);
                }
            }
        }
        cmds
    }

    fn record_mut(&mut self, attempt: AttemptId) -> Option<&mut AttemptRecord> {
        self.attempts.iter_mut().find(|r| r.attempt == attempt)
    }

    /// Records a confirmed delivery: end-to-end ack latency histogram plus
    /// a `delivery.acked` event (`late` marks acks that arrived after the
    /// process had already concluded with a fallback outcome).
    fn note_acked(&self, block: usize, now: SimTime, late: bool) {
        if self.telemetry.enabled() {
            let latency_ms = now.since(self.started_at).as_millis();
            self.telemetry.metrics().counter("delivery.acked").incr();
            self.telemetry
                .metrics()
                .histogram("delivery.ack_latency_ms")
                .observe_ms(latency_ms);
            self.telemetry.emit(
                self.event("delivery.acked", now)
                    .with("block", block)
                    .with("latency_ms", latency_ms)
                    .with("late", late),
            );
        }
    }

    /// After an accept/fail in the current block, decide whether the block
    /// resolved.
    fn check_block_progress(&mut self, book: &AddressBook, now: SimTime, cmds: &mut Vec<DeliveryCommand>) {
        let issued = self.current.len();
        let ack_required = matches!(
            self.mode.blocks()[self.block_idx].ack,
            AckPolicy::Required(_)
        );
        if self.current_failed == issued {
            // Everything failed synchronously: no point waiting for the timer.
            self.advance(book, now, cmds);
        } else if !ack_required && self.current_accepted > 0 {
            // Fire-and-forget: one accepted send hands the alert off; sibling
            // attempts still pending (or failing later) cannot change that.
            self.status = DeliveryStatus::Unconfirmed { at: now, block: self.block_idx };
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("delivery.unconfirmed").incr();
                self.telemetry.emit(
                    self.event("delivery.unconfirmed", now).with("block", self.block_idx),
                );
            }
        }
        // ack_required with ≥1 accepted: wait for Acked or TimerFired.
    }

    /// Moves to the next block (or exhausts).
    fn advance(&mut self, book: &AddressBook, now: SimTime, cmds: &mut Vec<DeliveryCommand>) {
        let next = self.block_idx + 1;
        self.enter_block(next, book, now, cmds);
    }

    fn enter_block(&mut self, idx: usize, book: &AddressBook, now: SimTime, cmds: &mut Vec<DeliveryCommand>) {
        self.current.clear();
        self.current_failed = 0;
        self.current_accepted = 0;
        self.current_timer = None;

        let mut idx = idx;
        // A cheap handle on the (shared) mode so the block loop below can
        // mutate `self` while iterating the block's actions.
        let mode = Arc::clone(&self.mode);
        loop {
            let Some(block) = mode.blocks().get(idx) else {
                self.status = DeliveryStatus::Exhausted { at: now };
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("delivery.exhausted").incr();
                    self.telemetry.emit(self.event("delivery.exhausted", now));
                }
                return;
            };
            self.block_idx = idx;

            // "Only actions that map to enabled addresses at that time are
            // performed." Borrowed straight out of the book — cloning the
            // whole enabled set per block showed up in the alert hot path.
            let enabled = block
                .actions
                .iter()
                .filter_map(|name| book.get(name).filter(|a| a.enabled))
                .count();
            if enabled == 0 {
                // Disabled/unknown block: automatic immediate fallback.
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("delivery.block_skipped").incr();
                    self.telemetry
                        .emit(self.event("delivery.block_skipped", now).with("block", idx));
                }
                idx += 1;
                continue;
            }
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("delivery.block_entered").incr();
                self.telemetry.metrics().counter("delivery.sends").add(enabled as u64);
                self.telemetry.emit(
                    self.event("delivery.block_entered", now)
                        .with("block", idx)
                        .with("actions", enabled)
                        .with("fallback", idx > 0),
                );
            }

            for addr in block
                .actions
                .iter()
                .filter_map(|name| book.get(name).filter(|a| a.enabled))
            {
                let attempt = AttemptId(self.next_attempt);
                self.next_attempt += 1;
                self.current.push(attempt);
                self.attempts.push(AttemptRecord {
                    attempt,
                    block: idx,
                    address_name: addr.friendly_name.clone(),
                    comm_type: addr.comm_type,
                    sent_at: now,
                    outcome: AttemptOutcome::Pending,
                });
                cmds.push(DeliveryCommand::Send {
                    attempt,
                    comm_type: addr.comm_type,
                    address_name: addr.friendly_name.clone(),
                    address_value: addr.value.clone(),
                    alert: self.alert.id,
                    text: self.alert.text.clone(),
                });
            }
            if let AckPolicy::Required(timeout) = block.ack {
                let timer = TimerId(self.next_timer);
                self.next_timer += 1;
                self.current_timer = Some(timer);
                cmds.push(DeliveryCommand::StartTimer { timer, after: timeout });
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::alert::Urgency;
    use crate::mode::Block;

    fn book() -> AddressBook {
        let mut b = AddressBook::new();
        b.add(Address::new("MSN IM", CommType::Im, "im:alice")).unwrap();
        b.add(Address::new("Cell SMS", CommType::Sms, "+1-555-0100")).unwrap();
        b.add(Address::new("Work email", CommType::Email, "alice@work")).unwrap();
        b
    }

    fn alert() -> Alert {
        Alert {
            id: AlertId(1),
            source: "aladdin".into(),
            category: "Home.Security".into(),
            text: "Basement Water Sensor ON".into(),
            origin_timestamp: SimTime::ZERO,
            received_at: SimTime::ZERO,
            urgency: Urgency::Critical,
        }
    }

    fn im_then_email() -> DeliveryMode {
        DeliveryMode::im_then_email("Urgent", "MSN IM", "Work email", SimDuration::from_secs(60))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn sends(cmds: &[DeliveryCommand]) -> Vec<(&str, CommType)> {
        cmds.iter()
            .filter_map(|c| match c {
                DeliveryCommand::Send { address_name, comm_type, .. } => {
                    Some((address_name.as_str(), *comm_type))
                }
                _ => None,
            })
            .collect()
    }

    fn first_attempt(cmds: &[DeliveryCommand]) -> AttemptId {
        cmds.iter()
            .find_map(|c| match c {
                DeliveryCommand::Send { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .expect("a send command")
    }

    fn timer(cmds: &[DeliveryCommand]) -> TimerId {
        cmds.iter()
            .find_map(|c| match c {
                DeliveryCommand::StartTimer { timer, .. } => Some(*timer),
                _ => None,
            })
            .expect("a timer command")
    }

    #[test]
    fn happy_path_im_ack() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        assert_eq!(sends(&cmds), vec![("MSN IM", CommType::Im)]);
        let a = first_attempt(&cmds);
        let tm = timer(&cmds);

        assert!(p.handle(DeliveryEvent::SendAccepted { attempt: a }, &b, t(1)).is_empty());
        assert_eq!(p.status(), DeliveryStatus::InProgress);
        assert!(p.handle(DeliveryEvent::Acked { attempt: a }, &b, t(2)).is_empty());
        assert_eq!(p.status(), DeliveryStatus::Acked { attempt: a, at: t(2), block: 0 });

        // Stale timer later: ignored.
        assert!(p.handle(DeliveryEvent::TimerFired { timer: tm }, &b, t(60)).is_empty());
        assert_eq!(p.status(), DeliveryStatus::Acked { attempt: a, at: t(2), block: 0 });
        assert_eq!(p.messages_sent(), 1);
    }

    #[test]
    fn ack_timeout_falls_back_to_email() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        let tm = timer(&cmds);
        p.handle(DeliveryEvent::SendAccepted { attempt: a }, &b, t(1));

        // No ack; the timer fires.
        let cmds2 = p.handle(DeliveryEvent::TimerFired { timer: tm }, &b, t(60));
        assert_eq!(sends(&cmds2), vec![("Work email", CommType::Email)]);
        assert_eq!(p.status(), DeliveryStatus::InProgress);

        let a2 = first_attempt(&cmds2);
        p.handle(DeliveryEvent::SendAccepted { attempt: a2 }, &b, t(61));
        assert_eq!(p.status(), DeliveryStatus::Unconfirmed { at: t(61), block: 1 });
        assert_eq!(p.messages_sent(), 2);
    }

    #[test]
    fn synchronous_failure_advances_without_waiting() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        // IM send fails immediately (recipient offline) → email fires at once.
        let cmds2 = p.handle(
            DeliveryEvent::SendFailed { attempt: a, failure: SendFailure::RecipientUnreachable },
            &b,
            t(1),
        );
        assert_eq!(sends(&cmds2), vec![("Work email", CommType::Email)]);
    }

    #[test]
    fn disabled_address_skips_block_immediately() {
        // §3.3: disable SMS → any block containing only the SMS action
        // automatically fails and falls back.
        let mut b = book();
        b.set_enabled("Cell SMS", false);
        let mode = DeliveryMode::new(
            "SmsFirst",
            vec![
                Block::acked(vec!["Cell SMS".into()], SimDuration::from_secs(30)),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .unwrap();
        let (p, cmds) = DeliveryProcess::start(alert(), mode, &b, t(0));
        // Block 0 skipped entirely; block 1's email fires as the first command.
        assert_eq!(sends(&cmds), vec![("Work email", CommType::Email)]);
        assert_eq!(p.attempts().len(), 1);
        assert_eq!(p.attempts()[0].block, 1);
    }

    #[test]
    fn all_blocks_disabled_exhausts() {
        let mut b = book();
        b.set_enabled("MSN IM", false);
        b.set_enabled("Work email", false);
        let (p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(5));
        assert!(cmds.is_empty());
        assert_eq!(p.status(), DeliveryStatus::Exhausted { at: t(5) });
        assert!(!p.status().is_handed_off());
    }

    #[test]
    fn multi_action_block_any_ack_wins() {
        let b = book();
        let mode = DeliveryMode::new(
            "Blast",
            vec![Block::acked(
                vec!["MSN IM".into(), "Cell SMS".into()],
                SimDuration::from_secs(60),
            )],
        )
        .unwrap();
        let (mut p, cmds) = DeliveryProcess::start(alert(), mode, &b, t(0));
        assert_eq!(
            sends(&cmds),
            vec![("MSN IM", CommType::Im), ("Cell SMS", CommType::Sms)]
        );
        let ids: Vec<AttemptId> = p.attempts().iter().map(|r| r.attempt).collect();
        p.handle(DeliveryEvent::SendAccepted { attempt: ids[0] }, &b, t(1));
        p.handle(DeliveryEvent::SendAccepted { attempt: ids[1] }, &b, t(1));
        p.handle(DeliveryEvent::Acked { attempt: ids[0] }, &b, t(3));
        assert!(matches!(p.status(), DeliveryStatus::Acked { block: 0, .. }));
    }

    #[test]
    fn multi_action_block_partial_failure_still_waits_for_ack() {
        let b = book();
        let mode = DeliveryMode::new(
            "Blast",
            vec![
                Block::acked(vec!["MSN IM".into(), "Cell SMS".into()], SimDuration::from_secs(60)),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .unwrap();
        let (mut p, cmds) = DeliveryProcess::start(alert(), mode, &b, t(0));
        let ids: Vec<AttemptId> = p.attempts().iter().map(|r| r.attempt).collect();
        let tm = timer(&cmds);
        // SMS fails, IM accepted: block still waits for the ack window.
        p.handle(DeliveryEvent::SendFailed { attempt: ids[1], failure: SendFailure::RecipientUnreachable }, &b, t(1));
        p.handle(DeliveryEvent::SendAccepted { attempt: ids[0] }, &b, t(1));
        assert_eq!(p.status(), DeliveryStatus::InProgress);
        // Timeout → email.
        let cmds2 = p.handle(DeliveryEvent::TimerFired { timer: tm }, &b, t(60));
        assert_eq!(sends(&cmds2), vec![("Work email", CommType::Email)]);
    }

    #[test]
    fn exhausted_when_final_block_fails() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        let cmds2 = p.handle(
            DeliveryEvent::SendFailed { attempt: a, failure: SendFailure::ChannelDown },
            &b,
            t(1),
        );
        let a2 = first_attempt(&cmds2);
        p.handle(
            DeliveryEvent::SendFailed { attempt: a2, failure: SendFailure::ClientSoftware },
            &b,
            t(2),
        );
        assert_eq!(p.status(), DeliveryStatus::Exhausted { at: t(2) });
    }

    #[test]
    fn late_ack_upgrades_unconfirmed_outcome() {
        // IM timed out, email went out (Unconfirmed) — then the user's ack
        // for the original IM straggles in. The delivery is retroactively
        // confirmed; the user just got a duplicate (dedup handles it).
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        let tm = timer(&cmds);
        p.handle(DeliveryEvent::SendAccepted { attempt: a }, &b, t(1));
        let cmds2 = p.handle(DeliveryEvent::TimerFired { timer: tm }, &b, t(60));
        let a2 = first_attempt(&cmds2);
        p.handle(DeliveryEvent::SendAccepted { attempt: a2 }, &b, t(61));
        assert!(matches!(p.status(), DeliveryStatus::Unconfirmed { .. }));

        p.handle(DeliveryEvent::Acked { attempt: a }, &b, t(75));
        assert!(matches!(p.status(), DeliveryStatus::Acked { block: 0, .. }));
    }

    #[test]
    fn unknown_attempt_events_ignored() {
        let b = book();
        let (mut p, _) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let bogus = AttemptId(999);
        assert!(p.handle(DeliveryEvent::Acked { attempt: bogus }, &b, t(1)).is_empty());
        assert_eq!(p.status(), DeliveryStatus::InProgress);
        assert!(p
            .handle(DeliveryEvent::TimerFired { timer: TimerId(999) }, &b, t(1))
            .is_empty());
        assert_eq!(p.status(), DeliveryStatus::InProgress);
    }

    #[test]
    fn address_reenabled_between_blocks_is_respected() {
        // Book state is read at block entry, not process start.
        let mut b = book();
        b.set_enabled("Work email", false);
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        // Re-enable email while IM is pending.
        b.set_enabled("Work email", true);
        let cmds2 = p.handle(
            DeliveryEvent::SendFailed { attempt: a, failure: SendFailure::ChannelDown },
            &b,
            t(1),
        );
        assert_eq!(sends(&cmds2), vec![("Work email", CommType::Email)]);
    }

    #[test]
    fn fire_and_forget_block_concludes_on_first_accept() {
        // Regression: a two-action fire-and-forget block used to wait for
        // *every* attempt to resolve, so one accepted send plus one
        // forever-pending send left the delivery stuck InProgress. The
        // module contract is "completes (unconfirmed) as soon as one send
        // is accepted".
        let b = book();
        let mode = DeliveryMode::new(
            "Blast",
            vec![Block::fire_and_forget(vec!["MSN IM".into(), "Cell SMS".into()])],
        )
        .unwrap();
        let (mut p, _) = DeliveryProcess::start(alert(), mode, &b, t(0));
        let ids: Vec<AttemptId> = p.attempts().iter().map(|r| r.attempt).collect();
        assert_eq!(ids.len(), 2);

        // First accept concludes the block; the SMS attempt never resolves.
        p.handle(DeliveryEvent::SendAccepted { attempt: ids[0] }, &b, t(1));
        assert_eq!(p.status(), DeliveryStatus::Unconfirmed { at: t(1), block: 0 });
        assert_eq!(p.status().terminal_at(), Some(t(1)));
    }

    #[test]
    fn late_failure_does_not_regress_fire_and_forget_outcome() {
        let b = book();
        let mode = DeliveryMode::new(
            "Blast",
            vec![
                Block::fire_and_forget(vec!["MSN IM".into(), "Cell SMS".into()]),
                Block::fire_and_forget(vec!["Work email".into()]),
            ],
        )
        .unwrap();
        let (mut p, _) = DeliveryProcess::start(alert(), mode, &b, t(0));
        let ids: Vec<AttemptId> = p.attempts().iter().map(|r| r.attempt).collect();
        p.handle(DeliveryEvent::SendAccepted { attempt: ids[0] }, &b, t(1));
        assert_eq!(p.status(), DeliveryStatus::Unconfirmed { at: t(1), block: 0 });

        // The sibling SMS fails afterwards: status must not regress and no
        // fallback block may fire.
        let cmds = p.handle(
            DeliveryEvent::SendFailed { attempt: ids[1], failure: SendFailure::ChannelDown },
            &b,
            t(2),
        );
        assert!(cmds.is_empty());
        assert_eq!(p.status(), DeliveryStatus::Unconfirmed { at: t(1), block: 0 });
        assert_eq!(p.attempts()[1].outcome, AttemptOutcome::Failed(SendFailure::ChannelDown));
    }

    #[test]
    fn stale_send_accepted_after_fallback_does_not_conclude_block() {
        // Race: the IM channel's accept straggles in after the ack window
        // already expired and the email block fired. The stale accept must
        // not count toward the *current* (email) block.
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        let tm = timer(&cmds);
        // No accept yet; timer fires → fall back to email.
        let cmds2 = p.handle(DeliveryEvent::TimerFired { timer: tm }, &b, t(60));
        assert_eq!(sends(&cmds2), vec![("Work email", CommType::Email)]);

        // Stale accept for the old IM attempt arrives.
        assert!(p.handle(DeliveryEvent::SendAccepted { attempt: a }, &b, t(61)).is_empty());
        assert_eq!(p.status(), DeliveryStatus::InProgress);
        assert_eq!(p.attempts()[0].outcome, AttemptOutcome::Accepted);

        // Only the email block's own accept concludes the delivery.
        let a2 = first_attempt(&cmds2);
        p.handle(DeliveryEvent::SendAccepted { attempt: a2 }, &b, t(62));
        assert_eq!(p.status(), DeliveryStatus::Unconfirmed { at: t(62), block: 1 });
    }

    #[test]
    fn terminal_at_reports_conclusion_time() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        assert_eq!(p.status().terminal_at(), None);
        let a = first_attempt(&cmds);
        p.handle(DeliveryEvent::SendAccepted { attempt: a }, &b, t(1));
        p.handle(DeliveryEvent::Acked { attempt: a }, &b, t(4));
        assert_eq!(p.status().terminal_at(), Some(t(4)));
    }

    #[test]
    fn messages_sent_counts_non_failed_attempts() {
        let b = book();
        let (mut p, cmds) = DeliveryProcess::start(alert(), im_then_email(), &b, t(0));
        let a = first_attempt(&cmds);
        let cmds2 = p.handle(
            DeliveryEvent::SendFailed { attempt: a, failure: SendFailure::ChannelDown },
            &b,
            t(1),
        );
        let a2 = first_attempt(&cmds2);
        p.handle(DeliveryEvent::SendAccepted { attempt: a2 }, &b, t(2));
        // IM failed (not counted), email accepted (counted).
        assert_eq!(p.messages_sent(), 1);
        assert_eq!(p.attempts().len(), 2);
    }
}
