//! The per-shard segmented write-ahead log with group commit.
//!
//! Per-user WAL files ([`crate::wal::FileWal`]) pay one fsync per append
//! — fine for a 50-user soak, fatal at a million users. A [`ShardLog`]
//! multiplexes every buddy on one shard into a single segmented log:
//! appends and processed-marks from the whole shard are buffered in
//! memory and made durable together by one [`ShardLog::commit`] (one
//! write + one fsync per *batch*, not per alert). The §4.2.1 invariant
//! is preserved by the caller's batching discipline: the shard worker
//! defers every observable effect of a batch — acks, channel sends,
//! notices — until the commit that covers the batch has returned.
//!
//! Records carry their owner in [`WalRecord::user`]. Only *unprocessed*
//! records are held in memory, so the log's resident cost tracks the
//! replay backlog, not history. On disk, history is bounded by segment
//! rotation: when the active segment exceeds its size cap, the live
//! (unprocessed) records are rewritten into a fresh segment and every
//! older segment is deleted — retired deliveries are compacted away.
//!
//! Crash-safety of rotation: the fresh segment is written and fsynced
//! *before* old segments are unlinked. A crash in between leaves
//! duplicate `R` lines (reparsed idempotently) and `P` marks for
//! records the new segment no longer carries (tolerated: a mark for an
//! unknown id means the record was already compacted as processed).

use crate::alert::{IncomingAlert, Urgency};
use crate::subscription::UserId;
use crate::wal::{escape, unescape, WalError, WalRecord, WriteAheadLog};
use simba_sim::SimTime;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default segment-rotation threshold (bytes of one segment file).
pub const DEFAULT_SEGMENT_MAX_BYTES: u64 = 4 * 1024 * 1024;

/// How a [`ShardLog`] is stored.
#[derive(Debug, Clone)]
pub struct ShardLogConfig {
    /// Directory holding the shard's segment files (`seg-NNNNNN.log`).
    /// `None` keeps the log in memory — the deterministic-simulation and
    /// benchmark shape, with identical grouping/rotation accounting but
    /// no durability.
    pub dir: Option<PathBuf>,
    /// Rotate once the active segment grows past this many bytes.
    pub segment_max_bytes: u64,
}

impl Default for ShardLogConfig {
    fn default() -> Self {
        ShardLogConfig { dir: None, segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES }
    }
}

impl ShardLogConfig {
    /// An in-memory shard log.
    pub fn in_memory() -> Self {
        ShardLogConfig::default()
    }

    /// A file-backed shard log under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        ShardLogConfig { dir: Some(dir.into()), ..ShardLogConfig::default() }
    }
}

/// Running totals for one shard log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLogStats {
    /// Records appended (across all buddies).
    pub appends: u64,
    /// Processed-marks applied.
    pub marks: u64,
    /// Batches made durable (one fsync each in file mode).
    pub group_commits: u64,
    /// Segment rotations (each rewrites live records and deletes history).
    pub segments_rotated: u64,
}

#[derive(Debug)]
struct FileBackend {
    dir: PathBuf,
    seg_index: u64,
    file: File,
    seg_bytes: u64,
    pending: String,
}

/// A segmented, group-committed write-ahead log shared by every buddy on
/// one shard.
///
/// Not internally synchronized: the owning shard worker serializes all
/// access (the runtime wraps it for the per-buddy [`WriteAheadLog`]
/// facade).
#[derive(Debug)]
pub struct ShardLog {
    backend: Option<FileBackend>,
    segment_max_bytes: u64,
    /// Unprocessed records only, by id. Marked records leave memory at
    /// once; their history lives on disk until the next rotation.
    live: BTreeMap<u64, WalRecord>,
    /// Per-user unprocessed ids in append order. Entries disappear when
    /// the user's backlog drains, so the map's size tracks users with
    /// replay work, not registered users.
    by_user: HashMap<UserId, Vec<u64>>,
    next_id: u64,
    dirty: bool,
    stats: ShardLogStats,
    fail_marks_for: HashSet<UserId>,
}

impl ShardLog {
    /// Opens (or creates) the log described by `config`, replaying every
    /// segment in order. A torn tail on the *last* segment — the artifact
    /// of dying mid-commit — is truncated away; the records it carried
    /// were never covered by a completed commit, so by the group-commit
    /// discipline nothing observable (no ack, no send) depended on them.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corruption before the tail.
    pub fn open(config: ShardLogConfig) -> Result<Self, WalError> {
        let mut log = ShardLog {
            backend: None,
            segment_max_bytes: config.segment_max_bytes.max(1),
            live: BTreeMap::new(),
            by_user: HashMap::new(),
            next_id: 0,
            dirty: false,
            stats: ShardLogStats::default(),
            fail_marks_for: HashSet::new(),
        };
        let Some(dir) = config.dir else {
            return Ok(log);
        };
        std::fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        segments.sort_by_key(|(idx, _)| *idx);
        let last = segments.len().checked_sub(1);
        for (pos, (_, path)) in segments.iter().enumerate() {
            log.replay_segment(path, Some(pos) == last)?;
        }
        let seg_index = segments.last().map_or(0, |(idx, _)| *idx);
        let path = segment_path(&dir, seg_index);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let seg_bytes = file.metadata()?.len();
        log.backend = Some(FileBackend { dir, seg_index, file, seg_bytes, pending: String::new() });
        Ok(log)
    }

    /// Replays one segment into the in-memory state. `tolerate_tail`
    /// truncates a torn final line instead of failing.
    fn replay_segment(&mut self, path: &Path, tolerate_tail: bool) -> Result<(), WalError> {
        let content = std::fs::read_to_string(path)?;
        let mut valid_len = 0usize;
        let mut lines = content.split_inclusive('\n').enumerate().peekable();
        while let Some((lineno, line)) = lines.next() {
            let is_last = lines.peek().is_none();
            let complete = line.ends_with('\n');
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                valid_len += line.len();
                continue;
            }
            match self.replay_line(trimmed, lineno + 1) {
                Ok(()) if complete => valid_len += line.len(),
                Ok(()) => break, // parses but unterminated: torn tail
                Err(e) if is_last && tolerate_tail => {
                    let _ = e;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if valid_len < content.len() {
            if !tolerate_tail {
                return Err(WalError::Corrupt {
                    line: content.lines().count(),
                    reason: "torn tail in non-final segment".to_string(),
                });
            }
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        Ok(())
    }

    fn replay_line(&mut self, line: &str, lineno: usize) -> Result<(), WalError> {
        let corrupt = |reason: &str| WalError::Corrupt { line: lineno, reason: reason.to_string() };
        let mut fields = line.split('\t');
        match fields.next() {
            Some("R") => {
                let user = UserId(fields.next().map(unescape).ok_or_else(|| corrupt("missing user"))?);
                let id: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad id"))?;
                let received_ms: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad received timestamp"))?;
                let origin_ms: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad origin timestamp"))?;
                let urgency = match fields.next() {
                    Some("low") => Urgency::Low,
                    Some("normal") => Urgency::Normal,
                    Some("critical") => Urgency::Critical,
                    _ => return Err(corrupt("bad urgency")),
                };
                let mut unescape_next =
                    || -> Result<String, WalError> { fields.next().map(unescape).ok_or_else(|| corrupt("missing field")) };
                let source = unescape_next()?;
                let sender_name = unescape_next()?;
                let subject = unescape_next()?;
                let body = unescape_next()?;
                self.next_id = self.next_id.max(id + 1);
                // Duplicate ids can appear when a crash interrupted a
                // rotation between writing the fresh segment and deleting
                // the old ones; re-inserting is idempotent.
                if self.live.insert(
                    id,
                    WalRecord {
                        id,
                        received_at: SimTime::from_millis(received_ms),
                        alert: IncomingAlert {
                            source,
                            sender_name,
                            subject,
                            body,
                            origin_timestamp: SimTime::from_millis(origin_ms),
                            urgency,
                        },
                        processed: false,
                        user: Some(user.clone()),
                    },
                ).is_none()
                {
                    self.by_user.entry(user).or_default().push(id);
                }
                Ok(())
            }
            Some("P") => {
                let id: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad id"))?;
                // A mark for an id we no longer hold means the record was
                // compacted as processed in an earlier rotation: ignore.
                if let Some(record) = self.live.remove(&id) {
                    if let Some(user) = record.user {
                        drop_user_id(&mut self.by_user, &user, id);
                    }
                }
                self.next_id = self.next_id.max(id + 1);
                Ok(())
            }
            _ => Err(corrupt("unknown tag")),
        }
    }

    /// Buffers a record for `user`. The id is shard-monotonic. The record
    /// is *not* durable until the next [`ShardLog::commit`]; callers must
    /// not acknowledge the alert before that commit returns.
    ///
    /// # Errors
    ///
    /// This buffered path cannot fail today, but keeps the
    /// [`WriteAheadLog`] error contract for the facade.
    pub fn append(
        &mut self,
        user: &UserId,
        alert: &IncomingAlert,
        received_at: SimTime,
    ) -> Result<u64, WalError> {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            // Infallible for String, but avoid unwrap in a prod path.
            let _ = writeln!(
                backend.pending,
                "R\t{}\t{id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(&user.0),
                received_at.as_millis(),
                alert.origin_timestamp.as_millis(),
                alert.urgency,
                escape(&alert.source),
                escape(&alert.sender_name),
                escape(&alert.subject),
                escape(&alert.body),
            );
        }
        self.live.insert(
            id,
            WalRecord {
                id,
                received_at,
                alert: alert.clone(),
                processed: false,
                user: Some(user.clone()),
            },
        );
        self.by_user.entry(user.clone()).or_default().push(id);
        self.stats.appends += 1;
        self.dirty = true;
        Ok(id)
    }

    /// Marks record `id` processed on behalf of `user`. The mark is
    /// buffered like an append (durable at the next commit); the record
    /// leaves memory immediately.
    ///
    /// # Errors
    ///
    /// [`WalError::UnknownId`] when the id does not exist or belongs to a
    /// different user — ownership is checked so one buddy can never
    /// retire another's records. [`WalError::Io`] when a failure was
    /// injected for `user` ([`ShardLog::inject_mark_failure`]); only the
    /// affected buddy observes it.
    pub fn mark_processed(&mut self, user: &UserId, id: u64) -> Result<(), WalError> {
        match self.live.get(&id) {
            Some(record) if record.user.as_ref() == Some(user) => {}
            _ => return Err(WalError::UnknownId(id)),
        }
        if self.fail_marks_for.remove(user) {
            return Err(WalError::Io(std::io::Error::other("injected mark failure")));
        }
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            let _ = writeln!(backend.pending, "P\t{id}");
        }
        self.live.remove(&id);
        drop_user_id(&mut self.by_user, user, id);
        self.stats.marks += 1;
        self.dirty = true;
        Ok(())
    }

    /// Makes every buffered append and mark durable with a single write
    /// and a single fsync, then rotates the segment if it outgrew its
    /// cap. A no-op (no fsync, no counter) when nothing is buffered.
    ///
    /// # Errors
    ///
    /// I/O failure leaves the buffered tail unwritten; the caller must
    /// treat the whole batch as non-durable (no acks may be released).
    pub fn commit(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(backend) = &mut self.backend {
            backend.file.write_all(backend.pending.as_bytes())?;
            backend.file.flush()?;
            backend.file.sync_data()?;
            backend.seg_bytes += backend.pending.len() as u64;
            backend.pending.clear();
        }
        self.dirty = false;
        self.stats.group_commits += 1;
        if self
            .backend
            .as_ref()
            .is_some_and(|b| b.seg_bytes >= self.segment_max_bytes)
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Rewrites the live (unprocessed) records into a fresh segment and
    /// deletes every older one. Called from [`ShardLog::commit`]; also
    /// safe to call directly (e.g. at shutdown) to compact history.
    ///
    /// # Errors
    ///
    /// I/O failure before the old segments are removed leaves the log
    /// readable (duplicates are tolerated on replay).
    pub fn rotate(&mut self) -> Result<(), WalError> {
        let Some(backend) = &mut self.backend else {
            self.stats.segments_rotated += 1;
            return Ok(());
        };
        let old_index = backend.seg_index;
        let new_index = old_index + 1;
        let path = segment_path(&backend.dir, new_index);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut carried = String::new();
        for record in self.live.values() {
            use std::fmt::Write as _;
            let user = record.user.as_ref().map(|u| u.0.as_str()).unwrap_or_default();
            let _ = writeln!(
                carried,
                "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(user),
                record.id,
                record.received_at.as_millis(),
                record.alert.origin_timestamp.as_millis(),
                record.alert.urgency,
                escape(&record.alert.source),
                escape(&record.alert.sender_name),
                escape(&record.alert.subject),
                escape(&record.alert.body),
            );
        }
        file.write_all(carried.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        // Only after the fresh segment is durable do the old ones go.
        for (idx, old_path) in list_segments(&backend.dir)? {
            if idx < new_index {
                std::fs::remove_file(old_path)?;
            }
        }
        backend.seg_index = new_index;
        backend.seg_bytes = carried.len() as u64;
        backend.file = file;
        self.stats.segments_rotated += 1;
        Ok(())
    }

    /// Unprocessed records for one buddy, in append order — its restart
    /// replay set.
    pub fn unprocessed_for(&self, user: &UserId) -> Vec<WalRecord> {
        self.by_user
            .get(user)
            .map(|ids| ids.iter().filter_map(|id| self.live.get(id).cloned()).collect())
            .unwrap_or_default()
    }

    /// How many unprocessed records `user` has.
    pub fn unprocessed_count_for(&self, user: &UserId) -> usize {
        self.by_user.get(user).map_or(0, |ids| ids.len())
    }

    /// Whether `user` has replay work.
    pub fn has_unprocessed_for(&self, user: &UserId) -> bool {
        self.by_user.contains_key(user)
    }

    /// Every buddy with unprocessed records — the set the shard worker
    /// must rehydrate at startup (WAL-replay demand).
    pub fn users_with_unprocessed(&self) -> Vec<UserId> {
        self.by_user.keys().cloned().collect()
    }

    /// Total unprocessed records across the shard.
    pub fn unprocessed_len(&self) -> usize {
        self.live.len()
    }

    /// Whether a commit is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Running totals.
    pub fn stats(&self) -> ShardLogStats {
        self.stats
    }

    /// The active segment's index (for tests and diagnostics).
    pub fn segment_index(&self) -> u64 {
        self.backend.as_ref().map_or(0, |b| b.seg_index)
    }

    /// Arms a one-shot [`WalError::Io`] on `user`'s next processed-mark —
    /// the fault-injection hook behind the "a failed mark crashes the
    /// affected buddy only" regression test.
    pub fn inject_mark_failure(&mut self, user: &UserId) {
        self.fail_marks_for.insert(user.clone());
    }
}

fn drop_user_id(by_user: &mut HashMap<UserId, Vec<u64>>, user: &UserId, id: u64) {
    if let Some(ids) = by_user.get_mut(user) {
        ids.retain(|&x| x != id);
        if ids.is_empty() {
            by_user.remove(user);
        }
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((idx, entry.path()));
    }
    Ok(out)
}

/// One buddy's [`WriteAheadLog`] view of a shared [`ShardLog`].
///
/// The shard worker owns the log and hands each active buddy a facade
/// scoped to its user; the facade tags appends, checks mark ownership,
/// and scopes the replay set. `L` is anything that can lend the log out
/// mutably — the runtime uses `Arc<Mutex<ShardLog>>` inside a worker
/// (uncontended: the log never leaves its shard's thread).
#[derive(Debug, Clone)]
pub struct UserShardWal<L> {
    log: L,
    user: UserId,
}

impl<L: ShardLogHandle> UserShardWal<L> {
    /// A facade over `log` scoped to `user`.
    pub fn new(log: L, user: UserId) -> Self {
        UserShardWal { log, user }
    }

    /// The scoped user.
    pub fn user(&self) -> &UserId {
        &self.user
    }
}

/// Lends a [`ShardLog`] out for one operation. Implemented for
/// `Arc<Mutex<ShardLog>>` — the only handle shape the runtime uses, so
/// buddies (and the futures that drive them) stay `Send` even though
/// each log lives and dies on one shard thread.
pub trait ShardLogHandle {
    /// Runs `f` with exclusive access to the log.
    fn with_log<R>(&self, f: impl FnOnce(&mut ShardLog) -> R) -> R;
}

impl ShardLogHandle for std::sync::Arc<std::sync::Mutex<ShardLog>> {
    fn with_log<R>(&self, f: impl FnOnce(&mut ShardLog) -> R) -> R {
        f(&mut self.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<L: ShardLogHandle> WriteAheadLog for UserShardWal<L> {
    fn append(&mut self, alert: &IncomingAlert, received_at: SimTime) -> Result<u64, WalError> {
        self.log.with_log(|log| log.append(&self.user, alert, received_at))
    }

    fn mark_processed(&mut self, id: u64) -> Result<(), WalError> {
        self.log.with_log(|log| log.mark_processed(&self.user, id))
    }

    fn unprocessed(&self) -> Vec<WalRecord> {
        self.log.with_log(|log| log.unprocessed_for(&self.user))
    }

    fn has_unprocessed(&self) -> bool {
        self.log.with_log(|log| log.has_unprocessed_for(&self.user))
    }

    fn len(&self) -> usize {
        // The shard log compacts processed history away, so "total
        // records" is the per-user backlog — the figure health snapshots
        // actually watch.
        self.log.with_log(|log| log.unprocessed_count_for(&self.user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn alert(body: &str, origin_secs: u64) -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", body, SimTime::from_secs(origin_secs))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn user(name: &str) -> UserId {
        UserId::new(name)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simba-shardlog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_append_mark_and_per_user_views() {
        let mut log = ShardLog::open(ShardLogConfig::in_memory()).unwrap();
        let a1 = log.append(&user("alice"), &alert("one", 1), t(1)).unwrap();
        let b1 = log.append(&user("bob"), &alert("two", 2), t(2)).unwrap();
        let a2 = log.append(&user("alice"), &alert("three", 3), t(3)).unwrap();
        assert!(a1 < b1 && b1 < a2, "ids are shard-monotonic");
        assert_eq!(log.unprocessed_count_for(&user("alice")), 2);
        assert_eq!(log.unprocessed_count_for(&user("bob")), 1);

        log.mark_processed(&user("alice"), a1).unwrap();
        let remaining = log.unprocessed_for(&user("alice"));
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].alert.body, "three");
        assert_eq!(remaining[0].user, Some(user("alice")));

        // Cross-user marks are rejected: bob cannot retire alice's record.
        assert!(matches!(
            log.mark_processed(&user("bob"), a2),
            Err(WalError::UnknownId(_))
        ));
        log.commit().unwrap();
        assert_eq!(log.stats().group_commits, 1);
        // Idle commit is free.
        log.commit().unwrap();
        assert_eq!(log.stats().group_commits, 1);
    }

    #[test]
    fn group_commit_batches_many_buddies_into_one_commit() {
        let mut log = ShardLog::open(ShardLogConfig::in_memory()).unwrap();
        for i in 0..100u64 {
            let u = user(&format!("u{}", i % 10));
            let id = log.append(&u, &alert("x", i), t(i)).unwrap();
            log.mark_processed(&u, id).unwrap();
        }
        log.commit().unwrap();
        assert_eq!(log.stats().appends, 100);
        assert_eq!(log.stats().marks, 100);
        assert_eq!(log.stats().group_commits, 1);
        assert_eq!(log.unprocessed_len(), 0);
    }

    #[test]
    fn committed_records_survive_reopen_uncommitted_do_not() {
        let dir = temp_dir("durability");
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        let a = log.append(&user("alice"), &alert("durable", 1), t(1)).unwrap();
        log.append(&user("bob"), &alert("durable too", 2), t(2)).unwrap();
        log.commit().unwrap();
        log.mark_processed(&user("alice"), a).unwrap();
        log.commit().unwrap();
        // A third batch is appended but the process dies before commit.
        log.append(&user("carol"), &alert("lost", 3), t(3)).unwrap();
        drop(log);

        let log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        // alice's record was marked; bob's replays; carol's uncommitted
        // append vanished (it was never acked, so nothing is lost).
        assert!(!log.has_unprocessed_for(&user("alice")));
        assert_eq!(log.unprocessed_for(&user("bob")).len(), 1);
        assert!(!log.has_unprocessed_for(&user("carol")));
        assert_eq!(log.unprocessed_len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ids_continue_after_reopen() {
        let dir = temp_dir("ids");
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        let a = log.append(&user("alice"), &alert("x", 1), t(1)).unwrap();
        log.mark_processed(&user("alice"), a).unwrap();
        log.commit().unwrap();
        drop(log);
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        let b = log.append(&user("alice"), &alert("y", 2), t(2)).unwrap();
        assert!(b > a, "ids never reused, even across processed history");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_on_last_segment_is_truncated() {
        let dir = temp_dir("torn");
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        log.append(&user("alice"), &alert("complete", 1), t(1)).unwrap();
        log.commit().unwrap();
        drop(log);
        // Die mid-commit: a partial line at the tail.
        {
            let path = segment_path(&dir, 0);
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"R\tbob\t7\t90").unwrap();
        }
        let log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.unprocessed_len(), 1);
        assert!(log.has_unprocessed_for(&user("alice")));
        assert!(!log.has_unprocessed_for(&user("bob")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_compacts_processed_history() {
        let dir = temp_dir("rotate");
        let config = ShardLogConfig { dir: Some(dir.clone()), segment_max_bytes: 256 };
        let mut log = ShardLog::open(config).unwrap();
        // Churn enough processed records to trip several rotations.
        for i in 0..50u64 {
            let id = log.append(&user("alice"), &alert("churn", i), t(i)).unwrap();
            log.mark_processed(&user("alice"), id).unwrap();
            log.commit().unwrap();
        }
        // One live record rides along.
        let live = log.append(&user("bob"), &alert("keep me", 99), t(99)).unwrap();
        log.commit().unwrap();
        assert!(log.stats().segments_rotated > 0);
        // Exactly one segment remains on disk, holding only live records.
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "old segments deleted: {segments:?}");
        drop(log);
        let log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.unprocessed_for(&user("bob"))[0].id, live);
        assert_eq!(log.unprocessed_len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mark_for_compacted_record_is_tolerated_on_replay() {
        // Simulate the crash-between-rotation-steps artifact directly: a
        // stale P for an id the surviving segments no longer carry.
        let dir = temp_dir("stalemark");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(segment_path(&dir, 3), "P\t2\nR\talice\t5\t1000\t1000\tnormal\tsrc\t\t\tbody\n").unwrap();
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.unprocessed_len(), 1);
        // next_id advanced past both the stale mark and the live record.
        let next = log.append(&user("alice"), &alert("new", 1), t(1)).unwrap();
        assert!(next >= 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_mark_failure_hits_only_the_target_user_once() {
        let mut log = ShardLog::open(ShardLogConfig::in_memory()).unwrap();
        let a = log.append(&user("alice"), &alert("a", 1), t(1)).unwrap();
        let b = log.append(&user("bob"), &alert("b", 2), t(2)).unwrap();
        log.inject_mark_failure(&user("alice"));
        assert!(matches!(log.mark_processed(&user("alice"), a), Err(WalError::Io(_))));
        // bob is untouched, and alice's next mark succeeds (one-shot).
        log.mark_processed(&user("bob"), b).unwrap();
        log.mark_processed(&user("alice"), a).unwrap();
        assert_eq!(log.unprocessed_len(), 0);
    }

    #[test]
    fn user_facade_scopes_the_shared_log() {
        let log = Arc::new(Mutex::new(ShardLog::open(ShardLogConfig::in_memory()).unwrap()));
        let mut alice = UserShardWal::new(Arc::clone(&log), user("alice"));
        let mut bob = UserShardWal::new(Arc::clone(&log), user("bob"));
        let a = alice.append(&alert("for alice", 1), t(1)).unwrap();
        let b = bob.append(&alert("for bob", 2), t(2)).unwrap();
        assert_eq!(alice.unprocessed().len(), 1);
        assert_eq!(alice.len(), 1);
        assert!(alice.has_unprocessed());
        // Ownership enforced through the facade too.
        assert!(alice.mark_processed(b).is_err());
        alice.mark_processed(a).unwrap();
        assert!(!alice.has_unprocessed());
        assert!(bob.has_unprocessed());
        assert_eq!(log.with_log(|l| l.unprocessed_len()), 1);
    }

    #[test]
    fn escaped_user_names_round_trip_on_disk() {
        let dir = temp_dir("escape");
        let tricky = user("we\tird\nname");
        let mut log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        log.append(&tricky, &alert("x", 1), t(1)).unwrap();
        log.commit().unwrap();
        drop(log);
        let log = ShardLog::open(ShardLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.unprocessed_for(&tricky).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
