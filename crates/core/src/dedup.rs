//! Timestamp-based duplicate suppression at the user (§4.2.1).
//!
//! "Duplicated alert deliveries may occur if MyAlertBuddy fails after
//! sending an alert and before marking the corresponding received IM as
//! 'Processed'. We use timestamps to allow the user to detect and discard
//! duplicates." The detector remembers `(source, category, origin
//! timestamp)` keys within a sliding window.

use crate::alert::Alert;
use simba_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// A sliding-window duplicate detector keyed by [`Alert::dedup_key`].
#[derive(Debug)]
pub struct DuplicateDetector {
    window: SimDuration,
    /// key → when first seen.
    seen: HashMap<(String, String, SimTime), SimTime>,
    /// FIFO of (seen_at, key) for expiry.
    order: VecDeque<(SimTime, (String, String, SimTime))>,
    duplicates: u64,
    accepted: u64,
}

impl DuplicateDetector {
    /// Creates a detector with the given memory window. Alerts older than
    /// the window are forgotten — a replay after that long is treated as
    /// new, which matches how a human reading alerts would behave.
    pub fn new(window: SimDuration) -> Self {
        DuplicateDetector {
            window,
            seen: HashMap::new(),
            order: VecDeque::new(),
            duplicates: 0,
            accepted: 0,
        }
    }

    /// A detector with the default 24-hour window.
    pub fn daily() -> Self {
        DuplicateDetector::new(SimDuration::from_hours(24))
    }

    /// Observes a delivered alert; returns `true` if it is fresh, `false`
    /// if it is a duplicate to discard.
    pub fn observe(&mut self, alert: &Alert, now: SimTime) -> bool {
        self.expire(now);
        let key = alert.dedup_key();
        if self.seen.contains_key(&key) {
            self.duplicates += 1;
            false
        } else {
            self.seen.insert(key.clone(), now);
            self.order.push_back((now, key));
            self.accepted += 1;
            true
        }
    }

    fn expire(&mut self, now: SimTime) {
        while self
            .order
            .front()
            .is_some_and(|(at, _)| now.since(*at) > self.window)
        {
            if let Some((_, key)) = self.order.pop_front() {
                self.seen.remove(&key);
            }
        }
    }

    /// Count of duplicates discarded so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Count of fresh alerts accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of keys currently remembered.
    pub fn remembered(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertId, Urgency};

    fn alert(id: u64, origin_secs: u64) -> Alert {
        Alert {
            id: AlertId(id),
            source: "aladdin".into(),
            category: "Home".into(),
            text: "x".into(),
            origin_timestamp: SimTime::from_secs(origin_secs),
            received_at: SimTime::from_secs(origin_secs),
            urgency: Urgency::Normal,
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn replay_with_same_origin_is_duplicate() {
        let mut d = DuplicateDetector::daily();
        assert!(d.observe(&alert(1, 100), t(101)));
        // Replayed after a WAL recovery: new id, same origin timestamp.
        assert!(!d.observe(&alert(2, 100), t(160)));
        assert_eq!(d.duplicates(), 1);
        assert_eq!(d.accepted(), 1);
    }

    #[test]
    fn different_origin_is_fresh() {
        let mut d = DuplicateDetector::daily();
        assert!(d.observe(&alert(1, 100), t(101)));
        assert!(d.observe(&alert(2, 200), t(201)));
        assert_eq!(d.accepted(), 2);
    }

    #[test]
    fn different_source_or_category_is_fresh() {
        let mut d = DuplicateDetector::daily();
        let mut a = alert(1, 100);
        assert!(d.observe(&a, t(101)));
        a.source = "wish".into();
        assert!(d.observe(&a, t(102)));
        a.category = "Location".into();
        assert!(d.observe(&a, t(103)));
    }

    #[test]
    fn window_expiry_forgets_old_keys() {
        let mut d = DuplicateDetector::new(SimDuration::from_secs(60));
        assert!(d.observe(&alert(1, 100), t(100)));
        assert!(!d.observe(&alert(2, 100), t(130)));
        // 100s after first sight: beyond the window, treated as new.
        assert!(d.observe(&alert(3, 100), t(201)));
        assert_eq!(d.remembered(), 1);
    }

    #[test]
    fn counters_track_history() {
        let mut d = DuplicateDetector::daily();
        for i in 0..5 {
            d.observe(&alert(i, 100), t(100 + i));
        }
        assert_eq!(d.accepted(), 1);
        assert_eq!(d.duplicates(), 4);
    }
}
