//! The Master Daemon Controller (MDC): SIMBA's watchdog (§4.2.1).
//!
//! "MyAlertBuddy is always launched by a watchdog process called Master
//! Daemon Controller (MDC), which monitors MyAlertBuddy and restarts it
//! upon detecting its termination. The MDC also periodically invokes a
//! non-blocking AreYouWorking() function call and restarts MyAlertBuddy if
//! it is hung and fails to respond ... If the number of failed restarts
//! exceeds a threshold, the MDC reboots the machine."
//!
//! Modelled as a pure state machine over timer/reply events; the harness
//! owns the schedule. The paper's deployment used a 3-minute ping interval.

use simba_sim::{SimDuration, SimTime};

/// MDC tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdcConfig {
    /// How often AreYouWorking() is invoked (paper: 3 minutes).
    pub ping_interval: SimDuration,
    /// How long to wait for the reply event before declaring a hang.
    pub reply_timeout: SimDuration,
    /// Consecutive failed restarts (no successful health check between)
    /// after which the machine is rebooted.
    pub reboot_threshold: u32,
}

impl Default for MdcConfig {
    fn default() -> Self {
        MdcConfig {
            ping_interval: SimDuration::from_mins(3),
            reply_timeout: SimDuration::from_secs(30),
            reboot_threshold: 5,
        }
    }
}

/// An action the MDC instructs the harness to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdcAction {
    /// Deliver an AreYouWorking() ping to MyAlertBuddy; if it is healthy
    /// the harness must call [`MasterDaemonController::on_reply`] before
    /// the deadline event.
    Ping {
        /// When to fire the reply-deadline event.
        deadline: SimTime,
    },
    /// Terminate (if needed) and relaunch MyAlertBuddy.
    RestartMab,
    /// Reboot the whole machine (restart storm).
    RebootMachine,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MdcState {
    Idle,
    AwaitingReply {
        deadline: SimTime,
    },
}

/// The watchdog state machine.
#[derive(Debug)]
pub struct MasterDaemonController {
    config: MdcConfig,
    state: MdcState,
    consecutive_failures: u32,
    restarts: u64,
    reboots: u64,
    pings: u64,
}

impl MasterDaemonController {
    /// Creates a watchdog with the given configuration.
    pub fn new(config: MdcConfig) -> Self {
        MasterDaemonController {
            config,
            state: MdcState::Idle,
            consecutive_failures: 0,
            restarts: 0,
            reboots: 0,
            pings: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> MdcConfig {
        self.config
    }

    /// When the next periodic ping should fire, measured from `now`.
    pub fn ping_interval(&self) -> SimDuration {
        self.config.ping_interval
    }

    /// Total MyAlertBuddy restarts performed (the paper's month saw 36).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Total machine reboots performed.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Total pings issued.
    pub fn pings(&self) -> u64 {
        self.pings
    }

    /// The periodic ping timer fired: issue an AreYouWorking() call.
    /// The harness must schedule a deadline event at the returned
    /// [`MdcAction::Ping::deadline`].
    pub fn on_ping_timer(&mut self, now: SimTime) -> MdcAction {
        self.pings += 1;
        let deadline = now + self.config.reply_timeout;
        self.state = MdcState::AwaitingReply { deadline };
        MdcAction::Ping { deadline }
    }

    /// MyAlertBuddy answered the ping: healthy. Resets the failure streak.
    pub fn on_reply(&mut self, _now: SimTime) {
        self.state = MdcState::Idle;
        self.consecutive_failures = 0;
    }

    /// The reply deadline fired. Returns the recovery action if the reply
    /// never came (or `None` if it did and this is a stale deadline).
    pub fn on_reply_deadline(&mut self, now: SimTime) -> Option<MdcAction> {
        match self.state {
            MdcState::AwaitingReply { deadline } if deadline <= now => {
                self.state = MdcState::Idle;
                Some(self.fail_and_decide())
            }
            _ => None,
        }
    }

    /// The harness detected MyAlertBuddy terminating (crash or clean
    /// rejuvenation exit). Returns the recovery action.
    pub fn on_mab_terminated(&mut self, _now: SimTime) -> MdcAction {
        self.state = MdcState::Idle;
        self.fail_and_decide()
    }

    fn fail_and_decide(&mut self) -> MdcAction {
        self.consecutive_failures += 1;
        if self.consecutive_failures > self.config.reboot_threshold {
            self.consecutive_failures = 0;
            self.reboots += 1;
            MdcAction::RebootMachine
        } else {
            self.restarts += 1;
            MdcAction::RestartMab
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn mdc() -> MasterDaemonController {
        MasterDaemonController::new(MdcConfig {
            ping_interval: SimDuration::from_mins(3),
            reply_timeout: SimDuration::from_secs(30),
            reboot_threshold: 3,
        })
    }

    #[test]
    fn healthy_ping_reply_cycle() {
        let mut m = mdc();
        let action = m.on_ping_timer(t(0));
        assert_eq!(action, MdcAction::Ping { deadline: t(30) });
        m.on_reply(t(1));
        // Deadline later: stale, no action.
        assert_eq!(m.on_reply_deadline(t(30)), None);
        assert_eq!(m.restarts(), 0);
        assert_eq!(m.pings(), 1);
    }

    #[test]
    fn missed_reply_restarts() {
        let mut m = mdc();
        m.on_ping_timer(t(0));
        assert_eq!(m.on_reply_deadline(t(30)), Some(MdcAction::RestartMab));
        assert_eq!(m.restarts(), 1);
    }

    #[test]
    fn early_deadline_event_is_ignored() {
        let mut m = mdc();
        let MdcAction::Ping { deadline } = m.on_ping_timer(t(0)) else {
            panic!("expected ping")
        };
        // An (erroneous) early check is a no-op.
        assert_eq!(m.on_reply_deadline(t(10)), None);
        assert_eq!(m.on_reply_deadline(deadline), Some(MdcAction::RestartMab));
    }

    #[test]
    fn termination_restarts_immediately() {
        let mut m = mdc();
        assert_eq!(m.on_mab_terminated(t(5)), MdcAction::RestartMab);
        assert_eq!(m.restarts(), 1);
    }

    #[test]
    fn restart_storm_trips_reboot_exactly_at_threshold() {
        let mut m = mdc();
        // Threshold 3: failures 1..=3 restart, the 4th consecutive reboots.
        for i in 1..=3 {
            assert_eq!(m.on_mab_terminated(t(i)), MdcAction::RestartMab, "failure {i}");
        }
        assert_eq!(m.on_mab_terminated(t(4)), MdcAction::RebootMachine);
        assert_eq!(m.restarts(), 3);
        assert_eq!(m.reboots(), 1);
        // Counter reset after reboot: next failure restarts again.
        assert_eq!(m.on_mab_terminated(t(5)), MdcAction::RestartMab);
    }

    #[test]
    fn successful_health_check_resets_streak() {
        let mut m = mdc();
        m.on_mab_terminated(t(1));
        m.on_mab_terminated(t(2));
        // A ping answered in time clears the streak.
        m.on_ping_timer(t(3));
        m.on_reply(t(4));
        for i in 5..=7 {
            assert_eq!(m.on_mab_terminated(t(i)), MdcAction::RestartMab);
        }
        assert_eq!(m.reboots(), 0);
    }

    #[test]
    fn hang_then_recovery_full_sequence() {
        let mut m = mdc();
        // MAB hangs: ping, no reply, restart. Next ping round-trips.
        m.on_ping_timer(t(0));
        assert_eq!(m.on_reply_deadline(t(30)), Some(MdcAction::RestartMab));
        m.on_ping_timer(t(180));
        m.on_reply(t(181));
        assert_eq!(m.restarts(), 1);
        assert_eq!(m.pings(), 2);
    }
}
