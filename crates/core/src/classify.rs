//! Alert classification, aggregation, and filtering (§4.2).
//!
//! * **Classification** — "the user customizes the classifier by specifying
//!   the list of accepted alert sources, and how to extract category-related
//!   keywords from the alerts": per-source rules name the field holding the
//!   keywords (sender name for Yahoo!/Alerts.com, subject for MSN Mobile and
//!   the desktop assistant).
//! * **Aggregation** — "mapping all of 'Stocks', 'Financial news', and
//!   'Earnings reports' to a single category called 'Investment'".
//! * **Filtering via sub-categorization** — "by mapping 'Sensor ON' and
//!   'Sensor OFF' to two different subcategories, the user can treat one of
//!   them as more urgent than the other".
//!
//! The classifier also maintains the directory of subscribed services and
//! their unsubscribe instructions.

use crate::alert::IncomingAlert;
use std::collections::BTreeMap;

/// Which field of an incoming alert carries the category keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeywordField {
    /// The email sender display name (Yahoo!, Alerts.com style).
    SenderName,
    /// The subject line (MSN Mobile, desktop assistant style).
    Subject,
    /// The message body (IM alerts, Aladdin style).
    Body,
}

impl KeywordField {
    fn extract(self, alert: &IncomingAlert) -> &str {
        match self {
            KeywordField::SenderName => &alert.sender_name,
            KeywordField::Subject => &alert.subject,
            KeywordField::Body => &alert.body,
        }
    }
}

/// Per-source acceptance rule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SourceRule {
    /// Exact source identifier (IM handle or email address).
    source: String,
    /// Where this source puts its keywords.
    field: KeywordField,
    /// How to unsubscribe from this service (kept for the §4.2 service
    /// directory).
    unsubscribe_info: String,
}

/// Sub-categorization rule: refine `category` to `subcategory` when the
/// alert text contains `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SubCatRule {
    category: String,
    pattern: String,
    subcategory: String,
}

/// Why an incoming alert was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The source is not on the accepted list.
    UnknownSource(
        /// The offending source id.
        String,
    ),
    /// No keyword matched and no default category is configured.
    NoCategory,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownSource(s) => write!(f, "source {s:?} not accepted"),
            RejectReason::NoCategory => write!(f, "no keyword matched and no default category"),
        }
    }
}

/// One entry in the subscribed-services directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Source identifier.
    pub source: String,
    /// Where its keywords live.
    pub field: KeywordField,
    /// How to unsubscribe.
    pub unsubscribe_info: String,
}

/// The MyAlertBuddy alert classifier.
#[derive(Debug, Clone, Default)]
pub struct Classifier {
    sources: Vec<SourceRule>,
    /// keyword → personal category (aggregation).
    keyword_map: BTreeMap<String, String>,
    subcats: Vec<SubCatRule>,
    default_category: Option<String>,
}

impl Classifier {
    /// An empty classifier (accepts nothing).
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Accepts alerts from `source`, reading keywords from `field`.
    pub fn accept_source(
        &mut self,
        source: impl Into<String>,
        field: KeywordField,
        unsubscribe_info: impl Into<String>,
    ) {
        self.sources.push(SourceRule {
            source: source.into(),
            field,
            unsubscribe_info: unsubscribe_info.into(),
        });
    }

    /// Maps a keyword to a personal category (aggregation). Keywords are
    /// matched case-insensitively as substrings of the source's keyword
    /// field; the longest matching keyword wins so "Earnings reports"
    /// beats "Earnings".
    pub fn map_keyword(&mut self, keyword: impl Into<String>, category: impl Into<String>) {
        self.keyword_map.insert(keyword.into(), category.into());
    }

    /// Adds a sub-categorization rule (filtering): when an alert lands in
    /// `category` and its body contains `pattern`, refine to `subcategory`.
    pub fn add_subcategory(
        &mut self,
        category: impl Into<String>,
        pattern: impl Into<String>,
        subcategory: impl Into<String>,
    ) {
        self.subcats.push(SubCatRule {
            category: category.into(),
            pattern: pattern.into(),
            subcategory: subcategory.into(),
        });
    }

    /// Sets the category used when no keyword matches (instead of
    /// rejecting).
    pub fn set_default_category(&mut self, category: impl Into<String>) {
        self.default_category = Some(category.into());
    }

    /// The subscribed-services directory (§4.2: MyAlertBuddy "helps the
    /// user maintain a list of all the subscribed alert services, and the
    /// information about how to unsubscribe them").
    pub fn services(&self) -> Vec<ServiceEntry> {
        self.sources
            .iter()
            .map(|r| ServiceEntry {
                source: r.source.clone(),
                field: r.field,
                unsubscribe_info: r.unsubscribe_info.clone(),
            })
            .collect()
    }

    /// Classifies an incoming alert to a personal category.
    ///
    /// # Errors
    ///
    /// Rejects alerts from unknown sources, and keyword-less alerts when no
    /// default category is configured.
    pub fn classify(&self, alert: &IncomingAlert) -> Result<String, RejectReason> {
        let rule = self
            .sources
            .iter()
            .find(|r| r.source == alert.source)
            .ok_or_else(|| RejectReason::UnknownSource(alert.source.clone()))?;

        let field_text = rule.field.extract(alert).to_lowercase();
        let category = self
            .keyword_map
            .iter()
            .filter(|(kw, _)| field_text.contains(&kw.to_lowercase()))
            .max_by_key(|(kw, _)| kw.len())
            .map(|(_, cat)| cat.clone())
            .or_else(|| self.default_category.clone())
            .ok_or(RejectReason::NoCategory)?;

        // Sub-categorization pass over the body.
        let body = alert.body.to_lowercase();
        let refined = self
            .subcats
            .iter()
            .filter(|r| r.category == category && body.contains(&r.pattern.to_lowercase()))
            .max_by_key(|r| r.pattern.len())
            .map(|r| r.subcategory.clone())
            .unwrap_or(category);
        Ok(refined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sim::SimTime;

    fn classifier() -> Classifier {
        let mut c = Classifier::new();
        c.accept_source("alerts@yahoo", KeywordField::SenderName, "visit alerts.yahoo.com");
        c.accept_source("mobile@msn", KeywordField::Subject, "reply STOP");
        c.accept_source("aladdin-gw", KeywordField::Body, "home gateway config");
        c.map_keyword("Stocks", "Investment");
        c.map_keyword("Financial news", "Investment");
        c.map_keyword("Earnings reports", "Investment");
        c.map_keyword("Weather", "Daily");
        c.map_keyword("Sensor", "Home.Security");
        c.add_subcategory("Home.Security", "Sensor ON", "Home.Security.Urgent");
        c.add_subcategory("Home.Security", "Sensor OFF", "Home.Security.Info");
        c
    }

    #[test]
    fn sender_name_keywords_yahoo_style() {
        let c = classifier();
        let a = IncomingAlert::from_email("alerts@yahoo", "Yahoo! Stocks", "MSFT at 80", "…", SimTime::ZERO);
        assert_eq!(c.classify(&a).unwrap(), "Investment");
    }

    #[test]
    fn subject_keywords_msn_style() {
        let c = classifier();
        let a = IncomingAlert::from_email("mobile@msn", "MSN Mobile", "Weather update: rain", "…", SimTime::ZERO);
        assert_eq!(c.classify(&a).unwrap(), "Daily");
    }

    #[test]
    fn body_keywords_im_style() {
        let c = classifier();
        let a = IncomingAlert::from_im("aladdin-gw", "Garage Door Sensor Broken", SimTime::ZERO);
        assert_eq!(c.classify(&a).unwrap(), "Home.Security");
    }

    #[test]
    fn aggregation_maps_many_keywords_to_one_category() {
        let c = classifier();
        for (name, _) in [("Yahoo! Stocks", ""), ("WSJ Financial news", ""), ("CBS Earnings reports", "")] {
            let a = IncomingAlert::from_email("alerts@yahoo", name, "", "", SimTime::ZERO);
            assert_eq!(c.classify(&a).unwrap(), "Investment", "for {name}");
        }
    }

    #[test]
    fn subcategorization_splits_on_off() {
        let c = classifier();
        let on = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO);
        let off = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor OFF", SimTime::ZERO);
        assert_eq!(c.classify(&on).unwrap(), "Home.Security.Urgent");
        assert_eq!(c.classify(&off).unwrap(), "Home.Security.Info");
    }

    #[test]
    fn longest_keyword_wins() {
        let mut c = classifier();
        c.map_keyword("Stocks Options", "Derivatives");
        let a = IncomingAlert::from_email("alerts@yahoo", "Yahoo! Stocks Options", "", "", SimTime::ZERO);
        assert_eq!(c.classify(&a).unwrap(), "Derivatives");
    }

    #[test]
    fn keyword_match_is_case_insensitive() {
        let c = classifier();
        let a = IncomingAlert::from_email("alerts@yahoo", "yahoo! STOCKS", "", "", SimTime::ZERO);
        assert_eq!(c.classify(&a).unwrap(), "Investment");
    }

    #[test]
    fn unknown_source_rejected() {
        let c = classifier();
        let a = IncomingAlert::from_im("spammer", "buy now", SimTime::ZERO);
        assert_eq!(
            c.classify(&a),
            Err(RejectReason::UnknownSource("spammer".into()))
        );
    }

    #[test]
    fn no_keyword_uses_default_or_rejects() {
        let mut c = classifier();
        let a = IncomingAlert::from_email("alerts@yahoo", "Yahoo! Horoscopes", "", "", SimTime::ZERO);
        assert_eq!(c.classify(&a), Err(RejectReason::NoCategory));
        c.set_default_category("Misc");
        assert_eq!(c.classify(&a).unwrap(), "Misc");
    }

    #[test]
    fn services_directory_lists_unsubscribe_info() {
        let c = classifier();
        let dir = c.services();
        assert_eq!(dir.len(), 3);
        let yahoo = dir.iter().find(|s| s.source == "alerts@yahoo").unwrap();
        assert_eq!(yahoo.unsubscribe_info, "visit alerts.yahoo.com");
        assert_eq!(yahoo.field, KeywordField::SenderName);
    }

    #[test]
    fn subcategory_requires_matching_parent_category() {
        let mut c = classifier();
        // Same pattern registered under a different parent must not fire.
        c.add_subcategory("Daily", "Sensor ON", "Daily.Wrong");
        let on = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO);
        assert_eq!(c.classify(&on).unwrap(), "Home.Security.Urgent");
    }
}
