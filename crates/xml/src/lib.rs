//! `simba-xml` — a minimal XML 1.0 subset parser and writer.
//!
//! The SIMBA paper (§4.1) expresses user address books and delivery modes as
//! XML documents "to allow extensibility for accommodating new communication
//! addresses". This crate implements the subset of XML those documents need,
//! from scratch and with no dependencies:
//!
//! * elements with attributes (single- or double-quoted),
//! * character data with the five predefined entities plus numeric
//!   character references,
//! * comments and an optional XML declaration (both skipped),
//! * self-closing tags.
//!
//! Out of scope (and rejected with a parse error where applicable):
//! namespaces, DTDs, processing instructions other than the declaration,
//! and CDATA sections.
//!
//! # Examples
//!
//! ```
//! use simba_xml::parse;
//!
//! # fn main() -> Result<(), simba_xml::XmlError> {
//! let doc = parse(r#"<mode name="urgent"><block><action>IM</action></block></mode>"#)?;
//! assert_eq!(doc.name, "mode");
//! assert_eq!(doc.attr("name"), Some("urgent"));
//! let block = doc.child("block").expect("block element");
//! assert_eq!(block.child("action").unwrap().text(), "IM");
//!
//! // Documents round-trip through the writer.
//! let text = doc.to_xml();
//! assert_eq!(parse(&text)?, doc);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod document;
mod error;
mod lexer;
mod parser;
mod writer;

pub use document::{Element, Node};
pub use error::XmlError;
pub use parser::parse;
pub use writer::{escape_attr, escape_text};
