//! The in-memory document model: [`Element`] and [`Node`].

/// A single XML element: name, attributes, and ordered child nodes.
///
/// Attributes preserve document order, which the writer reproduces, so a
/// parse → write → parse cycle is lossless for the supported subset
/// (inter-element whitespace aside; see [`Element::normalized`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// The element (tag) name.
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node inside an element: either a child element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (already entity-decoded).
    Text(String),
}

impl Element {
    /// Creates an empty element with the given name.
    ///
    /// # Examples
    ///
    /// ```
    /// let e = simba_xml::Element::new("mode");
    /// assert_eq!(e.name, "mode");
    /// assert!(e.children.is_empty());
    /// ```
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute, builder style.
    ///
    /// ```
    /// let e = simba_xml::Element::new("address").with_attr("type", "IM");
    /// assert_eq!(e.attr("type"), Some("IM"));
    /// ```
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Adds a child element, builder style.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child, builder style.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Returns the value of the attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns the first child element named `name`, if any.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Iterates over all child *elements* (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Iterates over all child elements named `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenation of all direct text children, trimmed.
    ///
    /// ```
    /// let doc = simba_xml::parse("<a> hello </a>").unwrap();
    /// assert_eq!(doc.text(), "hello");
    /// ```
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Returns a copy with insignificant whitespace-only text nodes removed,
    /// recursively, and remaining text trimmed. Useful for structural
    /// comparison of pretty-printed documents.
    #[must_use]
    pub fn normalized(&self) -> Element {
        let mut out = Element::new(self.name.clone());
        out.attrs = self.attrs.clone();
        for n in &self.children {
            match n {
                Node::Element(e) => out.children.push(Node::Element(e.normalized())),
                Node::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        out.children.push(Node::Text(trimmed.to_string()));
                    }
                }
            }
        }
        out
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_len(&self) -> usize {
        1 + self.elements().map(Element::subtree_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("mode")
            .with_attr("name", "urgent")
            .with_child(
                Element::new("block")
                    .with_child(Element::new("action").with_text("IM"))
                    .with_child(Element::new("action").with_text("SMS")),
            )
            .with_child(Element::new("block").with_child(Element::new("action").with_text("EM")))
    }

    #[test]
    fn attr_lookup_finds_first_match() {
        let e = Element::new("x").with_attr("a", "1").with_attr("b", "2");
        assert_eq!(e.attr("a"), Some("1"));
        assert_eq!(e.attr("b"), Some("2"));
        assert_eq!(e.attr("c"), None);
    }

    #[test]
    fn child_and_children_named() {
        let doc = sample();
        assert_eq!(doc.children_named("block").count(), 2);
        let first = doc.child("block").unwrap();
        assert_eq!(first.children_named("action").count(), 2);
        assert!(doc.child("missing").is_none());
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = Element::new("a")
            .with_text("  hello")
            .with_child(Element::new("b"))
            .with_text(" world  ");
        assert_eq!(e.text(), "hello world");
    }

    #[test]
    fn normalized_strips_whitespace_nodes() {
        let e = Element::new("a")
            .with_text("\n  ")
            .with_child(Element::new("b").with_text(" x "))
            .with_text("\n");
        let n = e.normalized();
        assert_eq!(n.children.len(), 1);
        let b = n.child("b").unwrap();
        assert_eq!(b.children, vec![Node::Text("x".into())]);
    }

    #[test]
    fn subtree_len_counts_elements() {
        assert_eq!(sample().subtree_len(), 6);
        assert_eq!(Element::new("leaf").subtree_len(), 1);
    }

    #[test]
    fn elements_skips_text() {
        let e = Element::new("a").with_text("t").with_child(Element::new("b"));
        assert_eq!(e.elements().count(), 1);
    }
}
