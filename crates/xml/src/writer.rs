//! Serialization of [`Element`] trees back to XML text.

use crate::document::{Element, Node};
use std::fmt::Write as _;

/// Escapes character data for use as element text.
///
/// ```
/// assert_eq!(simba_xml::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted attribute value.
///
/// ```
/// assert_eq!(simba_xml::escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

impl Element {
    /// Serializes this element (and its subtree) as compact XML.
    ///
    /// The output always re-parses to an equal tree:
    ///
    /// ```
    /// let e = simba_xml::Element::new("a").with_attr("k", "v<&>").with_text("x & y");
    /// assert_eq!(simba_xml::parse(&e.to_xml()).unwrap(), e);
    /// ```
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation, one element per line.
    ///
    /// Text children inhibit indentation for their parent so that
    /// whitespace-sensitive content is not altered.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_open_tag(&self, out: &mut String, self_close: bool) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {}=\"{}\"", k, escape_attr(v));
        }
        out.push_str(if self_close { "/>" } else { ">" });
    }

    fn write_into(&self, out: &mut String) {
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        self.write_open_tag(out, false);
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_into(out),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        let _ = write!(out, "</{}>", self.name);
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        if self.children.is_empty() {
            self.write_open_tag(out, true);
            return;
        }
        let has_text = self.children.iter().any(|n| matches!(n, Node::Text(_)));
        self.write_open_tag(out, false);
        if has_text {
            // Mixed or text content: emit compactly to preserve whitespace.
            for child in &self.children {
                match child {
                    Node::Element(e) => e.write_into(out),
                    Node::Text(t) => out.push_str(&escape_text(t)),
                }
            }
        } else {
            for child in &self.children {
                if let Node::Element(e) = child {
                    out.push('\n');
                    e.write_pretty(out, depth + 1);
                }
            }
            out.push('\n');
            out.push_str(&indent);
        }
        let _ = write!(out, "</{}>", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("a").to_xml(), "<a/>");
    }

    #[test]
    fn attributes_and_text_serialized() {
        let e = Element::new("a").with_attr("x", "1").with_text("hi");
        assert_eq!(e.to_xml(), r#"<a x="1">hi</a>"#);
    }

    #[test]
    fn special_chars_escaped_in_text() {
        let e = Element::new("a").with_text("1 < 2 & 3 > 2");
        assert_eq!(e.to_xml(), "<a>1 &lt; 2 &amp; 3 &gt; 2</a>");
    }

    #[test]
    fn special_chars_escaped_in_attrs() {
        let e = Element::new("a").with_attr("x", "\"q\" <&> \n\t");
        let xml = e.to_xml();
        assert_eq!(parse(&xml).unwrap(), e);
        assert!(xml.contains("&quot;"));
        assert!(xml.contains("&#10;"));
    }

    #[test]
    fn round_trip_nested() {
        let e = Element::new("mode")
            .with_attr("name", "urgent & fast")
            .with_child(
                Element::new("block")
                    .with_child(Element::new("action").with_text("IM <primary>")),
            );
        assert_eq!(parse(&e.to_xml()).unwrap(), e);
    }

    #[test]
    fn pretty_output_reparses_to_normalized_equal() {
        let e = Element::new("root")
            .with_child(Element::new("a").with_text("x"))
            .with_child(Element::new("b").with_child(Element::new("c")));
        let pretty = e.to_xml_pretty();
        assert_eq!(parse(&pretty).unwrap().normalized(), e.normalized());
        assert!(pretty.contains("\n  <a>"));
    }

    #[test]
    fn pretty_preserves_text_content_exactly() {
        let e = Element::new("a").with_text("  spaced  text  ");
        let pretty = e.to_xml_pretty();
        let back = parse(&pretty).unwrap();
        // Text children inhibit indentation, so inner text survives verbatim.
        assert_eq!(back.children, e.children);
    }
}
