//! Recursive-descent parser producing [`Element`] trees.

use crate::document::{Element, Node};
use crate::error::{XmlError, XmlErrorKind};
use crate::lexer::{decode_entity, is_name_char, is_name_start, Cursor};

/// Parses an XML document and returns its root element.
///
/// Accepts an optional XML declaration and comments before/after the root.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input, unsupported constructs (DTD,
/// CDATA, processing instructions), mismatched tags, duplicate attributes,
/// unknown entities, or trailing content after the root element.
///
/// # Examples
///
/// ```
/// let root = simba_xml::parse("<?xml version=\"1.0\"?><a b='1'/>").unwrap();
/// assert_eq!(root.name, "a");
/// assert_eq!(root.attr("b"), Some("1"));
/// ```
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut cur = Cursor::new(input);
    skip_misc(&mut cur)?;
    if cur.is_eof() {
        return Err(cur.err(XmlErrorKind::MissingRoot));
    }
    let root = parse_element(&mut cur)?;
    skip_misc(&mut cur)?;
    if !cur.is_eof() {
        return Err(cur.err(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

/// Skips whitespace, comments, and the XML declaration between top-level
/// constructs.
fn skip_misc(cur: &mut Cursor<'_>) -> Result<(), XmlError> {
    loop {
        cur.skip_whitespace();
        if cur.starts_with("<?xml") {
            cur.take_until("?>")?;
            cur.eat("?>");
        } else if cur.starts_with("<!--") {
            cur.eat("<!--");
            cur.take_until("-->")?;
            cur.eat("-->");
        } else if cur.starts_with("<!") {
            return Err(cur.err(XmlErrorKind::Unsupported("DTD or CDATA section")));
        } else if cur.starts_with("<?") {
            return Err(cur.err(XmlErrorKind::Unsupported("processing instruction")));
        } else {
            return Ok(());
        }
    }
}

fn parse_name(cur: &mut Cursor<'_>) -> Result<String, XmlError> {
    match cur.peek() {
        Some(c) if is_name_start(c) => {}
        Some(c) => return Err(cur.err(XmlErrorKind::BadName(c.to_string()))),
        None => return Err(cur.err(XmlErrorKind::UnexpectedEof)),
    }
    Ok(cur.take_while(is_name_char).to_string())
}

fn parse_element(cur: &mut Cursor<'_>) -> Result<Element, XmlError> {
    cur.expect('<')?;
    let name = parse_name(cur)?;
    let mut element = Element::new(name);

    loop {
        cur.skip_whitespace();
        match cur.peek() {
            Some('>') => {
                cur.bump();
                break;
            }
            Some('/') => {
                cur.bump();
                cur.expect('>')?;
                return Ok(element); // self-closing
            }
            Some(c) if is_name_start(c) => {
                let attr_name = parse_name(cur)?;
                if element.attr(&attr_name).is_some() {
                    return Err(cur.err(XmlErrorKind::DuplicateAttribute(attr_name)));
                }
                cur.skip_whitespace();
                cur.expect('=')?;
                cur.skip_whitespace();
                let value = parse_attr_value(cur)?;
                element.attrs.push((attr_name, value));
            }
            Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(cur.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    parse_content(cur, &mut element)?;
    Ok(element)
}

fn parse_attr_value(cur: &mut Cursor<'_>) -> Result<String, XmlError> {
    let quote = match cur.peek() {
        Some(q @ ('"' | '\'')) => {
            cur.bump();
            q
        }
        Some(c) => return Err(cur.err(XmlErrorKind::UnexpectedChar(c))),
        None => return Err(cur.err(XmlErrorKind::UnexpectedEof)),
    };
    let mut value = String::new();
    loop {
        match cur.peek() {
            Some(c) if c == quote => {
                cur.bump();
                return Ok(value);
            }
            Some('&') => value.push(parse_entity(cur)?),
            Some('<') => return Err(cur.err(XmlErrorKind::UnexpectedChar('<'))),
            Some(c) => {
                cur.bump();
                value.push(c);
            }
            None => return Err(cur.err(XmlErrorKind::UnexpectedEof)),
        }
    }
}

fn parse_entity(cur: &mut Cursor<'_>) -> Result<char, XmlError> {
    let start = cur.pos();
    cur.expect('&')?;
    let body = cur.take_while(|c| c != ';' && c != '<' && c != '&' && !c.is_whitespace());
    let body = body.to_string();
    if !cur.eat(";") {
        return Err(XmlError::new(XmlErrorKind::BadEntity(body), start));
    }
    decode_entity(&body).ok_or_else(|| XmlError::new(XmlErrorKind::BadEntity(body), start))
}

/// Parses children and the closing tag of an already-opened element.
fn parse_content(cur: &mut Cursor<'_>, element: &mut Element) -> Result<(), XmlError> {
    let mut text = String::new();
    loop {
        match cur.peek() {
            Some('<') if cur.starts_with("</") => {
                flush_text(&mut text, element);
                cur.eat("</");
                let close = parse_name(cur)?;
                if close != element.name {
                    return Err(cur.err(XmlErrorKind::MismatchedClose {
                        open: element.name.clone(),
                        close,
                    }));
                }
                cur.skip_whitespace();
                cur.expect('>')?;
                return Ok(());
            }
            Some('<') if cur.starts_with("<!--") => {
                cur.eat("<!--");
                cur.take_until("-->")?;
                cur.eat("-->");
            }
            Some('<') if cur.starts_with("<!") => {
                return Err(cur.err(XmlErrorKind::Unsupported("DTD or CDATA section")));
            }
            Some('<') if cur.starts_with("<?") => {
                return Err(cur.err(XmlErrorKind::Unsupported("processing instruction")));
            }
            Some('<') => {
                flush_text(&mut text, element);
                let child = parse_element(cur)?;
                element.children.push(Node::Element(child));
            }
            Some('&') => text.push(parse_entity(cur)?),
            Some(c) => {
                cur.bump();
                text.push(c);
            }
            None => return Err(cur.err(XmlErrorKind::UnexpectedEof)),
        }
    }
}

fn flush_text(text: &mut String, element: &mut Element) {
    if !text.is_empty() {
        element.children.push(Node::Text(std::mem::take(text)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e, Element::new("a"));
    }

    #[test]
    fn element_with_text() {
        let e = parse("<a>hello</a>").unwrap();
        assert_eq!(e.text(), "hello");
    }

    #[test]
    fn nested_elements_preserve_order() {
        let e = parse("<a><b/><c/><b/></a>").unwrap();
        let names: Vec<_> = e.elements().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b", "c", "b"]);
    }

    #[test]
    fn attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some("2"));
    }

    #[test]
    fn attribute_entities_decoded() {
        let e = parse(r#"<a x="&lt;&amp;&gt;&quot;&apos;"/>"#).unwrap();
        assert_eq!(e.attr("x"), Some(r#"<&>"'"#));
    }

    #[test]
    fn text_entities_decoded() {
        let e = parse("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert_eq!(e.text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn numeric_character_references() {
        let e = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(e.text(), "AB");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
        assert!(parse("<a>&unterminated</a>").is_err());
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let e = parse("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<!-- c --><a><!-- inner -->x</a><!-- after -->").unwrap();
        assert_eq!(e.text(), "x");
    }

    #[test]
    fn mismatched_close_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn empty_and_missing_root_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   \n").is_err());
        assert!(parse("<!-- only a comment -->").is_err());
    }

    #[test]
    fn unsupported_constructs_rejected() {
        assert!(parse("<!DOCTYPE a><a/>").is_err());
        assert!(parse("<a><![CDATA[x]]></a>").is_err());
        assert!(parse("<a><?pi ?></a>").is_err());
    }

    #[test]
    fn unexpected_eof_mid_tag() {
        assert!(parse("<a").is_err());
        assert!(parse("<a attr=").is_err());
        assert!(parse("<a>text").is_err());
        assert!(parse(r#"<a attr="unclosed"#).is_err());
    }

    #[test]
    fn bad_names_rejected() {
        assert!(parse("<1a/>").is_err());
        assert!(parse("<a 1x='v'/>").is_err());
    }

    #[test]
    fn whitespace_in_tags_tolerated() {
        let e = parse("<a  x = \"1\" ></a >").unwrap();
        assert_eq!(e.attr("x"), Some("1"));
    }

    #[test]
    fn mixed_content_order_preserved() {
        let e = parse("<a>pre<b/>post</a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert!(matches!(&e.children[0], Node::Text(t) if t == "pre"));
        assert!(matches!(&e.children[1], Node::Element(el) if el.name == "b"));
        assert!(matches!(&e.children[2], Node::Text(t) if t == "post"));
    }

    #[test]
    fn paper_figure4_style_delivery_mode_parses() {
        // Shape of Figure 4: a delivery mode with two communication blocks.
        let doc = parse(
            r#"<DeliveryMode name="Urgent">
                 <Block ackTimeoutSecs="60">
                   <Action address="MSN IM"/>
                   <Action address="Cell SMS"/>
                 </Block>
                 <Block>
                   <Action address="Work email"/>
                 </Block>
               </DeliveryMode>"#,
        )
        .unwrap();
        assert_eq!(doc.attr("name"), Some("Urgent"));
        let blocks: Vec<_> = doc.children_named("Block").collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].children_named("Action").count(), 2);
        assert_eq!(blocks[0].attr("ackTimeoutSecs"), Some("60"));
        assert_eq!(
            blocks[1].child("Action").unwrap().attr("address"),
            Some("Work email")
        );
    }
}
