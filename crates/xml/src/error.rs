//! Error type for XML parsing.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an XML document.
///
/// Carries the byte offset into the input at which the problem was
/// detected, so callers can point users at the offending location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    /// Byte offset into the input where the error was detected.
    offset: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</a>` closed an element opened as `<b>`.
    MismatchedClose { open: String, close: String },
    /// An entity reference such as `&unknown;` that is not supported.
    BadEntity(String),
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// The document contained no root element.
    MissingRoot,
    /// Content found after the root element closed.
    TrailingContent,
    /// A construct outside the supported subset (DTD, CDATA, PI).
    Unsupported(&'static str),
    /// An element or attribute name was empty or contained invalid characters.
    BadName(String),
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedClose { open, close } => {
                write!(f, "closing tag </{close}> does not match <{open}>")
            }
            XmlErrorKind::BadEntity(e) => write!(f, "unsupported entity reference &{e};"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::MissingRoot => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after root element"),
            XmlErrorKind::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            XmlErrorKind::BadName(n) => write!(f, "invalid name {n:?}"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl Error for XmlError {}
