//! Low-level cursor over the input text, shared by the parser.

use crate::error::{XmlError, XmlErrorKind};

/// A byte-offset cursor over the input with XML-specific helpers.
pub(crate) struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    pub(crate) fn is_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Advances past the next char and returns it.
    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes `s` if the input starts with it.
    pub(crate) fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Consumes the exact char `c` or errors.
    pub(crate) fn expect(&mut self, c: char) -> Result<(), XmlError> {
        match self.peek() {
            Some(got) if got == c => {
                self.bump();
                Ok(())
            }
            Some(got) => Err(self.err(XmlErrorKind::UnexpectedChar(got))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    pub(crate) fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Consumes chars while `pred` holds and returns the consumed slice.
    pub(crate) fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
        &self.input[start..self.pos]
    }

    /// Consumes input up to (not including) `delim`; errors on EOF.
    pub(crate) fn take_until(&mut self, delim: &str) -> Result<&'a str, XmlError> {
        match self.rest().find(delim) {
            Some(idx) => {
                let out = &self.input[self.pos..self.pos + idx];
                self.pos += idx;
                Ok(out)
            }
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    pub(crate) fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }
}

/// Is `c` valid as the first character of an XML name (subset: no colons,
/// since namespaces are unsupported)?
pub(crate) fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Is `c` valid as a continuation character of an XML name?
pub(crate) fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Decodes an entity reference body (the text between `&` and `;`).
pub(crate) fn decode_entity(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let num = body.strip_prefix('#')?;
            let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                num.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_basics() {
        let mut c = Cursor::new("ab");
        assert_eq!(c.peek(), Some('a'));
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.bump(), Some('b'));
        assert!(c.is_eof());
        assert_eq!(c.bump(), None);
    }

    #[test]
    fn eat_and_starts_with() {
        let mut c = Cursor::new("<!--x-->");
        assert!(c.starts_with("<!--"));
        assert!(c.eat("<!--"));
        assert!(!c.eat("zz"));
        assert_eq!(c.take_until("-->").unwrap(), "x");
        assert!(c.eat("-->"));
        assert!(c.is_eof());
    }

    #[test]
    fn take_while_stops_at_predicate() {
        let mut c = Cursor::new("abc123");
        assert_eq!(c.take_while(|ch| ch.is_alphabetic()), "abc");
        assert_eq!(c.rest(), "123");
    }

    #[test]
    fn take_until_eof_errors() {
        let mut c = Cursor::new("no delimiter");
        assert!(c.take_until("-->").is_err());
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(decode_entity("lt"), Some('<'));
        assert_eq!(decode_entity("gt"), Some('>'));
        assert_eq!(decode_entity("amp"), Some('&'));
        assert_eq!(decode_entity("quot"), Some('"'));
        assert_eq!(decode_entity("apos"), Some('\''));
        assert_eq!(decode_entity("#65"), Some('A'));
        assert_eq!(decode_entity("#x41"), Some('A'));
        assert_eq!(decode_entity("#X41"), Some('A'));
        assert_eq!(decode_entity("nbsp"), None);
        assert_eq!(decode_entity("#xFFFFFF"), None);
        assert_eq!(decode_entity("#"), None);
    }

    #[test]
    fn name_char_classes() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('1'));
        assert!(!is_name_start('-'));
        assert!(is_name_char('1'));
        assert!(is_name_char('-'));
        assert!(is_name_char('.'));
        assert!(!is_name_char(':'));
    }

    #[test]
    fn utf8_multibyte_bump() {
        let mut c = Cursor::new("é<");
        assert_eq!(c.bump(), Some('é'));
        assert_eq!(c.peek(), Some('<'));
    }
}
