//! Property-based round-trip tests: `parse(write(doc)) == doc` for
//! arbitrary generated documents (DESIGN.md §6 "XML round-trip").

use proptest::prelude::*;
use simba_xml::{parse, Element, Node};

/// Generates valid XML names.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,11}"
}

/// Generates attribute values / text with plenty of characters that need
/// escaping.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            any::<char>().prop_filter("no control chars", |c| !c.is_control() || *c == '\n'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
        ],
        0..20,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..4),
        proptest::option::of(arb_text()),
    )
        .prop_filter_map("unique attrs", |(name, attrs, text)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                if e.attr(&k).is_none() {
                    e.attrs.push((k, v));
                }
            }
            if let Some(t) = text {
                if !t.is_empty() {
                    e.children.push(Node::Text(t));
                }
            }
            Some(e)
        })
        .boxed();
    if depth == 0 {
        return leaf;
    }
    (
        leaf,
        proptest::collection::vec(arb_element(depth - 1), 0..4),
    )
        .prop_map(|(mut e, kids)| {
            for k in kids {
                e.children.push(Node::Element(k));
            }
            e
        })
        .boxed()
}

/// Merge adjacent text nodes — the parser cannot distinguish `"ab"` from
/// `"a"+"b"`, so equality is up to text-node coalescing.
fn coalesce(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attrs = e.attrs.clone();
    for n in &e.children {
        match n {
            Node::Element(c) => out.children.push(Node::Element(coalesce(c))),
            Node::Text(t) => {
                if let Some(Node::Text(prev)) = out.children.last_mut() {
                    prev.push_str(t);
                } else {
                    out.children.push(Node::Text(t.clone()));
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn compact_roundtrip(e in arb_element(3)) {
        let xml = e.to_xml();
        let back = parse(&xml).expect("generated XML must parse");
        prop_assert_eq!(coalesce(&back), coalesce(&e));
    }

    #[test]
    fn pretty_roundtrip_normalized(e in arb_element(3)) {
        let xml = e.to_xml_pretty();
        let back = parse(&xml).expect("pretty XML must parse");
        prop_assert_eq!(coalesce(&back).normalized(), coalesce(&e).normalized());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn double_write_is_stable(e in arb_element(3)) {
        let once = e.to_xml();
        let twice = parse(&once).unwrap().to_xml();
        prop_assert_eq!(once, twice);
    }
}
