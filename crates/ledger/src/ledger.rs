//! The ledger state machine and its segmented group-commit journal.

use simba_core::address::CommType;
use simba_core::snapshot::crc32;
use simba_core::subscription::UserId;
use simba_core::wal::{escape, unescape};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default segment-rotation threshold (bytes of one segment file).
pub const DEFAULT_SEGMENT_MAX_BYTES: u64 = 4 * 1024 * 1024;

/// The handle shape the worker pool shares: an uncontended mutex around
/// the ledger (workers lock it briefly to lease/record, never across a
/// send).
pub type SharedLedger = Arc<Mutex<DeliveryLedger>>;

/// Identifies a ledger worker for lease ownership checks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkerId(pub String);

impl WorkerId {
    /// A worker id from anything stringy.
    pub fn new(s: impl Into<String>) -> Self {
        WorkerId(s.into())
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Where a record is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordState {
    /// Enqueued, never leased (or reclaimed after a lease expired).
    Pending,
    /// Held by a worker under a time-bounded lease.
    Leased,
    /// A send failed; eligible again once `not_before` passes.
    Retrying,
    /// Terminal success. Sent records leave memory at once; their history
    /// is compacted away at the next segment rotation.
    Sent,
    /// Terminal failure after `max_attempts`; parked in the bounded DLQ.
    DeadLettered,
}

impl RecordState {
    /// Lowercase label for journals, tables, and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RecordState::Pending => "pending",
            RecordState::Leased => "leased",
            RecordState::Retrying => "retrying",
            RecordState::Sent => "sent",
            RecordState::DeadLettered => "dead",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pending" => RecordState::Pending,
            "leased" => RecordState::Leased,
            "retrying" => RecordState::Retrying,
            "sent" => RecordState::Sent,
            "dead" => RecordState::DeadLettered,
            _ => return None,
        })
    }
}

/// A worker's time-bounded claim on a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The holding worker.
    pub worker: WorkerId,
    /// When any other worker may reclaim the record.
    pub expires_at: SimTime,
}

/// One durable queue entry: a channel attempt for one `(delivery,
/// channel)` pair of one user.
#[derive(Debug, Clone)]
pub struct LedgerRecord {
    /// Ledger-monotonic id (never reused, even across restarts).
    pub id: u64,
    /// The owning user.
    pub user: UserId,
    /// The delivery this attempt belongs to.
    pub delivery: u64,
    /// The outbound channel.
    pub channel: CommType,
    /// Channel-specific address value.
    pub address: String,
    /// The alert text to send.
    pub text: String,
    /// Stable idempotency key (`user/delivery/channel`): identical on
    /// every retry and re-lease, so channel adapters can dedupe.
    pub idempotency_key: String,
    /// Lifecycle state.
    pub state: RecordState,
    /// Lease grants so far (== send attempts started).
    pub attempts: u32,
    /// Not eligible for leasing before this time (retry backoff).
    pub not_before: SimTime,
    /// The current lease, when `state` is [`RecordState::Leased`].
    pub lease: Option<Lease>,
    /// When the record was enqueued.
    pub enqueued_at: SimTime,
    /// The most recent send error, if any.
    pub last_error: Option<String>,
}

/// What [`DeliveryLedger::lease`] hands a worker: everything needed to
/// perform the send without holding the ledger lock.
#[derive(Debug, Clone)]
pub struct LeasedWork {
    /// The leased record's id (echo it back in `record_sent`/`record_failed`).
    pub id: u64,
    /// The outbound channel.
    pub channel: CommType,
    /// Channel-specific address value.
    pub address: String,
    /// The alert text.
    pub text: String,
    /// The stable idempotency key to stamp on the outbound send.
    pub idempotency_key: String,
    /// Which attempt this is (1-based).
    pub attempt: u32,
}

/// Ledger configuration.
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// Directory holding the journal segments (`seg-NNNNNN.log`).
    /// `None` keeps the ledger in memory — the deterministic-test and
    /// benchmark shape, with identical grouping/rotation accounting but
    /// no durability.
    pub dir: Option<PathBuf>,
    /// Rotate once the active segment grows past this many bytes.
    pub segment_max_bytes: u64,
    /// How long a lease lasts before any worker may reclaim it.
    pub lease_duration: SimDuration,
    /// First-retry backoff; doubles per failed attempt.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Lease grants after which a record dead-letters.
    pub max_attempts: u32,
    /// Most dead-lettered records retained; beyond it the oldest are
    /// dropped (counted in [`LedgerStats::dlq_evicted`]).
    pub dlq_capacity: usize,
    /// Seed for the deterministic retry jitter.
    pub jitter_seed: u64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            dir: None,
            segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES,
            lease_duration: SimDuration::from_secs(30),
            base_backoff: SimDuration::from_millis(500),
            max_backoff: SimDuration::from_mins(1),
            max_attempts: 8,
            dlq_capacity: 1024,
            jitter_seed: 0x51BA_1ED6,
        }
    }
}

impl LedgerConfig {
    /// An in-memory ledger.
    pub fn in_memory() -> Self {
        LedgerConfig::default()
    }

    /// A file-backed ledger under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        LedgerConfig { dir: Some(dir.into()), ..LedgerConfig::default() }
    }
}

/// What can go wrong talking to the ledger.
#[derive(Debug)]
pub enum LedgerError {
    /// Filesystem failure on the journal.
    Io(std::io::Error),
    /// A journal line failed to parse, or a rotation checksum mismatched.
    Corrupt {
        /// 1-based line number within the offending segment.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// No live record has this id.
    UnknownRecord(u64),
    /// The reporting worker no longer holds the record's lease (it
    /// expired and another worker reclaimed it — the loser of a
    /// lease-expiry race sees this).
    StaleLease {
        /// The record whose lease moved on.
        id: u64,
        /// Who holds it now, if anyone.
        holder: Option<String>,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O error: {e}"),
            LedgerError::Corrupt { line, reason } => {
                write!(f, "ledger journal corrupt at line {line}: {reason}")
            }
            LedgerError::UnknownRecord(id) => write!(f, "no live ledger record {id}"),
            LedgerError::StaleLease { id, holder } => write!(
                f,
                "stale lease on record {id} (now held by {})",
                holder.as_deref().unwrap_or("nobody")
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

/// Running totals for one ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Fresh records enqueued (upserts to an existing live record do not
    /// count again).
    pub enqueued: u64,
    /// Lease grants (== send attempts started).
    pub leased: u64,
    /// Leases that expired and were reclaimed for another worker.
    pub lease_expired: u64,
    /// Records that reached [`RecordState::Sent`].
    pub sent: u64,
    /// Sends the channel adapter absorbed as idempotent duplicates (a
    /// subset of `sent`).
    pub deduped: u64,
    /// Failed sends scheduled for retry with backoff.
    pub retried: u64,
    /// Records that dead-lettered after `max_attempts`.
    pub dead_lettered: u64,
    /// Dead letters dropped because the DLQ was full.
    pub dlq_evicted: u64,
    /// Dead letters requeued by an operator.
    pub requeued: u64,
    /// Group commits performed (one fsync each in file mode).
    pub commit_batches: u64,
    /// Segment rotations (history compacted to live records).
    pub segments_rotated: u64,
}

/// Live record counts by state, for `simba-cli ledger ls`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerCounts {
    /// Records awaiting their first (or reclaimed) lease.
    pub pending: usize,
    /// Records currently leased to a worker.
    pub leased: usize,
    /// Records in retry backoff.
    pub retrying: usize,
    /// Records parked in the dead-letter queue.
    pub dead_lettered: usize,
}

#[derive(Debug)]
struct Backend {
    dir: PathBuf,
    seg_index: u64,
    file: File,
    seg_bytes: u64,
    /// Size of the last rotation's carried snapshot. Rotation only pays
    /// off once the segment has at least doubled past this: a live set
    /// big enough that its snapshot alone exceeds `segment_max_bytes`
    /// must not re-rotate on every commit.
    baseline_bytes: u64,
    pending: String,
}

/// The durable `alert_deliveries` queue.
///
/// Not internally synchronized; the worker pool wraps it in
/// [`SharedLedger`] and locks briefly around each operation.
#[derive(Debug)]
pub struct DeliveryLedger {
    backend: Option<Backend>,
    segment_max_bytes: u64,
    lease_duration: SimDuration,
    base_backoff: SimDuration,
    max_backoff: SimDuration,
    max_attempts: u32,
    dlq_capacity: usize,
    jitter_seed: u64,
    /// Live (non-terminal, non-DLQ) records by id.
    live: BTreeMap<u64, LedgerRecord>,
    /// Stable-key index over live records, for the one-record-per-
    /// `(delivery, channel)` upsert contract.
    by_key: HashMap<String, u64>,
    /// `(not_before, id)` over Pending/Retrying records.
    ready: BTreeSet<(SimTime, u64)>,
    /// `(expires_at, id)` over Leased records.
    leased: BTreeSet<(SimTime, u64)>,
    /// The bounded dead-letter queue, oldest first.
    dlq: VecDeque<LedgerRecord>,
    next_id: u64,
    dirty: bool,
    stats: LedgerStats,
    telemetry: Telemetry,
}

impl DeliveryLedger {
    /// Opens (or creates) the ledger described by `config`, replaying
    /// every journal segment in order. Leases found in the journal belong
    /// to workers of a previous process and are reclaimed to Pending;
    /// retry backoffs are reset (the clock base changed). A torn tail on
    /// the *last* segment — the artifact of dying mid-commit — is
    /// truncated away; nothing observable depended on it by the
    /// group-commit discipline.
    ///
    /// # Errors
    ///
    /// I/O failure, or corruption before the tail (including a rotation
    /// checksum mismatch).
    pub fn open(config: LedgerConfig) -> Result<Self, LedgerError> {
        let mut ledger = DeliveryLedger {
            backend: None,
            segment_max_bytes: config.segment_max_bytes.max(1),
            lease_duration: config.lease_duration,
            base_backoff: config.base_backoff,
            max_backoff: config.max_backoff,
            max_attempts: config.max_attempts.max(1),
            dlq_capacity: config.dlq_capacity.max(1),
            jitter_seed: config.jitter_seed,
            live: BTreeMap::new(),
            by_key: HashMap::new(),
            ready: BTreeSet::new(),
            leased: BTreeSet::new(),
            dlq: VecDeque::new(),
            next_id: 0,
            dirty: false,
            stats: LedgerStats::default(),
            telemetry: Telemetry::disabled(),
        };
        let Some(dir) = config.dir else {
            return Ok(ledger);
        };
        std::fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        segments.sort_by_key(|(idx, _)| *idx);
        let last = segments.len().checked_sub(1);
        for (pos, (_, path)) in segments.iter().enumerate() {
            ledger.replay_segment(path, Some(pos) == last)?;
        }
        // A lease in the journal was held by a worker of the process that
        // wrote it; reopening means that process is gone, so every lease
        // is reclaimable now.
        let held: Vec<u64> = ledger.live.iter().filter(|(_, r)| r.state == RecordState::Leased).map(|(id, _)| *id).collect();
        for id in held {
            if let Some(record) = ledger.live.get_mut(&id) {
                record.state = RecordState::Pending;
                record.lease = None;
                record.not_before = SimTime::ZERO;
                ledger.ready.insert((SimTime::ZERO, id));
            }
        }
        let seg_index = segments.last().map_or(0, |(idx, _)| *idx);
        let path = segment_path(&dir, seg_index);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let seg_bytes = file.metadata()?.len();
        ledger.backend = Some(Backend {
            dir,
            seg_index,
            file,
            seg_bytes,
            baseline_bytes: 0,
            pending: String::new(),
        });
        Ok(ledger)
    }

    /// Routes `ledger.*` counters to `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Bumps the named `ledger.*` counter when telemetry is enabled.
    fn counter(&self, name: &str) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter(name).incr();
        }
    }

    /// The stable idempotency key for a `(user, delivery, channel)`
    /// attempt — identical across retries, re-leases, and even a fresh
    /// enqueue after the record already concluded (so adapter-level
    /// dedupe catches host-replay double-enqueues too).
    pub fn idempotency_key(user: &UserId, delivery: u64, channel: CommType) -> String {
        format!("{}/{}/{}", user.0, delivery, channel)
    }

    /// Enqueues a channel attempt. One live record exists per `(user,
    /// delivery, channel)`: enqueueing a pair that already has a live
    /// record returns the existing id (replace/upsert semantics, like
    /// Trace's `alert_deliveries` rows). The record is *not* durable
    /// until the next [`DeliveryLedger::commit`].
    pub fn enqueue(
        &mut self,
        user: &UserId,
        delivery: u64,
        channel: CommType,
        address: &str,
        text: &str,
        now: SimTime,
    ) -> u64 {
        let key = Self::idempotency_key(user, delivery, channel);
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            let _ = writeln!(
                backend.pending,
                "E\t{id}\t{}\t{delivery}\t{channel}\t{}\t{}\t{}",
                escape(&user.0),
                now.as_millis(),
                escape(address),
                escape(text),
            );
        }
        self.live.insert(
            id,
            LedgerRecord {
                id,
                user: user.clone(),
                delivery,
                channel,
                address: address.to_string(),
                text: text.to_string(),
                idempotency_key: key.clone(),
                state: RecordState::Pending,
                attempts: 0,
                not_before: SimTime::ZERO,
                lease: None,
                enqueued_at: now,
                last_error: None,
            },
        );
        self.by_key.insert(key, id);
        self.ready.insert((SimTime::ZERO, id));
        self.dirty = true;
        self.stats.enqueued += 1;
        self.counter("ledger.enqueued");
        id
    }

    /// Grants `worker` up to `batch` time-bounded leases. Expired leases
    /// are reclaimed first (counted under `ledger.lease_expired`) — any
    /// worker resumes any lease — then ready records whose `not_before`
    /// has passed are granted in backoff order. Records that exhausted
    /// `max_attempts` while leased dead-letter instead of being granted.
    ///
    /// Lease grants buffer in the journal like any other transition; the
    /// worker pool commits before performing the sends.
    pub fn lease(&mut self, worker: &WorkerId, now: SimTime, batch: usize) -> Vec<LeasedWork> {
        // Phase 1: reclaim every expired lease.
        loop {
            match self.leased.first().copied() {
                Some((expires, id)) if expires <= now => {
                    self.leased.remove(&(expires, id));
                    self.stats.lease_expired += 1;
                    self.counter("ledger.lease_expired");
                    let Some(record) = self.live.get_mut(&id) else { continue };
                    record.lease = None;
                    if record.attempts >= self.max_attempts {
                        self.dead_letter(id, "lease expired after max attempts");
                    } else {
                        record.state = RecordState::Pending;
                        record.not_before = now;
                        self.ready.insert((now, id));
                    }
                }
                _ => break,
            }
        }
        // Phase 2: grant from the ready queue.
        let mut granted = Vec::new();
        while granted.len() < batch {
            let Some(&(not_before, id)) = self.ready.first() else { break };
            if not_before > now {
                break;
            }
            self.ready.remove(&(not_before, id));
            let expires_at = now + self.lease_duration;
            let Some(record) = self.live.get_mut(&id) else { continue };
            record.state = RecordState::Leased;
            record.attempts += 1;
            record.lease = Some(Lease { worker: worker.clone(), expires_at });
            let attempts = record.attempts;
            let work = LeasedWork {
                id,
                channel: record.channel,
                address: record.address.clone(),
                text: record.text.clone(),
                idempotency_key: record.idempotency_key.clone(),
                attempt: attempts,
            };
            if let Some(backend) = &mut self.backend {
                use std::fmt::Write as _;
                let _ = writeln!(
                    backend.pending,
                    "L\t{id}\t{}\t{}\t{attempts}",
                    escape(&worker.0),
                    expires_at.as_millis(),
                );
            }
            self.leased.insert((expires_at, id));
            self.dirty = true;
            self.stats.leased += 1;
            self.counter("ledger.leased");
            granted.push(work);
        }
        granted
    }

    /// Verifies `worker` still holds `id`'s lease. A record that is no
    /// longer live went terminal under someone else's lease — to the
    /// reporting worker that is indistinguishable from (and reported as)
    /// a stale lease with no current holder.
    fn check_lease(&self, worker: &WorkerId, id: u64) -> Result<(), LedgerError> {
        let Some(record) = self.live.get(&id) else {
            return Err(LedgerError::StaleLease { id, holder: None });
        };
        match (&record.state, &record.lease) {
            (RecordState::Leased, Some(lease)) if lease.worker == *worker => Ok(()),
            (_, lease) => Err(LedgerError::StaleLease {
                id,
                holder: lease.as_ref().map(|l| l.worker.0.clone()),
            }),
        }
    }

    /// Records a successful send: the record goes terminal and leaves
    /// memory (its history compacts away at the next rotation).
    ///
    /// # Errors
    ///
    /// [`LedgerError::StaleLease`] when `worker` lost the lease (the
    /// record was reclaimed — another worker owns the outcome now), or
    /// [`LedgerError::UnknownRecord`].
    pub fn record_sent(&mut self, worker: &WorkerId, id: u64, _now: SimTime) -> Result<(), LedgerError> {
        self.check_lease(worker, id)?;
        if let Some(record) = self.live.remove(&id) {
            if let Some(lease) = &record.lease {
                self.leased.remove(&(lease.expires_at, id));
            }
            self.by_key.remove(&record.idempotency_key);
        }
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            let _ = writeln!(backend.pending, "S\t{id}");
        }
        self.dirty = true;
        self.stats.sent += 1;
        Ok(())
    }

    /// Records that the channel adapter deduplicated the send: a prior
    /// attempt (possibly by a worker that died before reporting) already
    /// produced the visible effect, so the record is terminal-success —
    /// exactly like [`DeliveryLedger::record_sent`] but counted under
    /// `ledger.idempotent_dedup` so the at-least-once redeliveries that
    /// the idempotency keys absorbed stay observable.
    ///
    /// # Errors
    ///
    /// As in [`DeliveryLedger::record_sent`].
    pub fn record_duplicate(
        &mut self,
        worker: &WorkerId,
        id: u64,
        now: SimTime,
    ) -> Result<(), LedgerError> {
        self.record_sent(worker, id, now)?;
        self.stats.deduped += 1;
        self.counter("ledger.idempotent_dedup");
        Ok(())
    }

    /// Records a failed send: the record re-enters the queue under
    /// exponential backoff with deterministic jitter, or dead-letters
    /// once `max_attempts` lease grants are spent.
    ///
    /// # Errors
    ///
    /// [`LedgerError::StaleLease`] / [`LedgerError::UnknownRecord`] as in
    /// [`DeliveryLedger::record_sent`].
    pub fn record_failed(
        &mut self,
        worker: &WorkerId,
        id: u64,
        error: &str,
        now: SimTime,
    ) -> Result<(), LedgerError> {
        self.check_lease(worker, id)?;
        let attempts = self
            .live
            .get(&id)
            .map(|r| r.attempts)
            .ok_or(LedgerError::UnknownRecord(id))?;
        let delay = self.backoff_delay(id, attempts);
        let not_before = now + delay;
        let Some(record) = self.live.get_mut(&id) else {
            return Err(LedgerError::UnknownRecord(id));
        };
        if let Some(lease) = record.lease.take() {
            self.leased.remove(&(lease.expires_at, id));
        }
        record.last_error = Some(error.to_string());
        if attempts >= self.max_attempts {
            self.dead_letter(id, error);
            return Ok(());
        }
        let Some(record) = self.live.get_mut(&id) else {
            return Err(LedgerError::UnknownRecord(id));
        };
        record.state = RecordState::Retrying;
        record.not_before = not_before;
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            let _ = writeln!(
                backend.pending,
                "F\t{id}\t{attempts}\t{}\t{}",
                not_before.as_millis(),
                escape(error),
            );
        }
        self.ready.insert((not_before, id));
        self.dirty = true;
        self.stats.retried += 1;
        self.counter("ledger.retried");
        Ok(())
    }

    /// The deterministic backoff schedule: `base * 2^(attempts-1)`
    /// clamped to `max_backoff`, plus jitter in `[0, delay/2)` derived
    /// from `(jitter_seed, id, attempts)` — identical for identical
    /// configuration, so retry timing is reproducible under SimTime.
    pub fn backoff_delay(&self, id: u64, attempts: u32) -> SimDuration {
        let exp = attempts.saturating_sub(1).min(20);
        let base = self.base_backoff.as_millis().max(1);
        let ceiling = self.max_backoff.as_millis().max(1);
        let delay = base.saturating_mul(1u64 << exp).min(ceiling);
        let jitter = fnv_mix(self.jitter_seed, id, u64::from(attempts)) % (delay / 2).max(1);
        SimDuration::from_millis(delay + jitter)
    }

    /// Moves a live record into the bounded DLQ, evicting the oldest dead
    /// letter when full.
    fn dead_letter(&mut self, id: u64, error: &str) {
        let Some(mut record) = self.live.remove(&id) else { return };
        if let Some(lease) = record.lease.take() {
            self.leased.remove(&(lease.expires_at, id));
        }
        self.ready.remove(&(record.not_before, id));
        self.by_key.remove(&record.idempotency_key);
        record.state = RecordState::DeadLettered;
        if record.last_error.is_none() {
            record.last_error = Some(error.to_string());
        }
        if let Some(backend) = &mut self.backend {
            use std::fmt::Write as _;
            let _ = writeln!(backend.pending, "D\t{id}\t{}", escape(error));
        }
        self.dlq.push_back(record);
        while self.dlq.len() > self.dlq_capacity {
            self.dlq.pop_front();
            self.stats.dlq_evicted += 1;
        }
        self.dirty = true;
        self.stats.dead_lettered += 1;
        self.counter("ledger.dead_lettered");
    }

    /// Requeues every dead letter as Pending with a reset attempt budget
    /// (the `simba-cli ledger retry` path). Returns how many moved.
    pub fn requeue_dead_letters(&mut self, now: SimTime) -> usize {
        let moved = self.dlq.len();
        while let Some(mut record) = self.dlq.pop_front() {
            let id = record.id;
            record.state = RecordState::Pending;
            record.attempts = 0;
            record.not_before = now;
            record.lease = None;
            if let Some(backend) = &mut self.backend {
                use std::fmt::Write as _;
                let _ = writeln!(backend.pending, "Q\t{id}");
            }
            self.by_key.insert(record.idempotency_key.clone(), id);
            self.ready.insert((now, id));
            self.live.insert(id, record);
            self.dirty = true;
            self.stats.requeued += 1;
        }
        moved
    }

    /// Test/bench hook: forces every outstanding lease to be reclaimable
    /// immediately, as if its worker had silently died long ago.
    pub fn force_expire_leases(&mut self) {
        let held: Vec<(SimTime, u64)> = self.leased.iter().copied().collect();
        self.leased.clear();
        for (_, id) in held {
            if let Some(record) = self.live.get_mut(&id) {
                if let Some(lease) = &mut record.lease {
                    lease.expires_at = SimTime::ZERO;
                }
                self.leased.insert((SimTime::ZERO, id));
            }
        }
    }

    /// Makes every buffered transition durable with a single write and a
    /// single fsync, then rotates the segment if it outgrew its cap. A
    /// no-op (no fsync, no counter) when nothing is buffered.
    ///
    /// # Errors
    ///
    /// I/O failure leaves the buffered tail unwritten; the caller must
    /// treat the whole batch as non-durable.
    pub fn commit(&mut self) -> Result<(), LedgerError> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(backend) = &mut self.backend {
            backend.file.write_all(backend.pending.as_bytes())?;
            backend.file.flush()?;
            backend.file.sync_data()?;
            backend.seg_bytes += backend.pending.len() as u64;
            backend.pending.clear();
        }
        self.dirty = false;
        self.stats.commit_batches += 1;
        self.counter("ledger.commit_batch");
        if self.backend.as_ref().is_some_and(|b| {
            b.seg_bytes >= self.segment_max_bytes
                && b.seg_bytes >= b.baseline_bytes.saturating_mul(2)
        }) {
            self.rotate()?;
        }
        Ok(())
    }

    /// Rewrites the live records and the DLQ into a fresh segment guarded
    /// by a crc32 trailer, then deletes every older segment — Sent
    /// history compacts away. The fresh segment is fsynced *before* old
    /// ones are unlinked; a crash in between leaves duplicate state lines
    /// that replay idempotently.
    ///
    /// # Errors
    ///
    /// I/O failure before the old segments are removed leaves the ledger
    /// readable.
    pub fn rotate(&mut self) -> Result<(), LedgerError> {
        let Some(backend) = &mut self.backend else {
            self.stats.segments_rotated += 1;
            return Ok(());
        };
        let old_index = backend.seg_index;
        let new_index = old_index + 1;
        let path = segment_path(&backend.dir, new_index);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut carried = String::new();
        for record in self.live.values().chain(self.dlq.iter()) {
            use std::fmt::Write as _;
            let _ = writeln!(
                carried,
                "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                record.id,
                escape(&record.user.0),
                record.delivery,
                record.channel,
                record.enqueued_at.as_millis(),
                record.state.label(),
                record.attempts,
                record.not_before.as_millis(),
                escape(&record.address),
                escape(&record.text),
                escape(record.last_error.as_deref().unwrap_or_default()),
            );
        }
        {
            use std::fmt::Write as _;
            let _ = writeln!(carried, "K\t{:08x}", crc32(carried.as_bytes()));
        }
        file.write_all(carried.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        // Only after the fresh segment is durable do the old ones go.
        for (idx, old_path) in list_segments(&backend.dir)? {
            if idx < new_index {
                std::fs::remove_file(old_path)?;
            }
        }
        backend.seg_index = new_index;
        backend.seg_bytes = carried.len() as u64;
        backend.baseline_bytes = carried.len() as u64;
        backend.file = file;
        self.stats.segments_rotated += 1;
        Ok(())
    }

    /// Replays one segment. `tolerate_tail` truncates a torn final line
    /// (or an unfinished rotation prefix) instead of failing.
    fn replay_segment(&mut self, path: &Path, tolerate_tail: bool) -> Result<(), LedgerError> {
        let content = std::fs::read_to_string(path)?;
        // A rotated segment opens with `R` state lines closed by a `K`
        // checksum; verify the guard when present.
        let mut rotation_prefix = String::new();
        let mut in_prefix = true;
        let mut valid_len = 0usize;
        let mut lines = content.split_inclusive('\n').enumerate().peekable();
        while let Some((lineno, line)) = lines.next() {
            let is_last = lines.peek().is_none();
            let complete = line.ends_with('\n');
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                valid_len += line.len();
                continue;
            }
            if in_prefix {
                if trimmed.starts_with("R\t") {
                    rotation_prefix.push_str(line);
                } else if let Some(stored) = trimmed.strip_prefix("K\t") {
                    in_prefix = false;
                    if complete {
                        // The trailer covers exactly the `R` lines the
                        // rotation wrote before it.
                        let covered = std::mem::take(&mut rotation_prefix);
                        let computed = crc32(covered.as_bytes());
                        let stored_crc = u32::from_str_radix(stored, 16).unwrap_or(!computed);
                        if stored_crc != computed {
                            return Err(LedgerError::Corrupt {
                                line: lineno + 1,
                                reason: format!(
                                    "rotation checksum mismatch: stored {stored_crc:08x}, computed {computed:08x}"
                                ),
                            });
                        }
                        valid_len += line.len();
                        continue;
                    }
                } else {
                    in_prefix = false;
                }
            }
            match self.replay_line(trimmed, lineno + 1) {
                Ok(()) if complete => valid_len += line.len(),
                Ok(()) => break, // parses but unterminated: torn tail
                Err(e) if is_last && tolerate_tail => {
                    let _ = e;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if in_prefix && !rotation_prefix.is_empty() && !tolerate_tail {
            return Err(LedgerError::Corrupt {
                line: content.lines().count(),
                reason: "rotation prefix missing its checksum trailer in a non-final segment".to_string(),
            });
        }
        if valid_len < content.len() {
            if !tolerate_tail {
                return Err(LedgerError::Corrupt {
                    line: content.lines().count(),
                    reason: "torn tail in non-final segment".to_string(),
                });
            }
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        Ok(())
    }

    fn replay_line(&mut self, line: &str, lineno: usize) -> Result<(), LedgerError> {
        let corrupt = |reason: &str| LedgerError::Corrupt { line: lineno, reason: reason.to_string() };
        fn take_u64(
            fields: &mut std::str::Split<'_, char>,
            lineno: usize,
            what: &str,
        ) -> Result<u64, LedgerError> {
            fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| LedgerError::Corrupt {
                line: lineno,
                reason: format!("bad {what}"),
            })
        }
        let mut fields = line.split('\t');
        let tag = fields.next().ok_or_else(|| corrupt("empty line"))?;
        match tag {
            "E" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                let user = UserId(fields.next().map(unescape).ok_or_else(|| corrupt("missing user"))?);
                let delivery: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad delivery"))?;
                let channel = fields
                    .next()
                    .and_then(CommType::from_token)
                    .ok_or_else(|| corrupt("bad channel"))?;
                let enqueued_ms: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad enqueue timestamp"))?;
                let address = fields.next().map(unescape).ok_or_else(|| corrupt("missing address"))?;
                let text = fields.next().map(unescape).ok_or_else(|| corrupt("missing text"))?;
                self.next_id = self.next_id.max(id + 1);
                let key = Self::idempotency_key(&user, delivery, channel);
                // Duplicate ids can appear when a crash interrupted a
                // rotation; re-inserting is idempotent.
                if let std::collections::btree_map::Entry::Vacant(slot) = self.live.entry(id) {
                    slot.insert(LedgerRecord {
                        id,
                        user,
                        delivery,
                        channel,
                        address,
                        text,
                        idempotency_key: key.clone(),
                        state: RecordState::Pending,
                        attempts: 0,
                        not_before: SimTime::ZERO,
                        lease: None,
                        enqueued_at: SimTime::from_millis(enqueued_ms),
                        last_error: None,
                    });
                    self.by_key.insert(key, id);
                    self.ready.insert((SimTime::ZERO, id));
                }
                Ok(())
            }
            "L" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                let worker = fields.next().map(unescape).ok_or_else(|| corrupt("missing worker"))?;
                let expires_ms = take_u64(&mut fields, lineno, "expiry")?;
                let attempts = take_u64(&mut fields, lineno, "attempts")? as u32;
                self.next_id = self.next_id.max(id + 1);
                if let Some(record) = self.live.get_mut(&id) {
                    self.ready.remove(&(record.not_before, id));
                    record.state = RecordState::Leased;
                    record.attempts = attempts;
                    record.lease = Some(Lease {
                        worker: WorkerId(worker),
                        expires_at: SimTime::from_millis(expires_ms),
                    });
                }
                Ok(())
            }
            "S" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                self.next_id = self.next_id.max(id + 1);
                if let Some(record) = self.live.remove(&id) {
                    self.ready.remove(&(record.not_before, id));
                    self.by_key.remove(&record.idempotency_key);
                }
                Ok(())
            }
            "F" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                let attempts = take_u64(&mut fields, lineno, "attempts")? as u32;
                let _not_before = take_u64(&mut fields, lineno, "not_before")?;
                let error = fields.next().map(unescape).unwrap_or_default();
                self.next_id = self.next_id.max(id + 1);
                if let Some(record) = self.live.get_mut(&id) {
                    self.ready.remove(&(record.not_before, id));
                    record.state = RecordState::Retrying;
                    record.attempts = attempts;
                    record.lease = None;
                    // The writing process's clock base is gone; make the
                    // retry eligible immediately.
                    record.not_before = SimTime::ZERO;
                    record.last_error = Some(error);
                    self.ready.insert((SimTime::ZERO, id));
                }
                Ok(())
            }
            "D" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                let error = fields.next().map(unescape);
                self.next_id = self.next_id.max(id + 1);
                if let Some(mut record) = self.live.remove(&id) {
                    self.ready.remove(&(record.not_before, id));
                    self.by_key.remove(&record.idempotency_key);
                    record.state = RecordState::DeadLettered;
                    record.lease = None;
                    if error.is_some() {
                        record.last_error = error;
                    }
                    self.dlq.push_back(record);
                    while self.dlq.len() > self.dlq_capacity {
                        self.dlq.pop_front();
                    }
                }
                Ok(())
            }
            "Q" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                self.next_id = self.next_id.max(id + 1);
                if let Some(pos) = self.dlq.iter().position(|r| r.id == id) {
                    if let Some(mut record) = self.dlq.remove(pos) {
                        record.state = RecordState::Pending;
                        record.attempts = 0;
                        record.not_before = SimTime::ZERO;
                        record.lease = None;
                        self.by_key.insert(record.idempotency_key.clone(), id);
                        self.ready.insert((SimTime::ZERO, id));
                        self.live.insert(id, record);
                    }
                }
                Ok(())
            }
            "R" => {
                let id = take_u64(&mut fields, lineno, "id")?;
                let user = UserId(fields.next().map(unescape).ok_or_else(|| corrupt("missing user"))?);
                let delivery: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad delivery"))?;
                let channel = fields
                    .next()
                    .and_then(CommType::from_token)
                    .ok_or_else(|| corrupt("bad channel"))?;
                let enqueued_ms: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad enqueue timestamp"))?;
                let state = fields
                    .next()
                    .and_then(RecordState::parse)
                    .ok_or_else(|| corrupt("bad state"))?;
                let attempts: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad attempts"))?;
                let _not_before: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad not_before"))?;
                let address = fields.next().map(unescape).ok_or_else(|| corrupt("missing address"))?;
                let text = fields.next().map(unescape).ok_or_else(|| corrupt("missing text"))?;
                let error = fields.next().map(unescape).unwrap_or_default();
                self.next_id = self.next_id.max(id + 1);
                let key = Self::idempotency_key(&user, delivery, channel);
                // Drop any earlier image of this id (an interrupted
                // rotation leaves the old segments behind).
                if let Some(prev) = self.live.remove(&id) {
                    self.ready.remove(&(prev.not_before, id));
                    self.by_key.remove(&prev.idempotency_key);
                }
                self.dlq.retain(|r| r.id != id);
                let record = LedgerRecord {
                    id,
                    user,
                    delivery,
                    channel,
                    address,
                    text,
                    idempotency_key: key.clone(),
                    // Leases and retry clocks do not survive the writing
                    // process; both resolve to eligible-now.
                    state: match state {
                        RecordState::Leased | RecordState::Retrying => RecordState::Pending,
                        s => s,
                    },
                    attempts,
                    not_before: SimTime::ZERO,
                    lease: None,
                    enqueued_at: SimTime::from_millis(enqueued_ms),
                    last_error: (!error.is_empty()).then_some(error),
                };
                if record.state == RecordState::DeadLettered {
                    self.dlq.push_back(record);
                    while self.dlq.len() > self.dlq_capacity {
                        self.dlq.pop_front();
                    }
                } else {
                    self.by_key.insert(key, id);
                    self.ready.insert((SimTime::ZERO, id));
                    self.live.insert(id, record);
                }
                Ok(())
            }
            _ => Err(corrupt("unknown tag")),
        }
    }

    /// Whether a commit is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// No live work remains (pending, leased, or retrying); the DLQ may
    /// still hold dead letters. The worker pool drains until this holds.
    pub fn is_drained(&self) -> bool {
        self.live.is_empty() && !self.dirty
    }

    /// Live record counts by state.
    pub fn counts(&self) -> LedgerCounts {
        let mut counts = LedgerCounts { dead_lettered: self.dlq.len(), ..LedgerCounts::default() };
        for record in self.live.values() {
            match record.state {
                RecordState::Pending => counts.pending += 1,
                RecordState::Leased => counts.leased += 1,
                RecordState::Retrying => counts.retrying += 1,
                RecordState::Sent | RecordState::DeadLettered => {}
            }
        }
        counts
    }

    /// Live (non-terminal) records in id order.
    pub fn records(&self) -> impl Iterator<Item = &LedgerRecord> {
        self.live.values()
    }

    /// The dead-letter queue, oldest first.
    pub fn dead_letters(&self) -> impl Iterator<Item = &LedgerRecord> {
        self.dlq.iter()
    }

    /// Running totals.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// The active segment's index (for tests and diagnostics).
    pub fn segment_index(&self) -> u64 {
        self.backend.as_ref().map_or(0, |b| b.seg_index)
    }
}

/// FNV-1a over three words — the deterministic jitter source.
fn fnv_mix(seed: u64, id: u64, attempts: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for word in [id, attempts] {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, LedgerError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((idx, entry.path()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn user(name: &str) -> UserId {
        UserId::new(name)
    }

    fn worker(name: &str) -> WorkerId {
        WorkerId::new(name)
    }

    fn quick_config() -> LedgerConfig {
        LedgerConfig {
            lease_duration: SimDuration::from_millis(100),
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(200),
            max_attempts: 3,
            dlq_capacity: 8,
            ..LedgerConfig::in_memory()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simba-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn enqueue_lease_send_lifecycle() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        let id = ledger.enqueue(&user("alice"), 7, CommType::Im, "im:alice", "hi", t(0));
        assert_eq!(ledger.counts().pending, 1);
        let work = ledger.lease(&worker("w0"), t(1), 10);
        assert_eq!(work.len(), 1);
        assert_eq!(work[0].id, id);
        assert_eq!(work[0].attempt, 1);
        assert_eq!(work[0].idempotency_key, "alice/7/IM");
        assert_eq!(ledger.counts().leased, 1);
        // Nothing else to lease while held.
        assert!(ledger.lease(&worker("w1"), t(2), 10).is_empty());
        ledger.record_sent(&worker("w0"), id, t(3)).unwrap();
        assert!(ledger.is_drained() || ledger.is_dirty());
        ledger.commit().unwrap();
        assert!(ledger.is_drained());
        assert_eq!(ledger.stats().sent, 1);
    }

    #[test]
    fn enqueue_upserts_one_record_per_delivery_channel() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        let a = ledger.enqueue(&user("alice"), 7, CommType::Im, "im:alice", "hi", t(0));
        let b = ledger.enqueue(&user("alice"), 7, CommType::Im, "im:alice", "hi again", t(5));
        assert_eq!(a, b, "same (user, delivery, channel) upserts the live record");
        let c = ledger.enqueue(&user("alice"), 7, CommType::Email, "a@b", "hi", t(5));
        assert_ne!(a, c, "another channel is another record");
        assert_eq!(ledger.stats().enqueued, 2);
    }

    #[test]
    fn expired_lease_is_reclaimed_by_another_worker() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        let id = ledger.enqueue(&user("alice"), 1, CommType::Im, "im:alice", "x", t(0));
        let granted = ledger.lease(&worker("w0"), t(0), 10);
        assert_eq!(granted.len(), 1);
        // Before expiry nobody else gets it.
        assert!(ledger.lease(&worker("w1"), t(50), 10).is_empty());
        // After expiry (lease_duration = 100ms) w1 reclaims and re-leases.
        let reclaimed = ledger.lease(&worker("w1"), t(150), 10);
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].id, id);
        assert_eq!(reclaimed[0].attempt, 2);
        assert_eq!(reclaimed[0].idempotency_key, "alice/1/IM", "key is stable across re-lease");
        assert_eq!(ledger.stats().lease_expired, 1);
        // The loser's late report is rejected.
        assert!(matches!(
            ledger.record_sent(&worker("w0"), id, t(151)),
            Err(LedgerError::StaleLease { .. })
        ));
        // The winner's stands.
        ledger.record_sent(&worker("w1"), id, t(152)).unwrap();
        assert_eq!(ledger.stats().sent, 1);
    }

    #[test]
    fn failed_sends_back_off_then_dead_letter() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        let id = ledger.enqueue(&user("alice"), 1, CommType::Sms, "+1", "x", t(0));
        let mut now = t(0);
        // max_attempts = 3: three failures park it in the DLQ.
        for attempt in 1..=3u32 {
            let work = ledger.lease(&worker("w0"), now, 10);
            assert_eq!(work.len(), 1, "attempt {attempt} should be leasable");
            assert_eq!(work[0].attempt, attempt);
            ledger.record_failed(&worker("w0"), id, "carrier down", now).unwrap();
            // Immediately after a failure the record is in backoff.
            if attempt < 3 {
                assert!(ledger.lease(&worker("w0"), now, 10).is_empty());
                now = now + ledger.backoff_delay(id, attempt) + SimDuration::from_millis(1);
            }
        }
        assert_eq!(ledger.counts().dead_lettered, 1);
        assert_eq!(ledger.stats().retried, 2);
        assert_eq!(ledger.stats().dead_lettered, 1);
        let dead: Vec<_> = ledger.dead_letters().collect();
        assert_eq!(dead[0].id, id);
        assert_eq!(dead[0].last_error.as_deref(), Some("carrier down"));
        // Requeue resets the budget.
        assert_eq!(ledger.requeue_dead_letters(now), 1);
        assert_eq!(ledger.counts().pending, 1);
        let work = ledger.lease(&worker("w0"), now, 10);
        assert_eq!(work[0].attempt, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let a = DeliveryLedger::open(quick_config()).unwrap();
        let b = DeliveryLedger::open(quick_config()).unwrap();
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=5u32 {
            let d1 = a.backoff_delay(42, attempt);
            let d2 = b.backoff_delay(42, attempt);
            assert_eq!(d1, d2, "identical config => identical schedule");
            // Exponential base dominates the jitter (jitter < delay/2).
            if attempt <= 4 {
                assert!(d1 > prev, "attempt {attempt}: {d1:?} should exceed {prev:?}");
            }
            prev = d1;
        }
        // A different seed jitters differently somewhere in the schedule.
        let c = DeliveryLedger::open(LedgerConfig { jitter_seed: 999, ..quick_config() }).unwrap();
        let differs = (1..=5u32).any(|n| c.backoff_delay(42, n) != a.backoff_delay(42, n));
        assert!(differs, "seed must influence jitter");
    }

    #[test]
    fn dlq_bound_is_enforced() {
        let mut ledger = DeliveryLedger::open(LedgerConfig {
            max_attempts: 1,
            dlq_capacity: 3,
            ..quick_config()
        })
        .unwrap();
        for i in 0..5u64 {
            let id = ledger.enqueue(&user("u"), i, CommType::Im, "im:u", "x", t(0));
            ledger.lease(&worker("w"), t(i), 1);
            ledger.record_failed(&worker("w"), id, "no", t(i)).unwrap();
        }
        assert_eq!(ledger.counts().dead_lettered, 3, "DLQ holds at most its capacity");
        assert_eq!(ledger.stats().dead_lettered, 5);
        assert_eq!(ledger.stats().dlq_evicted, 2);
        // The *newest* dead letters are retained.
        let kept: Vec<u64> = ledger.dead_letters().map(|r| r.delivery).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn committed_records_survive_reopen_uncommitted_do_not() {
        let dir = temp_dir("durability");
        let config = LedgerConfig { dir: Some(dir.clone()), ..quick_config() };
        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        let a = ledger.enqueue(&user("alice"), 1, CommType::Im, "im:alice", "keep", t(0));
        let b = ledger.enqueue(&user("bob"), 2, CommType::Email, "b@c", "keep too", t(0));
        ledger.commit().unwrap();
        ledger.lease(&worker("w0"), t(1), 1); // leases `a`
        ledger.record_sent(&worker("w0"), a, t(2)).unwrap();
        ledger.commit().unwrap();
        // A third record is enqueued but the process dies before commit.
        ledger.enqueue(&user("carol"), 3, CommType::Sms, "+1", "lost", t(3));
        drop(ledger);

        let ledger = DeliveryLedger::open(config).unwrap();
        let live: Vec<u64> = ledger.records().map(|r| r.id).collect();
        assert_eq!(live, vec![b], "alice sent, carol uncommitted, bob replays");
        assert_eq!(ledger.records().next().unwrap().state, RecordState::Pending);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leases_and_backoffs_reset_across_reopen() {
        let dir = temp_dir("leases");
        let config = LedgerConfig { dir: Some(dir.clone()), ..quick_config() };
        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        let a = ledger.enqueue(&user("alice"), 1, CommType::Im, "im:alice", "x", t(0));
        let b = ledger.enqueue(&user("bob"), 2, CommType::Im, "im:bob", "y", t(0));
        ledger.lease(&worker("w0"), t(0), 1); // holds `a`
        ledger.lease(&worker("w1"), t(0), 1); // holds `b`
        ledger.record_failed(&worker("w1"), b, "flaky", t(1)).unwrap();
        ledger.commit().unwrap();
        drop(ledger); // w0 dies holding a's lease

        let mut ledger = DeliveryLedger::open(config).unwrap();
        // Both records lease immediately: the old process's lease and
        // backoff clocks do not survive.
        let work = ledger.lease(&worker("w9"), t(0), 10);
        let ids: Vec<u64> = work.iter().map(|w| w.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b), "got {ids:?}");
        // Attempt counts did survive.
        let b_work = work.iter().find(|w| w.id == b).unwrap();
        assert_eq!(b_work.attempt, 2);
        let b_rec = ledger.records().find(|r| r.id == b);
        assert!(b_rec.is_none() || b_rec.unwrap().state == RecordState::Leased);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dlq_and_requeue_survive_reopen() {
        let dir = temp_dir("dlq");
        let config = LedgerConfig {
            dir: Some(dir.clone()),
            max_attempts: 1,
            ..quick_config()
        };
        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        let id = ledger.enqueue(&user("alice"), 1, CommType::Im, "im:alice", "x", t(0));
        ledger.lease(&worker("w"), t(0), 1);
        ledger.record_failed(&worker("w"), id, "dead", t(0)).unwrap();
        ledger.commit().unwrap();
        drop(ledger);

        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        assert_eq!(ledger.counts().dead_lettered, 1);
        assert_eq!(ledger.requeue_dead_letters(t(0)), 1);
        ledger.commit().unwrap();
        drop(ledger);

        let ledger = DeliveryLedger::open(config).unwrap();
        assert_eq!(ledger.counts().dead_lettered, 0);
        assert_eq!(ledger.counts().pending, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_compacts_sent_history_and_is_crc_guarded() {
        let dir = temp_dir("rotate");
        let config = LedgerConfig {
            dir: Some(dir.clone()),
            segment_max_bytes: 256,
            ..quick_config()
        };
        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        // Dead-letter `bob` first: he survives every rotation inside the
        // checksummed `R` prefix while the churn below compacts away.
        let bob = ledger.enqueue(&user("bob"), 99, CommType::Email, "b@c", "keep me", t(0));
        let mut now = t(0);
        for attempt in 1..=3u32 {
            assert_eq!(ledger.lease(&worker("w"), now, 1).len(), 1);
            ledger.record_failed(&worker("w"), bob, "down", now).unwrap();
            now = now + ledger.backoff_delay(bob, attempt) + SimDuration::from_millis(1);
        }
        assert_eq!(ledger.counts().dead_lettered, 1);
        ledger.commit().unwrap();
        for i in 0..50u64 {
            let id = ledger.enqueue(&user("alice"), i, CommType::Im, "im:alice", "churn", t(i));
            ledger.lease(&worker("w"), t(i), 1);
            ledger.record_sent(&worker("w"), id, t(i)).unwrap();
            ledger.commit().unwrap();
        }
        assert!(ledger.stats().segments_rotated > 0);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "old segments deleted: {segments:?}");
        drop(ledger);
        let ledger = DeliveryLedger::open(config.clone()).unwrap();
        assert_eq!(ledger.records().count(), 0, "sent churn compacted away");
        let dead: Vec<u64> = ledger.dead_letters().map(|r| r.id).collect();
        assert_eq!(dead, vec![bob]);
        drop(ledger);
        // Flip a byte inside the rotation prefix: the checksum must trip.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        if let Some(pos) = bytes.iter().position(|&b| b == b'b') {
            bytes[pos] ^= 0x02;
            std::fs::write(&seg, &bytes).unwrap();
            // The damaged segment is the last one, so the torn-tail
            // tolerance swallows it only if the K line no longer parses;
            // a parseable-but-wrong checksum is corruption.
            match DeliveryLedger::open(config) {
                Err(LedgerError::Corrupt { reason, .. }) => {
                    assert!(reason.contains("checksum"), "{reason}")
                }
                other => panic!("expected checksum corruption, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn force_expire_makes_leases_reclaimable() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        ledger.enqueue(&user("alice"), 1, CommType::Im, "im:alice", "x", t(0));
        assert_eq!(ledger.lease(&worker("w0"), t(0), 1).len(), 1);
        assert!(ledger.lease(&worker("w1"), t(1), 1).is_empty());
        ledger.force_expire_leases();
        assert_eq!(ledger.lease(&worker("w1"), t(1), 1).len(), 1);
    }

    #[test]
    fn escaped_fields_round_trip_on_disk() {
        let dir = temp_dir("escape");
        let config = LedgerConfig { dir: Some(dir.clone()), ..quick_config() };
        let tricky = user("we\tird\nname");
        let mut ledger = DeliveryLedger::open(config.clone()).unwrap();
        ledger.enqueue(&tricky, 1, CommType::Im, "im:a\tb", "line\nbreak", t(0));
        ledger.commit().unwrap();
        drop(ledger);
        let ledger = DeliveryLedger::open(config).unwrap();
        let record = ledger.records().next().unwrap();
        assert_eq!(record.user, tricky);
        assert_eq!(record.address, "im:a\tb");
        assert_eq!(record.text, "line\nbreak");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn idle_commit_is_free() {
        let mut ledger = DeliveryLedger::open(quick_config()).unwrap();
        ledger.commit().unwrap();
        ledger.commit().unwrap();
        assert_eq!(ledger.stats().commit_batches, 0);
    }
}
