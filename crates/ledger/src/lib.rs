//! `simba-ledger` — the durable delivery ledger: a leased work queue
//! with retry, backoff, and idempotency keys.
//!
//! SIMBA's §4.2.1 dependability story ("durable before ack, recover by
//! replay") historically lived in per-shard WALs that only the owning
//! buddy could replay. The ledger generalizes it, modelled on the Trace
//! delivery service: one durable [`LedgerRecord`] per `(delivery,
//! channel)` attempt, which any worker can *lease*, send, and record an
//! outcome on. Crash-recovery becomes "any worker resumes any lease"
//! instead of "replay one buddy's WAL" — the precondition for running
//! several host processes against shared delivery state.
//!
//! # Record lifecycle
//!
//! ```text
//! Pending ──lease──▶ Leased ──sent──▶ Sent (terminal, compacted away)
//!    ▲                 │
//!    │                 ├──failed, attempts < max──▶ Retrying (backoff)
//!    │                 │                               │ not_before due
//!    │                 │                               ▼
//!    │                 │                        (leased again)
//!    │                 └──failed, attempts ≥ max──▶ DeadLettered (bounded DLQ)
//!    └────────── lease expired: any worker reclaims ──────┘
//! ```
//!
//! A failed send is transient: it resolves to `Retrying` (exponential
//! backoff with deterministic jitter) or `DeadLettered` (after
//! [`LedgerConfig::max_attempts`]). The dead-letter queue is bounded;
//! operators requeue it with `simba-cli ledger retry`.
//!
//! # Delivery guarantees
//!
//! Internal execution is **at-least-once**: a worker that dies between
//! send and outcome leaves a lease that expires and is re-leased, so the
//! external send may happen twice. Every outbound send therefore carries
//! the record's stable **idempotency key** (`user/delivery/channel` —
//! stamped at enqueue, identical across every retry and re-lease), and
//! channel adapters dedupe on it (`simba_net::dedupe::IdempotencyFilter`),
//! making the *visible* effect exactly-once.
//!
//! # Durability
//!
//! Persistence reuses the `core::shardlog` group-commit machinery's
//! discipline: appends buffer in memory and one [`DeliveryLedger::commit`]
//! makes the whole batch durable (one write + one fsync), segments rotate
//! once they outgrow their cap — live records are rewritten into a fresh
//! segment guarded by a `crc32` trailer ([`simba_core::snapshot::crc32`])
//! and history is deleted — and a torn tail on the last segment is the
//! tolerated artifact of dying mid-commit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod worker;

pub use ledger::{
    DeliveryLedger, Lease, LeasedWork, LedgerConfig, LedgerCounts, LedgerError, LedgerRecord,
    LedgerStats, RecordState, SharedLedger, WorkerId, DEFAULT_SEGMENT_MAX_BYTES,
};
pub use worker::{
    ChannelResult, LedgerChannels, LedgerClock, LedgerWorkerPool, PoolStats, WorkerPoolConfig,
};
