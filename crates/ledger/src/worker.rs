//! The ledger worker pool: N workers draining leases into channel
//! adapters, with per-worker kill switches for crash injection.
//!
//! The pool reuses the thread-per-shard runner shape from
//! `runtime::shard`: each worker is either a task on the current tokio
//! executor (`threads: false` — the deterministic shape `start_paused`
//! tests rely on) or an OS thread running its own `block_on` (`threads:
//! true` — real parallelism for benchmarks and production).
//!
//! A worker's cycle is *lease → commit → send → record → commit*: the
//! lease grants are durable before any send happens (so a crash can only
//! ever re-deliver, never lose), and outcomes group-commit after the
//! batch. A killed worker stops dead between sends — it records nothing
//! — and its leases expire for any surviving worker to resume, which is
//! exactly the crash the idempotency keys exist to absorb.

use crate::ledger::{LeasedWork, LedgerError, SharedLedger, WorkerId};
use simba_sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// How a channel adapter resolved one outbound send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelResult {
    /// The send produced its visible effect.
    Sent,
    /// The adapter had already seen this idempotency key and suppressed
    /// the duplicate — the effect exists from an earlier attempt.
    Duplicate,
    /// The send failed; the ledger schedules a retry or dead-letters.
    Failed(String),
}

/// The send interface workers drain leases into. `runtime` bridges this
/// to its `Channels` services; tests provide scripted fakes.
pub trait LedgerChannels: Send {
    /// Performs (or dedupes, or fails) one outbound send.
    fn send(&mut self, work: &LeasedWork) -> ChannelResult;
}

/// How workers read the current time. [`SimTime`] is process-relative,
/// so the pool takes the clock as a closure: benchmarks anchor it to a
/// wall-clock epoch, deterministic tests to the paused tokio clock.
pub type LedgerClock = Arc<dyn Fn() -> SimTime + Send + Sync>;

/// Worker pool configuration.
#[derive(Debug, Clone)]
pub struct WorkerPoolConfig {
    /// How many workers to spawn.
    pub workers: usize,
    /// Most leases granted per cycle.
    pub batch: usize,
    /// `true`: one OS thread per worker. `false`: tokio tasks on the
    /// current executor.
    pub threads: bool,
    /// How long an idle worker sleeps before re-polling the ledger.
    pub idle_backoff: SimDuration,
}

impl Default for WorkerPoolConfig {
    fn default() -> Self {
        WorkerPoolConfig {
            workers: 4,
            batch: 64,
            threads: false,
            idle_backoff: SimDuration::from_millis(5),
        }
    }
}

/// Aggregated outcome totals across the pool's workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Sends that produced their visible effect.
    pub sent: u64,
    /// Sends the adapter absorbed as idempotent duplicates.
    pub deduped: u64,
    /// Sends that failed (each schedules a retry or dead-letter).
    pub failed: u64,
    /// Outcome reports rejected because the lease had moved on — the
    /// losing side of a lease-expiry race.
    pub stale_reports: u64,
    /// Non-empty lease batches drained.
    pub lease_batches: u64,
    /// Commit failures (the affected leases were left to expire).
    pub io_errors: u64,
    /// Workers that died to their kill switch.
    pub killed: u64,
}

impl PoolStats {
    fn absorb(&mut self, other: PoolStats) {
        self.sent += other.sent;
        self.deduped += other.deduped;
        self.failed += other.failed;
        self.stale_reports += other.stale_reports;
        self.lease_batches += other.lease_batches;
        self.io_errors += other.io_errors;
        self.killed += other.killed;
    }
}

enum WorkerTask {
    Local(tokio::task::JoinHandle<PoolStats>),
    Thread(std::thread::JoinHandle<PoolStats>),
}

struct WorkerHandle {
    kill: Arc<AtomicBool>,
    task: WorkerTask,
}

/// A running pool of ledger workers. Construct with
/// [`LedgerWorkerPool::spawn`], inject crashes with
/// [`LedgerWorkerPool::kill`], and finish with
/// [`LedgerWorkerPool::drain`].
pub struct LedgerWorkerPool {
    stop: Arc<AtomicBool>,
    workers: Vec<WorkerHandle>,
}

impl LedgerWorkerPool {
    /// Spawns `config.workers` workers against `ledger`. `channels`
    /// supplies each worker its own adapter (its length caps the worker
    /// count); `clock` supplies the shared notion of now.
    ///
    /// # Errors
    ///
    /// Thread spawn failure (`threads: true` only).
    pub fn spawn(
        ledger: SharedLedger,
        channels: Vec<Box<dyn LedgerChannels>>,
        clock: LedgerClock,
        config: WorkerPoolConfig,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for (index, adapter) in channels.into_iter().enumerate().take(config.workers.max(1)) {
            let kill = Arc::new(AtomicBool::new(false));
            let worker = Worker {
                id: WorkerId::new(format!("worker-{index:03}")),
                ledger: Arc::clone(&ledger),
                channels: adapter,
                clock: Arc::clone(&clock),
                batch: config.batch.max(1),
                idle: Duration::from_millis(config.idle_backoff.as_millis().max(1)),
                yield_between_batches: !config.threads,
                kill: Arc::clone(&kill),
                stop: Arc::clone(&stop),
                stats: PoolStats::default(),
            };
            let task = if config.threads {
                let thread = std::thread::Builder::new()
                    .name(format!("simba-ledger-{index:03}"))
                    .spawn(move || tokio::runtime::block_on(worker.run()))?;
                WorkerTask::Thread(thread)
            } else {
                WorkerTask::Local(tokio::spawn(worker.run()))
            };
            workers.push(WorkerHandle { kill, task });
        }
        Ok(LedgerWorkerPool { stop, workers })
    }

    /// How many workers are running.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Throws worker `index`'s kill switch: it dies between sends
    /// without recording outcomes, abandoning any leases it holds.
    pub fn kill(&self, index: usize) {
        if let Some(handle) = self.workers.get(index) {
            handle.kill.store(true, Ordering::Release);
        }
    }

    /// Tells every worker to exit once the ledger drains, then joins
    /// them and returns the pooled totals. Dead letters do not block a
    /// drain; live leases held by killed workers do until they expire —
    /// the caller controls that via lease duration or
    /// `force_expire_leases`.
    pub async fn drain(self) -> PoolStats {
        self.stop.store(true, Ordering::Release);
        let mut total = PoolStats::default();
        for handle in self.workers {
            match handle.task {
                WorkerTask::Local(task) => {
                    if let Ok(stats) = task.await {
                        total.absorb(stats);
                    }
                }
                // The worker saw `stop` and is exiting; the join is a
                // formality, not a wait for work.
                WorkerTask::Thread(thread) => {
                    if let Ok(stats) = thread.join() {
                        total.absorb(stats);
                    }
                }
            }
        }
        total
    }
}

struct Worker {
    id: WorkerId,
    ledger: SharedLedger,
    channels: Box<dyn LedgerChannels>,
    clock: LedgerClock,
    batch: usize,
    idle: Duration,
    yield_between_batches: bool,
    kill: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    stats: PoolStats,
}

impl Worker {
    fn killed(&self) -> bool {
        self.kill.load(Ordering::Acquire)
    }

    async fn run(mut self) -> PoolStats {
        loop {
            if self.killed() {
                self.stats.killed = 1;
                return self.stats;
            }
            let now = (self.clock)();
            // Lease, then make the grants durable *before* sending: a
            // crash after this point re-delivers, never loses.
            let work = {
                let mut ledger = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
                let work = ledger.lease(&self.id, now, self.batch);
                // simba-analyze: allow(concurrency.blocking-under-guard): a lease is only actionable once durable — lease+commit must be atomic under the ledger lock
                if !work.is_empty() && ledger.commit().is_err() {
                    self.stats.io_errors += 1;
                    // Non-durable leases must not be acted on; they sit
                    // leased in memory until they expire and retry.
                    Vec::new()
                } else {
                    work
                }
            };
            if work.is_empty() {
                let drained = self
                    .ledger
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_drained();
                if self.stop.load(Ordering::Acquire) && drained {
                    return self.stats;
                }
                tokio::time::sleep(self.idle).await;
                continue;
            }
            self.stats.lease_batches += 1;
            let mut outcomes = Vec::with_capacity(work.len());
            for item in &work {
                // The kill switch models a crash: stop dead between
                // sends, record nothing — not even sends already
                // performed. Their leases expire, another worker
                // re-sends, and the adapter's idempotency filter keeps
                // the visible effect single.
                if self.killed() {
                    self.stats.killed = 1;
                    return self.stats;
                }
                outcomes.push((item.id, self.channels.send(item)));
            }
            let now = (self.clock)();
            {
                let mut ledger = self.ledger.lock().unwrap_or_else(PoisonError::into_inner);
                for (id, outcome) in outcomes {
                    let result = match &outcome {
                        ChannelResult::Sent => ledger.record_sent(&self.id, id, now),
                        ChannelResult::Duplicate => ledger.record_duplicate(&self.id, id, now),
                        ChannelResult::Failed(error) => {
                            ledger.record_failed(&self.id, id, error, now)
                        }
                    };
                    match result {
                        Ok(()) => match outcome {
                            ChannelResult::Sent => self.stats.sent += 1,
                            ChannelResult::Duplicate => self.stats.deduped += 1,
                            ChannelResult::Failed(_) => self.stats.failed += 1,
                        },
                        Err(LedgerError::StaleLease { .. }) => self.stats.stale_reports += 1,
                        Err(_) => self.stats.io_errors += 1,
                    }
                }
                // simba-analyze: allow(concurrency.blocking-under-guard): outcome records and their commit are one batch; releasing mid-way would let a sibling lease half-recorded work
                if ledger.commit().is_err() {
                    self.stats.io_errors += 1;
                }
            }
            if self.yield_between_batches {
                // On a shared executor a worker that always finds work
                // would otherwise starve its siblings (and the caller).
                tokio::time::sleep(Duration::from_millis(1)).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{DeliveryLedger, LedgerConfig};
    use simba_core::address::CommType;
    use simba_core::subscription::UserId;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Scripted adapter: dedupes on idempotency key like the real
    /// `simba_net` filter, optionally failing the first N sends.
    struct FakeChannels {
        effects: Arc<Mutex<HashMap<String, u32>>>,
        fail_first: Arc<Mutex<u32>>,
    }

    impl LedgerChannels for FakeChannels {
        fn send(&mut self, work: &LeasedWork) -> ChannelResult {
            let mut failures = self.fail_first.lock().unwrap_or_else(PoisonError::into_inner);
            if *failures > 0 {
                *failures -= 1;
                return ChannelResult::Failed("injected".to_string());
            }
            drop(failures);
            let mut effects = self.effects.lock().unwrap_or_else(PoisonError::into_inner);
            let count = effects.entry(work.idempotency_key.clone()).or_insert(0);
            if *count > 0 {
                ChannelResult::Duplicate
            } else {
                *count += 1;
                ChannelResult::Sent
            }
        }
    }

    type EffectCounts = Arc<Mutex<HashMap<String, u32>>>;

    fn pool_fixture(
        workers: usize,
        fail_first: u32,
    ) -> (SharedLedger, Vec<Box<dyn LedgerChannels>>, EffectCounts) {
        let config = LedgerConfig {
            lease_duration: SimDuration::from_millis(50),
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(10),
            ..LedgerConfig::in_memory()
        };
        let ledger = Arc::new(Mutex::new(
            DeliveryLedger::open(config).expect("in-memory open cannot fail"),
        ));
        let effects = Arc::new(Mutex::new(HashMap::new()));
        let failures = Arc::new(Mutex::new(fail_first));
        let channels: Vec<Box<dyn LedgerChannels>> = (0..workers)
            .map(|_| {
                Box::new(FakeChannels {
                    effects: Arc::clone(&effects),
                    fail_first: Arc::clone(&failures),
                }) as Box<dyn LedgerChannels>
            })
            .collect();
        (ledger, channels, effects)
    }

    fn paused_clock() -> LedgerClock {
        let epoch = tokio::time::Instant::now();
        Arc::new(move || {
            SimTime::from_millis(tokio::time::Instant::now().duration_since(epoch).as_millis() as u64)
        })
    }

    fn enqueue_n(ledger: &SharedLedger, n: u64) {
        let mut guard = ledger.lock().unwrap_or_else(PoisonError::into_inner);
        for i in 0..n {
            let user = UserId::new(format!("user-{i}"));
            guard.enqueue(&user, i, CommType::Im, "im:addr", "alert", SimTime::ZERO);
        }
    }

    #[tokio::test(start_paused = true)]
    async fn pool_drains_everything_exactly_once() {
        let (ledger, channels, effects) = pool_fixture(3, 0);
        enqueue_n(&ledger, 200);
        let pool = LedgerWorkerPool::spawn(
            Arc::clone(&ledger),
            channels,
            paused_clock(),
            WorkerPoolConfig { workers: 3, batch: 16, ..WorkerPoolConfig::default() },
        )
        .expect("local spawn cannot fail");
        let stats = pool.drain().await;
        assert_eq!(stats.sent + stats.deduped, 200);
        assert!(ledger.lock().unwrap_or_else(PoisonError::into_inner).is_drained());
        let effects = effects.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(effects.len(), 200);
        assert!(effects.values().all(|&c| c == 1), "every effect exactly once");
    }

    #[tokio::test(start_paused = true)]
    async fn failures_retry_until_sent() {
        let (ledger, channels, effects) = pool_fixture(2, 30);
        enqueue_n(&ledger, 50);
        let pool = LedgerWorkerPool::spawn(
            Arc::clone(&ledger),
            channels,
            paused_clock(),
            WorkerPoolConfig { workers: 2, batch: 8, ..WorkerPoolConfig::default() },
        )
        .expect("local spawn cannot fail");
        let stats = pool.drain().await;
        assert_eq!(stats.sent + stats.deduped, 50);
        assert_eq!(stats.failed, 30, "every injected failure was retried");
        let effects = effects.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(effects.values().all(|&c| c == 1));
    }

    #[tokio::test(start_paused = true)]
    async fn killed_workers_leases_are_resumed_by_survivors() {
        let (ledger, channels, effects) = pool_fixture(2, 0);
        enqueue_n(&ledger, 100);
        let pool = LedgerWorkerPool::spawn(
            Arc::clone(&ledger),
            channels,
            paused_clock(),
            WorkerPoolConfig { workers: 2, batch: 8, ..WorkerPoolConfig::default() },
        )
        .expect("local spawn cannot fail");
        // Let the pool get into flight, then kill worker 0 mid-stream.
        tokio::time::sleep(Duration::from_millis(3)).await;
        pool.kill(0);
        let stats = pool.drain().await;
        assert_eq!(stats.killed, 1);
        assert_eq!(stats.sent + stats.deduped, 100, "survivor finished the work");
        assert!(ledger.lock().unwrap_or_else(PoisonError::into_inner).is_drained());
        let effects = effects.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(effects.len(), 100);
        assert!(effects.values().all(|&c| c == 1), "kills caused no double effect");
    }
}
