//! The crash matrix: every way a worker or process can die mid-delivery,
//! and the invariant that survives each one.
//!
//! * Process crash while records are leased → reopen reclaims the leases
//!   as Pending with attempts intact (zero accepted-then-lost).
//! * Worker kill mid-batch → a surviving worker resumes the abandoned
//!   leases and the idempotency filter keeps the effect single.
//! * Lease-expiry race → two workers hold opinions about one record;
//!   exactly one outcome report wins, the loser sees `StaleLease`.
//! * Backoff schedule → fully deterministic under `SimTime` for a fixed
//!   jitter seed.
//! * DLQ bound → the queue never exceeds its capacity; overflow evicts
//!   the oldest dead letter.

use simba_core::address::CommType;
use simba_core::subscription::UserId;
use simba_ledger::{
    ChannelResult, DeliveryLedger, LedgerChannels, LedgerConfig, LedgerError, LedgerWorkerPool,
    LeasedWork, RecordState, WorkerId, WorkerPoolConfig,
};
use simba_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simba-ledger-crash-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn enqueue(ledger: &mut DeliveryLedger, user: &str, delivery: u64) -> u64 {
    ledger.enqueue(
        &UserId::new(user),
        delivery,
        CommType::Im,
        "im:addr",
        "alert",
        SimTime::ZERO,
    )
}

/// A process crash is a drop without commit of in-memory state: whatever
/// the journal holds is the truth. Records leased by the dead process
/// must come back Pending — the lease holder no longer exists — with
/// their attempt counts preserved.
#[test]
fn process_crash_during_lease_reclaims_on_reopen() {
    let dir = scratch_dir("reopen");
    let worker = WorkerId::new("doomed");
    {
        let mut ledger =
            DeliveryLedger::open(LedgerConfig::on_disk(&dir)).expect("open fresh ledger");
        enqueue(&mut ledger, "alice", 1);
        enqueue(&mut ledger, "bob", 2);
        let work = ledger.lease(&worker, SimTime::ZERO, 10);
        assert_eq!(work.len(), 2);
        ledger.commit().expect("commit leases");
        // Crash: the ledger drops here. The sends never happened, the
        // outcome reports were never written.
    }
    let ledger = DeliveryLedger::open(LedgerConfig::on_disk(&dir)).expect("reopen after crash");
    let counts = ledger.counts();
    assert_eq!(counts.pending, 2, "leases of a dead process are reclaimed");
    assert_eq!(counts.leased, 0);
    for record in ledger.records() {
        assert_eq!(record.state, RecordState::Pending);
        assert_eq!(record.attempts, 1, "the interrupted attempt still counts");
        assert!(record.lease.is_none());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Two workers, one record: A's lease expires mid-send, B re-leases and
/// delivers. Exactly one of the two outcome reports lands; the stale
/// holder is told so explicitly.
#[test]
fn lease_expiry_race_has_one_idempotent_winner() {
    let config = LedgerConfig {
        lease_duration: SimDuration::from_millis(10),
        ..LedgerConfig::in_memory()
    };
    let mut ledger = DeliveryLedger::open(config).expect("in-memory open");
    let id = enqueue(&mut ledger, "alice", 1);
    let slow = WorkerId::new("slow");
    let fast = WorkerId::new("fast");

    let granted = ledger.lease(&slow, SimTime::ZERO, 1);
    assert_eq!(granted.len(), 1);
    assert_eq!(granted[0].attempt, 1);

    // Time passes beyond the lease; the slow worker is still "sending".
    let later = SimTime::from_millis(20);
    let regranted = ledger.lease(&fast, later, 1);
    assert_eq!(regranted.len(), 1, "expired lease is reclaimed and regranted");
    assert_eq!(regranted[0].id, id);
    assert_eq!(regranted[0].attempt, 2);
    assert_eq!(
        regranted[0].idempotency_key, granted[0].idempotency_key,
        "the key is stable across re-leases — that is what makes the race safe"
    );

    // The fast worker's report wins...
    ledger.record_sent(&fast, id, later).expect("winner records");
    // ...and the slow worker, waking up, is told its lease moved on.
    match ledger.record_sent(&slow, id, later) {
        Err(LedgerError::StaleLease { id: stale, holder }) => {
            assert_eq!(stale, id);
            // The record closed Sent, so nobody holds it any more.
            assert_eq!(holder, None, "holder: {holder:?}");
        }
        other => panic!("expected StaleLease, got {other:?}"),
    }
    assert_eq!(ledger.stats().sent, 1, "one visible send despite two workers");
}

/// The reverse interleaving: the slow worker reports *first* (its send
/// did happen before the expiry), the fast re-lease then sends again and
/// the adapter dedupes it. Either way: one effect.
#[test]
fn lease_expiry_race_where_the_original_holder_wins() {
    let config = LedgerConfig {
        lease_duration: SimDuration::from_millis(10),
        ..LedgerConfig::in_memory()
    };
    let mut ledger = DeliveryLedger::open(config).expect("in-memory open");
    let id = enqueue(&mut ledger, "alice", 1);
    let slow = WorkerId::new("slow");
    let fast = WorkerId::new("fast");

    ledger.lease(&slow, SimTime::ZERO, 1);
    ledger.force_expire_leases();
    let regranted = ledger.lease(&fast, SimTime::from_millis(1), 1);
    assert_eq!(regranted.len(), 1);

    // Slow's report is now stale even though its send happened first…
    assert!(matches!(
        ledger.record_sent(&slow, id, SimTime::from_millis(2)),
        Err(LedgerError::StaleLease { .. })
    ));
    // …so fast re-sends, the adapter answers Duplicate, and the record
    // closes through the dedup path.
    ledger
        .record_duplicate(&fast, id, SimTime::from_millis(3))
        .expect("duplicate closes the record");
    assert!(ledger.is_drained() || ledger.is_dirty());
    assert_eq!(ledger.counts().pending + ledger.counts().leased, 0);
    assert_eq!(ledger.stats().deduped, 1);
}

/// Identical configuration must produce an identical retry schedule:
/// benchmarks and incident reconstructions rely on replayable timing.
#[test]
fn backoff_schedule_is_deterministic_under_sim_time() {
    let build = || {
        let config = LedgerConfig {
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(60),
            jitter_seed: 0xD15EA5E,
            ..LedgerConfig::in_memory()
        };
        DeliveryLedger::open(config).expect("in-memory open")
    };
    let (mut a, mut b) = (build(), build());
    let id_a = enqueue(&mut a, "alice", 1);
    let id_b = enqueue(&mut b, "alice", 1);
    assert_eq!(id_a, id_b);

    let schedule: Vec<SimDuration> =
        (1..=8).map(|attempt| a.backoff_delay(id_a, attempt)).collect();
    let replay: Vec<SimDuration> =
        (1..=8).map(|attempt| b.backoff_delay(id_b, attempt)).collect();
    assert_eq!(schedule, replay, "same seed, same ids, same schedule");

    // The exponential shape holds under the jitter: each delay's floor
    // doubles until the cap.
    for (i, delay) in schedule.iter().enumerate() {
        let floor = 100u64 << i.min(20);
        let floor = floor.min(60_000);
        assert!(
            delay.as_millis() >= floor && delay.as_millis() < floor + (floor / 2).max(1),
            "attempt {}: {}ms outside [{floor}, {floor} + {floor}/2)",
            i + 1,
            delay.as_millis()
        );
    }

    // A different seed shifts the jitter somewhere in the schedule.
    let mut c = {
        let config = LedgerConfig {
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(60),
            jitter_seed: 0xBADC0FFEE,
            ..LedgerConfig::in_memory()
        };
        DeliveryLedger::open(config).expect("in-memory open")
    };
    let id_c = enqueue(&mut c, "alice", 1);
    let other: Vec<SimDuration> =
        (1..=8).map(|attempt| c.backoff_delay(id_c, attempt)).collect();
    assert_ne!(schedule, other, "jitter seed feeds the schedule");
}

/// The DLQ is a bound, not a buffer: drive more records to death than it
/// can hold and the oldest dead letters are evicted, never the bound
/// broken.
#[test]
fn dlq_never_exceeds_its_bound() {
    let config = LedgerConfig {
        max_attempts: 1,
        dlq_capacity: 4,
        ..LedgerConfig::in_memory()
    };
    let mut ledger = DeliveryLedger::open(config).expect("in-memory open");
    let worker = WorkerId::new("w");
    let mut now = SimTime::ZERO;
    for i in 0..10u64 {
        enqueue(&mut ledger, &format!("user-{i}"), i);
        let work = ledger.lease(&worker, now, 1);
        assert_eq!(work.len(), 1);
        ledger
            .record_failed(&worker, work[0].id, "permanent", now)
            .expect("record failure");
        now += SimDuration::from_millis(1);
    }
    assert_eq!(ledger.counts().dead_lettered, 4, "bound enforced");
    assert_eq!(ledger.stats().dead_lettered, 10, "all ten died");
    assert_eq!(ledger.stats().dlq_evicted, 6, "overflow evicted the oldest");
    let kept: Vec<u64> = ledger.dead_letters().map(|r| r.delivery).collect();
    assert_eq!(kept, vec![6, 7, 8, 9], "newest dead letters survive");
}

/// End-to-end crash matrix on a real pool over a durable ledger: kill
/// workers mid-flight, crash the process, reopen, finish with a fresh
/// pool — zero lost, zero double-effect.
#[tokio::test(start_paused = true)]
async fn pool_crash_and_reopen_loses_nothing_and_doubles_nothing() {
    struct CountingChannels {
        effects: Arc<Mutex<HashMap<String, u32>>>,
    }
    impl LedgerChannels for CountingChannels {
        fn send(&mut self, work: &LeasedWork) -> ChannelResult {
            let mut effects = self.effects.lock().unwrap_or_else(PoisonError::into_inner);
            let count = effects.entry(work.idempotency_key.clone()).or_insert(0);
            if *count > 0 {
                ChannelResult::Duplicate
            } else {
                *count += 1;
                ChannelResult::Sent
            }
        }
    }

    let dir = scratch_dir("pool-reopen");
    let effects: Arc<Mutex<HashMap<String, u32>>> = Arc::new(Mutex::new(HashMap::new()));
    let epoch = tokio::time::Instant::now();
    let clock: simba_ledger::LedgerClock = Arc::new(move || {
        SimTime::from_millis(tokio::time::Instant::now().duration_since(epoch).as_millis() as u64)
    });
    let total = 120u64;

    let open = |dir: &PathBuf| {
        let config = LedgerConfig {
            lease_duration: SimDuration::from_millis(30),
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(10),
            ..LedgerConfig::on_disk(dir)
        };
        Arc::new(Mutex::new(DeliveryLedger::open(config).expect("open ledger")))
    };
    let adapters = |n: usize, effects: &Arc<Mutex<HashMap<String, u32>>>| {
        (0..n)
            .map(|_| {
                Box::new(CountingChannels { effects: Arc::clone(effects) })
                    as Box<dyn LedgerChannels>
            })
            .collect::<Vec<_>>()
    };

    // Round one: enqueue everything, kill both workers mid-flight.
    {
        let ledger = open(&dir);
        {
            let mut guard = ledger.lock().unwrap_or_else(PoisonError::into_inner);
            for i in 0..total {
                enqueue(&mut guard, &format!("user-{i}"), i);
            }
            guard.commit().expect("commit enqueues");
        }
        let pool = LedgerWorkerPool::spawn(
            Arc::clone(&ledger),
            adapters(2, &effects),
            Arc::clone(&clock),
            WorkerPoolConfig { workers: 2, batch: 8, ..WorkerPoolConfig::default() },
        )
        .expect("spawn pool");
        tokio::time::sleep(std::time::Duration::from_millis(4)).await;
        pool.kill(0);
        pool.kill(1);
        let stats = pool.drain().await;
        assert_eq!(stats.killed, 2, "both workers died to the switch");
        // The process "crashes": the ledger drops with leases in flight.
    }

    // Round two: a different process picks the journal up and finishes.
    {
        let ledger = open(&dir);
        let remaining = {
            let guard = ledger.lock().unwrap_or_else(PoisonError::into_inner);
            let counts = guard.counts();
            assert_eq!(counts.leased, 0, "dead-process leases reclaimed on replay");
            counts.pending + counts.retrying
        };
        assert!(remaining > 0, "the kill landed mid-flight");
        let pool = LedgerWorkerPool::spawn(
            Arc::clone(&ledger),
            adapters(2, &effects),
            Arc::clone(&clock),
            WorkerPoolConfig { workers: 2, batch: 8, ..WorkerPoolConfig::default() },
        )
        .expect("spawn second pool");
        pool.drain().await;
        assert!(
            ledger.lock().unwrap_or_else(PoisonError::into_inner).is_drained(),
            "second pool drained the survivors"
        );
    }

    let effects = effects.lock().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(effects.len() as u64, total, "zero lost");
    assert!(effects.values().all(|&c| c == 1), "zero double-effect");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
