//! Integration tests for the sharded host: hibernation lifecycle and its
//! races, corrupt-snapshot fallback, crash-replay over on-disk shard
//! logs, and the one-buddy-crashes-alone group-commit contract.

use simba_core::address::{Address, AddressBook, CommType};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::delivery::{AttemptId, SendFailure};
use simba_core::mab::DeliveryId;
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::shardlog::{ShardLog, ShardLogConfig};
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::{DeliveryStatus, IncomingAlert, MabConfig, Telemetry};
use simba_runtime::{
    ConfigFactory, HostNotice, LoopbackChannels, RuntimeNotice, SendOutcome, SharedChannels,
    ShardedHost, ShardedHostConfig,
};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::RingBufferSink;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::mpsc;

fn user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

fn factory() -> ConfigFactory {
    Arc::new(|user: &UserId| user_config(&user.0))
}

fn sensor_alert(text: &str) -> IncomingAlert {
    IncomingAlert::from_im("aladdin-gw", text, SimTime::ZERO)
}

/// A config with auto-hibernation off; tests drive it explicitly.
fn test_config(shards: usize) -> ShardedHostConfig {
    ShardedHostConfig {
        shards,
        hibernate_after: SimDuration::ZERO,
        ..ShardedHostConfig::default()
    }
}

async fn next_finished(notices: &mut mpsc::Receiver<HostNotice>) -> (UserId, DeliveryStatus) {
    loop {
        let HostNotice { user, notice } = notices.recv().await.expect("host alive");
        if let RuntimeNotice::DeliveryFinished { status, .. } = notice {
            return (user, status);
        }
    }
}

#[tokio::test(start_paused = true)]
async fn routes_and_delivers_across_shards() {
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(100)));
    let (host, mut notices) = ShardedHost::new(
        shared.clone(),
        test_config(4),
        factory(),
        Telemetry::disabled(),
    )
    .unwrap();
    let users: Vec<UserId> = (0..8).map(|i| UserId::new(format!("user{i}"))).collect();
    host.register_many(users.clone()).await;
    for user in &users {
        assert!(host.submit_im(user, sensor_alert("Sensor ON")).await);
    }
    for _ in 0..8 {
        let (_, status) = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));
    }
    let snap = host.snapshot().await;
    assert_eq!(snap.users, 8);
    assert_eq!(snap.stats.deliveries_started, 8);
    assert_eq!(snap.acked, 8);
    assert_eq!(snap.in_flight, 0);
    assert_eq!(snap.tracked, 0);
    assert_eq!(snap.unrouted, 0);
    // Only the owning user's IM address saw each alert.
    shared.with(|c| assert_eq!(c.sent().len(), 8));
    let final_snap = host.shutdown().await;
    assert_eq!(final_snap.stats.deliveries_started, 8);
    assert_eq!(final_snap.log.appends, 8);
    assert_eq!(final_snap.log.marks, 8);
    // Group commit: every append+mark was covered by some commit.
    assert!(final_snap.log.group_commits >= 1);
}

#[tokio::test(start_paused = true)]
async fn unregistered_user_is_counted_not_routed() {
    let shared = SharedChannels::new(LoopbackChannels::accept_all());
    let (host, _notices) =
        ShardedHost::new(shared, test_config(2), factory(), Telemetry::disabled()).unwrap();
    host.register(UserId::new("alice")).await;
    host.submit_im(&UserId::new("mallory"), sensor_alert("Sensor ON")).await;
    // Allow the worker to drain.
    tokio::time::sleep(Duration::from_millis(10)).await;
    let snap = host.snapshot().await;
    assert_eq!(snap.unrouted, 1);
    assert_eq!(snap.stats.received_im, 0);
}

#[tokio::test(start_paused = true)]
async fn hibernate_and_rehydrate_preserves_totals_exactly_once() {
    let sink = Arc::new(RingBufferSink::new(64));
    let telemetry = Telemetry::with_sink(sink);
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(100)));
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), test_config(1), factory(), telemetry.clone()).unwrap();
    let alice = UserId::new("alice");
    host.register(alice.clone()).await;

    host.submit_im(&alice, sensor_alert("Sensor 1 ON")).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));

    assert!(host.force_hibernate(&alice).await, "idle buddy must hibernate");
    let parked = host.snapshot().await;
    assert_eq!(parked.active, 0);
    assert_eq!(parked.hibernated, 1);
    assert_eq!(parked.hibernations, 1);
    // Folded totals keep the fleet accounting intact while parked.
    assert_eq!(parked.stats.received_im, 1);
    assert_eq!(parked.stats.deliveries_started, 1);

    // The next routed alert rehydrates and delivers exactly once.
    host.submit_im(&alice, sensor_alert("Sensor 2 ON")).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    let resumed = host.snapshot().await;
    assert_eq!(resumed.active, 1);
    assert_eq!(resumed.hibernated, 0);
    assert_eq!(resumed.rehydrations, 1);
    // No double counting: totals resumed, not re-added.
    assert_eq!(resumed.stats.received_im, 2);
    assert_eq!(resumed.stats.deliveries_started, 2);
    // Exactly one IM send per alert — nothing lost, nothing duplicated.
    shared.with(|c| assert_eq!(c.sent().len(), 2));
    let metrics = telemetry.metrics().snapshot();
    assert_eq!(metrics.counter("host.hibernated"), 1);
    assert_eq!(metrics.counter("host.rehydrated"), 1);
    host.shutdown().await;
}

#[tokio::test(start_paused = true)]
async fn hibernation_refused_while_delivery_in_flight() {
    // The race: an alert is mid-delivery when the hibernation sweep picks
    // the buddy. Hibernation must refuse (not idle), and the later routed
    // alert must still deliver exactly once.
    let shared = SharedChannels::new(LoopbackChannels::accept_all());
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), test_config(1), factory(), Telemetry::disabled()).unwrap();
    let alice = UserId::new("alice");
    host.register(alice.clone()).await;
    host.submit_im(&alice, sensor_alert("Sensor ON")).await;
    tokio::time::sleep(Duration::from_millis(10)).await;

    // In flight (accept_all: no ack yet, 60 s block window pending).
    assert!(!host.force_hibernate(&alice).await, "in-flight buddy must not hibernate");

    // The user acks; the delivery retires; now hibernation succeeds.
    host.ack(&alice, DeliveryId(0), AttemptId(0)).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    assert!(host.force_hibernate(&alice).await);

    // Rehydrate on the next alert; the stale 60 s block timer from the
    // pre-hibernation incarnation must not produce a duplicate send.
    host.submit_im(&alice, sensor_alert("Sensor 2 ON")).await;
    host.ack(&alice, DeliveryId(1), AttemptId(0)).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    tokio::time::sleep(Duration::from_secs(120)).await;
    shared.with(|c| assert_eq!(c.sent().len(), 2, "one send per alert, no stale-timer dupes"));
    let snap = host.shutdown().await;
    assert_eq!(snap.stats.deliveries_started, 2);
    assert_eq!(snap.acked, 2);
}

#[tokio::test(start_paused = true)]
async fn corrupt_snapshot_falls_back_to_fresh_buddy_and_replay() {
    let sink = Arc::new(RingBufferSink::new(64));
    let telemetry = Telemetry::with_sink(sink);
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(100)));
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), test_config(1), factory(), telemetry.clone()).unwrap();
    let alice = UserId::new("alice");
    host.register(alice.clone()).await;
    host.submit_im(&alice, sensor_alert("Sensor 1 ON")).await;
    next_finished(&mut notices).await;
    assert!(host.force_hibernate(&alice).await);
    assert!(host.corrupt_snapshot(&alice).await, "a parked snapshot must exist");

    // The damaged snapshot is rejected (CRC); a fresh buddy takes over and
    // the alert still delivers — the shard log, not the snapshot, is the
    // source of truth.
    host.submit_im(&alice, sensor_alert("Sensor 2 ON")).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    let snap = host.snapshot().await;
    assert_eq!(snap.corrupt_snapshots, 1);
    assert_eq!(snap.rehydrations, 0);
    // The parked totals stay folded, so nothing is lost fleet-wide.
    assert_eq!(snap.stats.received_im, 2);
    assert_eq!(snap.stats.deliveries_started, 2);
    assert_eq!(telemetry.metrics().snapshot().counter("host.snapshot_corrupt"), 1);
    shared.with(|c| assert_eq!(c.sent().len(), 2));
    host.shutdown().await;
}

#[tokio::test(start_paused = true)]
async fn restart_replays_committed_unmarked_records_only() {
    let dir = std::env::temp_dir().join(format!("simba-shardhost-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let carol = UserId::new("carol");
    let on_disk = |shards: usize| ShardedHostConfig {
        log_dir: Some(dir.clone()),
        ..test_config(shards)
    };

    // Session 1: a delivered (marked) alert.
    {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
        let (host, mut notices) =
            ShardedHost::new(shared, on_disk(1), factory(), Telemetry::disabled()).unwrap();
        host.register(carol.clone()).await;
        host.submit_im(&carol, sensor_alert("Sensor A ON")).await;
        next_finished(&mut notices).await;
        host.shutdown().await;
    }

    // Between sessions, simulate the two crash windows directly against
    // the shard log. One record is appended AND committed but never
    // marked (the buddy died after the ack, before routing completed);
    // a second is appended but the process dies before the group commit
    // fsyncs — that one was never acked, so losing it is correct.
    {
        let mut log =
            ShardLog::open(ShardLogConfig::on_disk(dir.join("shard-000"))).unwrap();
        assert_eq!(log.unprocessed_len(), 0, "session 1 marked its record");
        log.append(&carol, &sensor_alert("Sensor B ON"), SimTime::from_secs(1)).unwrap();
        log.commit().unwrap();
        log.append(&carol, &sensor_alert("Sensor C lost ON"), SimTime::from_secs(2)).unwrap();
        // No commit: dropped with the "process".
    }

    // Session 2: startup replay must deliver exactly the committed,
    // unmarked record — not the marked one, not the torn tail.
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), on_disk(1), factory(), Telemetry::disabled()).unwrap();
    let (user, status) = next_finished(&mut notices).await;
    assert_eq!(user, carol);
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    let snap = host.snapshot().await;
    assert_eq!(snap.stats.replayed, 1);
    assert_eq!(snap.stats.deliveries_started, 1);
    shared.with(|c| {
        assert_eq!(c.sent().len(), 1);
        assert!(c.sent()[0].2.contains("Sensor B"), "only the committed record replays");
    });
    host.shutdown().await;

    // After the replay marked it, a third session finds a clean log.
    let log = ShardLog::open(ShardLogConfig::on_disk(dir.join("shard-000"))).unwrap();
    assert_eq!(log.unprocessed_len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[tokio::test(start_paused = true)]
async fn mark_failure_crashes_one_buddy_not_the_shard() {
    // PR 2's contract under group commit: a failed processed-mark crashes
    // the affected buddy only. Its shard-mates keep delivering, and a
    // fresh incarnation of the crashed buddy replays its records.
    let sink = Arc::new(RingBufferSink::new(128));
    let telemetry = Telemetry::with_sink(sink);
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), test_config(1), factory(), telemetry.clone()).unwrap();
    let alice = UserId::new("alice");
    let bob = UserId::new("bob");
    host.register_many(vec![alice.clone(), bob.clone()]).await;

    host.inject_mark_failure(&alice).await;
    host.submit_im(&alice, sensor_alert("Sensor A ON")).await;
    host.submit_im(&bob, sensor_alert("Sensor B ON")).await;

    // Both users' deliveries finish: bob's untouched, alice's via the
    // restarted incarnation's replay.
    let mut finished = std::collections::BTreeSet::new();
    while finished.len() < 2 {
        let (user, status) = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }), "{user}: {status:?}");
        finished.insert(user);
    }
    assert!(finished.contains(&alice) && finished.contains(&bob));

    let snap = host.snapshot().await;
    assert_eq!(snap.crashes, 1, "exactly one buddy crashed");
    assert_eq!(snap.stats.replayed, 1, "the crashed buddy's record replayed");
    assert_eq!(snap.stats.received_im, 2);
    assert_eq!(telemetry.metrics().snapshot().counter("host.buddy_crashed"), 1);

    // The shard worker survived: both buddies keep delivering.
    host.submit_im(&alice, sensor_alert("Sensor A2 ON")).await;
    host.submit_im(&bob, sensor_alert("Sensor B2 ON")).await;
    for _ in 0..2 {
        let (_, status) = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));
    }
    let final_snap = host.shutdown().await;
    assert_eq!(final_snap.crashes, 1);
    assert_eq!(final_snap.stats.received_im, 4);
    // Replay may duplicate the crashed buddy's send (§4.2.1: the user-side
    // dedup absorbs it); bob's two sends stay exactly two.
    shared.with(|c| {
        let to_bob = c.sent().iter().filter(|(_, addr, _)| addr == "im:bob").count();
        assert_eq!(to_bob, 2);
    });
}

#[tokio::test(start_paused = true)]
async fn idle_sweep_hibernates_automatically() {
    let config = ShardedHostConfig {
        shards: 1,
        hibernate_after: SimDuration::from_millis(200),
        ..ShardedHostConfig::default()
    };
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
    let (host, mut notices) =
        ShardedHost::new(shared, config, factory(), Telemetry::disabled()).unwrap();
    let users: Vec<UserId> = (0..3).map(|i| UserId::new(format!("user{i}"))).collect();
    host.register_many(users.clone()).await;
    for user in &users {
        host.submit_im(user, sensor_alert("Sensor ON")).await;
    }
    for _ in 0..3 {
        next_finished(&mut notices).await;
    }
    // Past the idle threshold, the sweep parks all three.
    tokio::time::sleep(Duration::from_secs(2)).await;
    let snap = host.snapshot().await;
    assert_eq!(snap.active, 0, "idle buddies must hibernate: {snap:?}");
    assert_eq!(snap.hibernated, 3);
    assert_eq!(snap.hibernations, 3);
    assert_eq!(snap.stats.deliveries_started, 3);

    // Traffic brings one back.
    host.submit_im(&users[0], sensor_alert("Sensor again ON")).await;
    next_finished(&mut notices).await;
    let snap = host.snapshot().await;
    assert_eq!(snap.active, 1);
    assert_eq!(snap.hibernated, 2);
    assert_eq!(snap.rehydrations, 1);
    host.shutdown().await;
}

#[tokio::test(start_paused = true)]
async fn im_failure_falls_back_to_email_under_sharding() {
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
    let (host, mut notices) =
        ShardedHost::new(shared.clone(), test_config(1), factory(), Telemetry::disabled()).unwrap();
    let alice = UserId::new("alice");
    host.register(alice.clone()).await;
    shared.with(|c| c.script("im:alice", SendOutcome::Failed(SendFailure::RecipientUnreachable)));
    host.submit_im(&alice, sensor_alert("Sensor ON")).await;
    let (_, status) = next_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 1, .. }));
    let snap = host.shutdown().await;
    assert_eq!(snap.unconfirmed, 1);
}

#[tokio::test(start_paused = true)]
async fn rules_digest_storm_collapses_inside_the_shard_worker() {
    use simba_rules::{DigestConfig, RuleEngine, RuleSpec, RulesConfig, SharedRuleEngine};

    let engine: SharedRuleEngine =
        Arc::new(RuleEngine::open(RulesConfig::in_memory()).unwrap());
    engine
        .upsert(
            "alice",
            None,
            RuleSpec::digest(
                "storm",
                "source == \"aladdin-gw\"",
                DigestConfig { window_ms: 5_000, max_count: 0, max_exemplars: 3, key: None },
            ),
        )
        .unwrap();
    let config = ShardedHostConfig { rules: Some(engine.clone()), ..test_config(2) };
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
    let (host, mut notices) =
        ShardedHost::new(shared, config, factory(), Telemetry::disabled()).unwrap();
    host.register_many(vec![UserId::new("alice"), UserId::new("bob")]).await;

    // A 50-alert flap for alice plus one ordinary alert for bob.
    for round in 0..50 {
        assert!(host.submit_im(&UserId::new("alice"), sensor_alert(&format!("Sensor {round} ON"))).await);
    }
    assert!(host.submit_im(&UserId::new("bob"), sensor_alert("Sensor ON")).await);

    // Bob's delivery finishes while alice's storm stays absorbed.
    let (user, status) = next_finished(&mut notices).await;
    assert_eq!(user, UserId::new("bob"));
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    assert_eq!(engine.pending_digests(), 1);
    assert_eq!(host.pump_digests().await, 0, "window not due yet");

    // Past the window, the pump dispatches exactly one digest.
    tokio::time::sleep(Duration::from_secs(6)).await;
    assert_eq!(host.pump_digests().await, 1);
    assert_eq!(engine.pending_digests(), 0);
    let (user, status) = next_finished(&mut notices).await;
    assert_eq!(user, UserId::new("alice"));
    assert!(matches!(status, DeliveryStatus::Acked { .. }));

    let snap = host.shutdown().await;
    // Two user deliveries plus one digest — never fifty-one.
    assert_eq!(snap.stats.deliveries_started, 2);
    assert_eq!(snap.unrouted, 0);
}

#[tokio::test(start_paused = true)]
async fn rules_never_absorb_unregistered_users() {
    use simba_rules::{RuleEngine, RuleSpec, RulesConfig, SharedRuleEngine};

    let engine: SharedRuleEngine =
        Arc::new(RuleEngine::open(RulesConfig::in_memory()).unwrap());
    engine
        .upsert("mallory", None, RuleSpec::suppress("mute", "source == \"aladdin-gw\""))
        .unwrap();
    let config = ShardedHostConfig { rules: Some(engine.clone()), ..test_config(2) };
    let shared = SharedChannels::new(LoopbackChannels::accept_all());
    let (host, _notices) =
        ShardedHost::new(shared, config, factory(), Telemetry::disabled()).unwrap();
    host.register(UserId::new("alice")).await;
    // Mallory has a suppress rule but no registration: still unrouted.
    host.submit_im(&UserId::new("mallory"), sensor_alert("Sensor ON")).await;
    tokio::time::sleep(Duration::from_millis(10)).await;
    let snap = host.snapshot().await;
    assert_eq!(snap.unrouted, 1);
    assert_eq!(snap.stats.received_im, 0);
    host.shutdown().await;
}
