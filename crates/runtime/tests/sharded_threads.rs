//! Multi-thread stress test for the sharded host: ≥4 shards on real OS
//! threads under real interleavings (not the deterministic paused shim),
//! with crashes injected and hibernation forced mid-traffic. Asserts the
//! per-buddy crash contract and the zero-accepted-then-lost ledger that
//! `sharded_host.rs` pins single-threaded.
//!
//! Seeded: which users crash, which hibernate, and the alert order are
//! all drawn from a fixed-seed LCG, so reruns explore the same injected
//! fault plan against fresh thread interleavings.

use simba_core::address::{Address, AddressBook, CommType};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::{IncomingAlert, MabConfig, Telemetry};
use simba_runtime::{
    ConfigFactory, LoopbackChannels, SharedChannels, ShardedHost, ShardedHostConfig,
};
use simba_sim::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 42;
const USERS: usize = 48;
const WAVES: usize = 6;
const CRASH_INJECTIONS: usize = 5;

/// Deterministic fault-plan randomness (the interleavings stay real).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

fn factory() -> ConfigFactory {
    Arc::new(|user: &UserId| user_config(&user.0))
}

fn sensor_alert(text: &str) -> IncomingAlert {
    IncomingAlert::from_im("aladdin-gw", text, SimTime::ZERO)
}

#[test]
fn threaded_shards_keep_the_ledger_under_crashes_and_hibernation() {
    const { assert!(WAVES >= 2 && USERS >= 8) };
    let config = ShardedHostConfig {
        shards: 4,
        threads: true,
        // Short idle threshold so the sweep parks buddies between waves
        // and later waves rehydrate them mid-run.
        hibernate_after: SimDuration::from_millis(30),
        ..ShardedHostConfig::default()
    };
    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(1)));
    let total = tokio::runtime::block_on(async move {
        let (host, _notices) =
            ShardedHost::new(shared, config, factory(), Telemetry::disabled()).unwrap();
        let users: Vec<UserId> = (0..USERS).map(|i| UserId::new(format!("user{i:03}"))).collect();
        host.register_many(users.clone()).await;

        let mut rng = Lcg(SEED);
        let mut crashed: Vec<UserId> = Vec::new();
        let mut submitted = 0u64;
        for wave in 0..WAVES {
            // Mid-traffic fault injection: at the second wave, pick the
            // crash victims; their next processed-mark fails, which must
            // crash exactly that buddy and replay its record.
            if wave == 1 {
                while crashed.len() < CRASH_INJECTIONS {
                    let victim = users[rng.pick(USERS)].clone();
                    if !crashed.contains(&victim) {
                        host.inject_mark_failure(&victim).await;
                        crashed.push(victim);
                    }
                }
            }
            // Shuffled submission order, seeded.
            let mut order: Vec<usize> = (0..USERS).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.pick(i + 1));
            }
            for index in order {
                let user = &users[index];
                assert!(
                    host.submit_im(user, sensor_alert(&format!("Sensor w{wave} ON"))).await,
                    "accepted submissions must reach a live shard"
                );
                submitted += 1;
            }
            // Force a few hibernation attempts mid-traffic: busy buddies
            // must refuse, idle ones park and rehydrate on the next wave.
            for _ in 0..4 {
                let user = &users[rng.pick(USERS)];
                let _ = host.force_hibernate(user).await;
            }
            tokio::time::sleep(Duration::from_millis(60)).await;
        }

        // Drain: real threads, so poll until every delivery retired.
        let mut snap = host.snapshot().await;
        let mut tries = 0;
        while (snap.in_flight > 0 || snap.tracked > 0 || snap.stats.received_im < submitted)
            && tries < 400
        {
            tokio::time::sleep(Duration::from_millis(10)).await;
            snap = host.snapshot().await;
            tries += 1;
        }
        let final_snap = host.shutdown().await;

        // Per-buddy crash contract: every injected mark failure crashed
        // exactly one buddy (never the shard), and each crashed buddy's
        // record replayed on a fresh incarnation.
        assert_eq!(final_snap.crashes, CRASH_INJECTIONS as u64, "{final_snap:?}");
        assert_eq!(final_snap.stats.replayed, CRASH_INJECTIONS as u64, "{final_snap:?}");
        assert_eq!(final_snap.users, USERS);

        // Zero accepted-then-lost: every accepted alert was processed
        // (received), appended durably, and processed-marked — a crash
        // delays a mark (replay re-marks it), it never loses one.
        assert_eq!(final_snap.stats.received_im, submitted, "{final_snap:?}");
        assert_eq!(final_snap.log.appends, submitted, "{final_snap:?}");
        assert_eq!(final_snap.log.marks, submitted, "{final_snap:?}");
        assert_eq!(final_snap.unrouted, 0);
        assert_eq!(final_snap.in_flight, 0);

        // Every alert's delivery retired acknowledged; a crashed-mid-
        // flight delivery may retire in both incarnations (the user-side
        // dedup absorbs the duplicate send), never zero.
        assert!(
            final_snap.acked >= submitted
                && final_snap.acked <= submitted + CRASH_INJECTIONS as u64,
            "acked {} outside [{submitted}, {}]",
            final_snap.acked,
            submitted + CRASH_INJECTIONS as u64
        );

        // Hibernation really happened mid-traffic and traffic came back.
        assert!(final_snap.hibernations >= 1, "{final_snap:?}");
        assert!(final_snap.rehydrations >= 1, "{final_snap:?}");
        submitted
    });
    assert_eq!(total, (USERS * WAVES) as u64);
}
