//! Satellite 4 + the tentpole's end-to-end acceptance: presence facts
//! published into the soft-state store change a delivery's block order,
//! and once the facts expire the buddy reverts to static-profile routing
//! — with every alert delivered exactly once either way.

use simba_core::address::{Address, AddressBook, CommType};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::{IncomingAlert, MabConfig};
use simba_runtime::{
    HostConfig, HostNotice, LoopbackChannels, MabHost, RuntimeNotice, SharedChannels,
};
use simba_sim::{SimDuration, SimTime};
use simba_store::{SoftStateStore, StoreConfig, PRESENCE_SCOPE};
use simba_telemetry::{RingBufferSink, Telemetry};
use std::sync::Arc;
use std::time::Duration;

fn alice_config() -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new("alice");
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, "im:alice")).expect("unique");
    book.add(Address::new("EM", CommType::Email, "alice@mail")).expect("unique");
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").expect("subscribed");
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

async fn wait_finished(notices: &mut tokio::sync::mpsc::Receiver<HostNotice>) {
    loop {
        let HostNotice { notice, .. } = notices.recv().await.expect("notice stream alive");
        if matches!(notice, RuntimeNotice::DeliveryFinished { .. }) {
            return;
        }
    }
}

/// The flagship scenario: with a live `presence/alice = away` fact the
/// IM block is skipped (first and only send goes to email); after the
/// fact's TTL has elapsed the next delivery runs the static IM-first
/// profile again. Each alert is sent exactly once.
#[tokio::test(start_paused = true)]
async fn presence_fact_reorders_blocks_then_expiry_restores_static_profile() {
    let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(512)));
    let channels = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(200)));
    let store = SoftStateStore::new(StoreConfig::default(), telemetry.clone());

    let (host, mut notices) = MabHost::new(channels.clone(), HostConfig::default());
    let mut host = host
        .with_telemetry(telemetry.clone())
        .with_store(store.clone(), SimDuration::from_secs(1));
    host.add_user(UserId::new("alice"), alice_config()).expect("alice added");

    // WISH reports alice away from her desk, valid for five seconds.
    store.put(
        PRESENCE_SCOPE,
        "alice",
        "away",
        SimDuration::from_secs(5),
        "wish",
        host.clock().now(),
    );

    // Delivery 1 starts while the fact is live: the IM block is skipped,
    // the alert goes straight (and only) to email.
    let alert1 = IncomingAlert::from_im("aladdin-gw", "Sensor A ON", SimTime::ZERO);
    assert!(host.submit_im(&UserId::new("alice"), alert1).await);
    wait_finished(&mut notices).await;
    channels.with(|c| {
        let sent = c.sent().to_vec();
        assert_eq!(sent.len(), 1, "exactly one send for alert 1: {sent:?}");
        assert_eq!(sent[0].0, CommType::Email, "away presence skips the IM block");
        assert_eq!(sent[0].1, "alice@mail");
    });

    // Let the fact decay: past its 5 s TTL the sweeper (period 1 s) or a
    // lazy read drops it, and routing must revert to the static profile.
    tokio::time::sleep(Duration::from_secs(6)).await;
    assert!(
        store.get(PRESENCE_SCOPE, "alice", host.clock().now()).is_none(),
        "presence fact expired"
    );

    // Delivery 2 runs IM-first again; the loopback ack completes block 1,
    // so email never fires.
    let alert2 = IncomingAlert::from_im("aladdin-gw", "Sensor B ON", SimTime::ZERO);
    assert!(host.submit_im(&UserId::new("alice"), alert2).await);
    wait_finished(&mut notices).await;
    channels.with(|c| {
        let sent = c.sent().to_vec();
        assert_eq!(sent.len(), 2, "exactly one more send for alert 2: {sent:?}");
        assert_eq!(sent[1].0, CommType::Im, "static profile restored after expiry");
        assert_eq!(sent[1].1, "im:alice");
        // Exactly-once: each alert body appears in exactly one send.
        assert_eq!(sent.iter().filter(|(_, _, text)| text.contains("Sensor A")).count(), 1);
        assert_eq!(sent.iter().filter(|(_, _, text)| text.contains("Sensor B")).count(), 1);
    });

    let stats = host.shutdown().await;
    assert_eq!(stats.len(), 1);
    let alice = &stats[0].1;
    assert_eq!(alice.deliveries_started, 2, "no alert lost, none double-started");
    assert_eq!(alice.mode_overridden, 1, "only delivery 1 was presence-adjusted");

    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("mab.mode_overridden"), 1);
    assert!(snap.counter("store.puts") >= 1);
    assert!(snap.counter("store.hits") >= 1);
    assert!(
        snap.counter("store.expired") >= 1,
        "the sweeper or a lazy read counted the expiry"
    );
}

/// A fact that expires *mid-delivery* does not disturb the in-flight
/// delivery (its mode was fixed at start) and the next delivery falls
/// back cleanly — nothing is lost or double-sent.
#[tokio::test(start_paused = true)]
async fn fact_expiring_mid_delivery_does_not_lose_or_duplicate() {
    use simba_core::mode::Block;

    // Urgent = IM (acked) → SMS (acked, 30 s) → email.
    let mut config = alice_config();
    let profile = config.registry.user_mut(&UserId::new("alice")).expect("alice profile");
    profile
        .address_book
        .add(Address::new("SMS", CommType::Sms, "sms:alice"))
        .expect("unique");
    profile.define_mode(
        DeliveryMode::new(
            "Urgent",
            vec![
                Block::acked(vec!["IM".into()], SimDuration::from_secs(60)),
                Block::acked(vec!["SMS".into()], SimDuration::from_secs(30)),
                Block::fire_and_forget(vec!["EM".into()]),
            ],
        )
        .expect("static mode"),
    );

    let channels = SharedChannels::new(LoopbackChannels::accept_all());
    let store = SoftStateStore::new(StoreConfig::default(), Telemetry::disabled());
    let (host, mut notices) = MabHost::new(channels.clone(), HostConfig::default());
    let mut host = host.with_store(store.clone(), SimDuration::from_secs(1));
    host.add_user(UserId::new("alice"), config).expect("alice added");

    // Away presence skips the IM block; the adjusted mode starts with the
    // acked SMS block whose 30 s window far outlives the fact's 2 s TTL.
    store.put(
        PRESENCE_SCOPE,
        "alice",
        "away",
        SimDuration::from_secs(2),
        "wish",
        host.clock().now(),
    );
    let alert = IncomingAlert::from_im("aladdin-gw", "Sensor A ON", SimTime::ZERO);
    assert!(host.submit_im(&UserId::new("alice"), alert).await);

    // accept_all never acks: SMS fires at once, the fact expires mid-wait
    // (the sweeper runs every second), the 30 s timer lapses, and email
    // concludes the delivery — the in-flight mode is unaffected by the
    // expiry, no block re-fires, and IM never fires at all.
    wait_finished(&mut notices).await;
    assert!(
        store.get(PRESENCE_SCOPE, "alice", host.clock().now()).is_none(),
        "fact expired during the delivery"
    );
    channels.with(|c| {
        let sent = c.sent().to_vec();
        assert_eq!(sent.len(), 2, "one send per adjusted block: {sent:?}");
        assert_eq!(sent[0].0, CommType::Sms, "away presence skipped IM, SMS led");
        assert_eq!(sent[1].0, CommType::Email, "email fired as the backup block");
        assert!(sent.iter().all(|(ty, _, _)| *ty != CommType::Im));
    });

    let stats = host.shutdown().await;
    assert_eq!(stats[0].1.deliveries_started, 1);
    assert_eq!(stats[0].1.mode_overridden, 1);
}
