//! End-to-end ledger-routed delivery: a `MabHost` whose services enqueue
//! channel attempts into the durable ledger instead of sending inline,
//! a worker pool draining the leases through the idempotency bridge into
//! the loopback channels, and the acceptance invariant — every alert's
//! visible effect happens exactly once — checked at the channel.

use simba_core::address::{Address, AddressBook, CommType};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::mode::{Block, DeliveryMode};
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::{IncomingAlert, MabConfig};
use simba_ledger::{
    DeliveryLedger, LedgerChannels, LedgerClock, LedgerConfig, LedgerWorkerPool, WorkerPoolConfig,
};
use simba_runtime::{
    shared_filter, HostConfig, HostNotice, LedgerChannelBridge, LoopbackChannels, MabHost,
    RuntimeNotice, SharedChannels,
};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{RingBufferSink, Telemetry};
use std::sync::{Arc, Mutex, PoisonError};

fn user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).expect("unique");
    profile.address_book = book;
    profile.define_mode(
        DeliveryMode::new("Urgent", vec![Block::fire_and_forget(vec!["IM".into()])])
            .expect("valid mode"),
    );
    registry.subscribe("Home", user, "Urgent").expect("subscribed");
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

async fn wait_finished(notices: &mut tokio::sync::mpsc::Receiver<HostNotice>, n: usize) {
    let mut finished = 0;
    while finished < n {
        let HostNotice { notice, .. } = notices.recv().await.expect("notice stream alive");
        if matches!(notice, RuntimeNotice::DeliveryFinished { .. }) {
            finished += 1;
        }
    }
}

/// Host accepts alerts by committing them to the ledger; the pool owns
/// the sends. Kill one worker mid-flight: the survivor resumes its
/// leases and the channel still sees each alert exactly once.
#[tokio::test(start_paused = true)]
async fn ledger_routed_host_delivers_exactly_once_despite_a_worker_kill() {
    let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(512)));
    let channels = SharedChannels::new(LoopbackChannels::accept_all());
    let ledger = Arc::new(Mutex::new(
        DeliveryLedger::open(LedgerConfig {
            lease_duration: SimDuration::from_millis(40),
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(10),
            ..LedgerConfig::in_memory()
        })
        .expect("in-memory open")
        .with_telemetry(telemetry.clone()),
    ));

    let (host, mut notices) = MabHost::new(channels.clone(), HostConfig::default());
    let mut host = host.with_telemetry(telemetry.clone()).with_ledger(Arc::clone(&ledger));
    let users = 8usize;
    for i in 0..users {
        let name = format!("user-{i}");
        host.add_user(UserId::new(&name), user_config(&name)).expect("user added");
    }

    // The pool: two workers, each bridging into the same loopback
    // channels behind one shared idempotency filter.
    let filter = shared_filter(1024);
    let adapters: Vec<Box<dyn LedgerChannels>> = (0..2)
        .map(|_| {
            Box::new(LedgerChannelBridge::with_filter(channels.clone(), Arc::clone(&filter)))
                as Box<dyn LedgerChannels>
        })
        .collect();
    let epoch = tokio::time::Instant::now();
    let clock: LedgerClock = Arc::new(move || {
        SimTime::from_millis(tokio::time::Instant::now().duration_since(epoch).as_millis() as u64)
    });
    let pool = LedgerWorkerPool::spawn(
        Arc::clone(&ledger),
        adapters,
        clock,
        WorkerPoolConfig { workers: 2, batch: 4, ..WorkerPoolConfig::default() },
    )
    .expect("local spawn cannot fail");

    // Submit one alert per user. The host reports DeliveryFinished as
    // soon as the attempt is durably owned by the ledger — acceptance
    // is a commit, not a send.
    for i in 0..users {
        let alert =
            IncomingAlert::from_im("aladdin-gw", format!("Sensor {i} ON"), SimTime::ZERO);
        assert!(host.submit_im(&UserId::new(format!("user-{i}")), alert).await);
    }
    wait_finished(&mut notices, users).await;

    // Crash one of the two workers mid-drain; the survivor picks up the
    // expired leases.
    pool.kill(0);
    let stats = pool.drain().await;
    assert_eq!(stats.sent + stats.deduped, users as u64, "every attempt closed");
    assert!(
        ledger.lock().unwrap_or_else(PoisonError::into_inner).is_drained(),
        "ledger fully drained"
    );

    channels.with(|c| {
        let sent = c.sent().to_vec();
        assert_eq!(sent.len(), users, "exactly one visible send per alert: {sent:?}");
        for i in 0..users {
            assert_eq!(
                sent.iter()
                    .filter(|(ct, addr, _)| *ct == CommType::Im && addr == &format!("im:user-{i}"))
                    .count(),
                1,
                "user-{i} saw the alert exactly once"
            );
        }
    });

    host.shutdown().await;
    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("ledger.enqueued"), users as u64);
    assert_eq!(snap.counter("ledger.commit_batch") > 0, true);
    assert_eq!(
        snap.counter("ledger.leased") >= users as u64,
        true,
        "every record leased at least once"
    );
}
