//! Bridges ledger workers onto the runtime's channel adapters.
//!
//! The ledger worker pool speaks [`LedgerChannels`]; the runtime's
//! services speak [`Channels`]. The bridge adapts one to the other and
//! installs the exactly-once half of the ledger's contract: every
//! outbound send passes its stable idempotency key through a bounded
//! [`IdempotencyFilter`] *before* reaching the channel, so the
//! at-least-once redeliveries that crashes and lease expiries produce
//! never become double-visible sends.
//!
//! The filter sits in front of the channel (not behind it) deliberately:
//! a redelivery exists precisely because the ledger does not know whether
//! the first send happened, and the only component that can know is the
//! adapter that performed it.

use crate::channels::{Channels, SendOutcome};
use simba_ledger::{ChannelResult, LeasedWork, LedgerChannels};
use simba_net::dedupe::IdempotencyFilter;
use std::sync::{Arc, Mutex, PoisonError};

/// Default idempotency window. Keys stop arriving once their record goes
/// terminal, so this bounds the *redelivery* window, not total volume.
pub const DEFAULT_DEDUPE_CAPACITY: usize = 64 * 1024;

/// A [`LedgerChannels`] adapter over any [`Channels`] implementation,
/// deduplicating on idempotency keys.
///
/// The filter is shared: clone the bridge (or build several from one
/// [`SharedFilter`]) so every worker in a pool consults the same seen-set
/// — worker A's send must suppress worker B's redelivery.
#[derive(Debug)]
pub struct LedgerChannelBridge<C> {
    channels: C,
    filter: SharedFilter,
}

/// The filter handle shared across a pool's bridges.
pub type SharedFilter = Arc<Mutex<IdempotencyFilter>>;

/// A fresh shared filter remembering up to `capacity` keys.
pub fn shared_filter(capacity: usize) -> SharedFilter {
    Arc::new(Mutex::new(IdempotencyFilter::new(capacity)))
}

impl<C: Channels> LedgerChannelBridge<C> {
    /// Bridges `channels` behind its own filter of
    /// [`DEFAULT_DEDUPE_CAPACITY`] keys.
    pub fn new(channels: C) -> Self {
        LedgerChannelBridge { channels, filter: shared_filter(DEFAULT_DEDUPE_CAPACITY) }
    }

    /// Bridges `channels` behind an existing shared filter — the pool
    /// shape, one filter across N workers' bridges.
    pub fn with_filter(channels: C, filter: SharedFilter) -> Self {
        LedgerChannelBridge { channels, filter }
    }

    /// The shared filter (e.g. to hand to further bridges).
    pub fn filter(&self) -> SharedFilter {
        Arc::clone(&self.filter)
    }
}

impl<C: Channels> LedgerChannels for LedgerChannelBridge<C> {
    fn send(&mut self, work: &LeasedWork) -> ChannelResult {
        let fresh = self
            .filter
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .first_seen(&work.idempotency_key);
        if !fresh {
            return ChannelResult::Duplicate;
        }
        match self.channels.send(work.channel, &work.address, &work.text) {
            // The ledger owns no ack lifecycle; an accepted-with-ack send
            // is simply accepted from its point of view.
            SendOutcome::Accepted | SendOutcome::AcceptedWithAck(_) => ChannelResult::Sent,
            SendOutcome::Failed(failure) => ChannelResult::Failed(failure.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::LoopbackChannels;
    use simba_core::address::CommType;

    fn work(key: &str) -> LeasedWork {
        LeasedWork {
            id: 1,
            channel: CommType::Im,
            address: "im:alice".to_string(),
            text: "alert".to_string(),
            idempotency_key: key.to_string(),
            attempt: 1,
        }
    }

    #[test]
    fn duplicate_keys_never_reach_the_channel() {
        let filter = shared_filter(16);
        let mut a = LedgerChannelBridge::with_filter(LoopbackChannels::accept_all(), Arc::clone(&filter));
        let mut b = LedgerChannelBridge::with_filter(LoopbackChannels::accept_all(), filter);
        assert_eq!(a.send(&work("alice/1/IM")), ChannelResult::Sent);
        // The redelivery lands on a *different* worker's bridge and is
        // still suppressed: the filter is shared.
        assert_eq!(b.send(&work("alice/1/IM")), ChannelResult::Duplicate);
        assert_eq!(a.send(&work("alice/2/IM")), ChannelResult::Sent);
    }
}
