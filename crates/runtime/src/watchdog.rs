//! A live watchdog task: the MDC role over a running [`MabService`].
//!
//! Periodically probes the service with AreYouWorking(); counts misses.
//! Unlike the simulated MDC (which owns restart policy), the live watchdog
//! reports — restarting a tokio task graph is the supervisor's choice, so
//! the function returns when the service stops responding.

use crate::service::MabHandle;
use simba_core::Telemetry;
use simba_telemetry::Event;
use std::time::Duration;
use tokio::time::timeout;

/// What the watchdog observed over its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogReport {
    /// Probes answered in time.
    pub healthy_probes: u64,
    /// Probes that timed out or failed before the service died.
    pub missed_probes: u64,
}

/// Probes `handle` every `interval` with the given `reply_timeout`.
/// Returns once `max_consecutive_misses` probes in a row fail (service
/// hung or gone).
pub async fn run_watchdog(
    handle: MabHandle,
    interval: Duration,
    reply_timeout: Duration,
    max_consecutive_misses: u32,
) -> WatchdogReport {
    run_watchdog_observed(
        handle,
        interval,
        reply_timeout,
        max_consecutive_misses,
        Telemetry::disabled(),
    )
    .await
}

/// Like [`run_watchdog`], but recording every probe through `telemetry`:
/// a `watchdog.probe` event per probe, probe round-trip latency into the
/// `watchdog.probe_latency_ms` histogram, and a `watchdog.service_down`
/// event when the miss limit is reached.
pub async fn run_watchdog_observed(
    handle: MabHandle,
    interval: Duration,
    reply_timeout: Duration,
    max_consecutive_misses: u32,
    telemetry: Telemetry,
) -> WatchdogReport {
    let mut report = WatchdogReport::default();
    let mut consecutive = 0u32;
    let epoch = tokio::time::Instant::now();
    let mut ticker = tokio::time::interval(interval);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    // The first tick fires immediately; skip it so probes start after one
    // interval, like the simulated MDC.
    ticker.tick().await;
    loop {
        ticker.tick().await;
        let asked_at = tokio::time::Instant::now();
        let alive = matches!(
            timeout(reply_timeout, handle.are_you_working()).await,
            Ok(true)
        );
        if telemetry.enabled() {
            let now = tokio::time::Instant::now();
            let latency_ms = now.duration_since(asked_at).as_millis() as u64;
            telemetry.metrics().counter("watchdog.probes").incr();
            if !alive {
                telemetry.metrics().counter("watchdog.missed_probes").incr();
            }
            telemetry
                .metrics()
                .histogram("watchdog.probe_latency_ms")
                .observe_ms(latency_ms);
            telemetry.emit(
                Event::new("watchdog.probe", now.duration_since(epoch).as_millis() as u64)
                    .with("alive", alive)
                    .with("latency_ms", latency_ms),
            );
        }
        if alive {
            report.healthy_probes += 1;
            consecutive = 0;
        } else {
            report.missed_probes += 1;
            consecutive += 1;
            if consecutive >= max_consecutive_misses {
                if telemetry.enabled() {
                    telemetry.emit(
                        Event::new(
                            "watchdog.service_down",
                            tokio::time::Instant::now().duration_since(epoch).as_millis() as u64,
                        )
                        .with("missed", report.missed_probes),
                    );
                }
                return report;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::LoopbackChannels;
    use crate::service::MabService;
    use simba_core::MabConfig;

    #[tokio::test(start_paused = true)]
    async fn watchdog_sees_healthy_service_then_detects_shutdown() {
        let (service, handle, _notices) =
            MabService::new(MabConfig::default(), LoopbackChannels::accept_all());
        let join = tokio::spawn(service.run());

        let watchdog = tokio::spawn(run_watchdog(
            handle.clone(),
            Duration::from_secs(180),
            Duration::from_secs(30),
            2,
        ));

        // Let a few healthy probes happen, then kill the service.
        tokio::time::sleep(Duration::from_secs(700)).await;
        join.abort();
        let _ = join.await;

        let report = watchdog.await.unwrap();
        assert!(report.healthy_probes >= 3, "healthy {report:?}");
        assert_eq!(report.missed_probes, 2);
    }

    #[tokio::test(start_paused = true)]
    async fn observed_watchdog_records_probe_latency_and_shutdown() {
        use simba_telemetry::{RingBufferSink, Telemetry};
        use std::sync::Arc;

        let (service, handle, _notices) =
            MabService::new(MabConfig::default(), LoopbackChannels::accept_all());
        let join = tokio::spawn(service.run());

        let sink = Arc::new(RingBufferSink::new(64));
        let telemetry = Telemetry::with_sink(sink.clone());
        let watchdog = tokio::spawn(run_watchdog_observed(
            handle.clone(),
            Duration::from_secs(180),
            Duration::from_secs(30),
            2,
            telemetry.clone(),
        ));

        tokio::time::sleep(Duration::from_secs(700)).await;
        join.abort();
        let _ = join.await;
        let report = watchdog.await.unwrap();

        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("watchdog.probes"), report.healthy_probes + report.missed_probes);
        assert_eq!(snap.counter("watchdog.missed_probes"), report.missed_probes);
        assert_eq!(
            snap.histogram("watchdog.probe_latency_ms").unwrap().count,
            report.healthy_probes + report.missed_probes
        );
        let events = sink.events();
        assert!(events.iter().any(|e| e.name == "watchdog.probe"));
        assert_eq!(events.last().unwrap().name, "watchdog.service_down");
    }
}
