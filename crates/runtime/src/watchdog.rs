//! A live watchdog task: the MDC role over a running [`MabService`].
//!
//! Periodically probes the service with AreYouWorking(); counts misses.
//! Unlike the simulated MDC (which owns restart policy), the live watchdog
//! reports — restarting a tokio task graph is the supervisor's choice, so
//! the function returns when the service stops responding.

use crate::service::MabHandle;
use std::time::Duration;
use tokio::time::timeout;

/// What the watchdog observed over its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogReport {
    /// Probes answered in time.
    pub healthy_probes: u64,
    /// Probes that timed out or failed before the service died.
    pub missed_probes: u64,
}

/// Probes `handle` every `interval` with the given `reply_timeout`.
/// Returns once `max_consecutive_misses` probes in a row fail (service
/// hung or gone).
pub async fn run_watchdog(
    handle: MabHandle,
    interval: Duration,
    reply_timeout: Duration,
    max_consecutive_misses: u32,
) -> WatchdogReport {
    let mut report = WatchdogReport::default();
    let mut consecutive = 0u32;
    let mut ticker = tokio::time::interval(interval);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    // The first tick fires immediately; skip it so probes start after one
    // interval, like the simulated MDC.
    ticker.tick().await;
    loop {
        ticker.tick().await;
        let alive = matches!(
            timeout(reply_timeout, handle.are_you_working()).await,
            Ok(true)
        );
        if alive {
            report.healthy_probes += 1;
            consecutive = 0;
        } else {
            report.missed_probes += 1;
            consecutive += 1;
            if consecutive >= max_consecutive_misses {
                return report;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::LoopbackChannels;
    use crate::service::MabService;
    use simba_core::MabConfig;

    #[tokio::test(start_paused = true)]
    async fn watchdog_sees_healthy_service_then_detects_shutdown() {
        let (service, handle, _notices) =
            MabService::new(MabConfig::default(), LoopbackChannels::accept_all());
        let join = tokio::spawn(service.run());

        let watchdog = tokio::spawn(run_watchdog(
            handle.clone(),
            Duration::from_secs(180),
            Duration::from_secs(30),
            2,
        ));

        // Let a few healthy probes happen, then kill the service.
        tokio::time::sleep(Duration::from_secs(700)).await;
        join.abort();
        let _ = join.await;

        let report = watchdog.await.unwrap();
        assert!(report.healthy_probes >= 3, "healthy {report:?}");
        assert_eq!(report.missed_probes, 2);
    }
}
