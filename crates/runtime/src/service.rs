//! The live MyAlertBuddy service task.

use crate::channels::{Channels, SendOutcome};
use crate::clock::RuntimeClock;
use simba_core::alert::IncomingAlert;
use simba_core::delivery::{AttemptId, DeliveryCommand, DeliveryEvent, DeliveryStatus};
use simba_core::mab::{DeliveryId, MabCommand, MabEvent, MabStats, MyAlertBuddy};
use simba_core::rejuvenate::RejuvenationTrigger;
use simba_core::wal::{InMemoryWal, WriteAheadLog};
use simba_core::{MabConfig, Telemetry};
use simba_telemetry::Event;
use std::time::Duration;
use tokio::sync::mpsc;

/// Something the service reports to its observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeNotice {
    /// The buddy acknowledged an incoming IM alert back to `source`.
    AckSent {
        /// The acknowledged source.
        source: String,
    },
    /// A delivery reached a terminal state.
    DeliveryFinished {
        /// Which delivery.
        delivery: DeliveryId,
        /// Its terminal status.
        status: DeliveryStatus,
    },
    /// The buddy requested rejuvenation; the service loop exits after this.
    Rejuvenating(
        /// Why.
        RejuvenationTrigger,
    ),
}

#[derive(Debug)]
enum Inbound {
    ImAlert(IncomingAlert),
    EmailAlert(IncomingAlert),
    Ack {
        delivery: DeliveryId,
        attempt: AttemptId,
    },
    Timer {
        delivery: DeliveryId,
        timer: simba_core::delivery::TimerId,
    },
    AreYouWorking(tokio::sync::oneshot::Sender<bool>),
}

/// A cloneable handle for feeding the service.
#[derive(Debug, Clone)]
pub struct MabHandle {
    tx: mpsc::Sender<Inbound>,
}

impl MabHandle {
    /// Submits an alert that arrived over IM (will be acked).
    pub async fn submit_im_alert(&self, alert: IncomingAlert) {
        let _ = self.tx.send(Inbound::ImAlert(alert)).await;
    }

    /// Submits an alert that arrived over email.
    pub async fn submit_email_alert(&self, alert: IncomingAlert) {
        let _ = self.tx.send(Inbound::EmailAlert(alert)).await;
    }

    /// Reports a user acknowledgement for a delivery attempt (e.g. the
    /// user clicked the IM toast).
    pub async fn ack(&self, delivery: DeliveryId, attempt: AttemptId) {
        let _ = self.tx.send(Inbound::Ack { delivery, attempt }).await;
    }

    /// The watchdog probe: resolves `true` when the service loop is alive
    /// and processing. Resolves `false` if the service is gone.
    pub async fn are_you_working(&self) -> bool {
        let (reply_tx, reply_rx) = tokio::sync::oneshot::channel();
        if self
            .tx
            .send(Inbound::AreYouWorking(reply_tx))
            .await
            .is_err()
        {
            return false;
        }
        reply_rx.await.unwrap_or(false)
    }
}

/// The live service wrapping a [`MyAlertBuddy`].
#[derive(Debug)]
pub struct MabService<C, W = InMemoryWal> {
    mab: MyAlertBuddy<W>,
    channels: C,
    clock: RuntimeClock,
    rx: mpsc::Receiver<Inbound>,
    self_tx: mpsc::Sender<Inbound>,
    notices: mpsc::UnboundedSender<RuntimeNotice>,
    /// attempt → delivery, for routing acks.
    attempt_owner: std::collections::HashMap<AttemptId, DeliveryId>,
    telemetry: Telemetry,
}

impl<C: Channels> MabService<C, InMemoryWal> {
    /// Builds the service over a fresh in-memory log; returns it plus the
    /// submit handle and the notice stream.
    pub fn new(
        config: MabConfig,
        channels: C,
    ) -> (Self, MabHandle, mpsc::UnboundedReceiver<RuntimeNotice>) {
        MabService::with_wal(config, channels, InMemoryWal::new())
    }
}

impl<C: Channels, W: WriteAheadLog + Send + 'static> MabService<C, W> {
    /// Builds the service over an existing (possibly non-empty) log —
    /// e.g. a [`simba_core::wal::FileWal`] for a durable daemon. The
    /// restart protocol runs on the first loop turn: unprocessed records
    /// are replayed before new alerts are accepted.
    pub fn with_wal(
        config: MabConfig,
        channels: C,
        wal: W,
    ) -> (Self, MabHandle, mpsc::UnboundedReceiver<RuntimeNotice>) {
        let clock = RuntimeClock::start();
        let (tx, rx) = mpsc::channel(256);
        let (notice_tx, notice_rx) = mpsc::unbounded_channel();
        let mab = MyAlertBuddy::new(config, wal, clock.now());
        let service = MabService {
            mab,
            channels,
            clock,
            rx,
            self_tx: tx.clone(),
            notices: notice_tx,
            attempt_owner: std::collections::HashMap::new(),
            telemetry: Telemetry::disabled(),
        };
        (service, MabHandle { tx }, notice_rx)
    }

    /// Routes `runtime.*` events and metrics to `telemetry`, and threads
    /// the same handle into the wrapped [`MyAlertBuddy`] so the core
    /// pipeline (`mab.*`, `wal.*`, `delivery.*`) shares the sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.mab.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Runs until all handles are dropped or a rejuvenation triggers.
    /// Returns the final stats.
    pub async fn run(mut self) -> MabStats {
        // The §4.2.1 restart protocol: replay unprocessed log records
        // before accepting new alerts.
        let now = self.clock.now();
        let recovery = self.mab.recover(now);
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("runtime.recoveries").incr();
            self.telemetry.emit(
                Event::new("runtime.recovered", now.as_millis())
                    .with("replayed", self.mab.stats().replayed),
            );
        }
        if self.execute(recovery).await {
            return self.mab.stats();
        }
        while let Some(inbound) = self.rx.recv().await {
            let now = self.clock.now();
            let mut finished_check = None;
            let commands = match inbound {
                Inbound::ImAlert(alert) => self.mab.handle(MabEvent::AlertByIm(alert), now),
                Inbound::EmailAlert(alert) => self.mab.handle(MabEvent::AlertByEmail(alert), now),
                Inbound::Ack { delivery, attempt } => {
                    finished_check = Some(delivery);
                    self.mab.handle(
                        MabEvent::Delivery {
                            id: delivery,
                            event: DeliveryEvent::Acked { attempt },
                        },
                        now,
                    )
                }
                Inbound::Timer { delivery, timer } => {
                    finished_check = Some(delivery);
                    self.mab.handle(
                        MabEvent::Delivery {
                            id: delivery,
                            event: DeliveryEvent::TimerFired { timer },
                        },
                        now,
                    )
                }
                Inbound::AreYouWorking(reply) => {
                    let _ = reply.send(self.mab.are_you_working());
                    continue;
                }
            };
            if self.execute(commands).await {
                break; // rejuvenating
            }
            if let Some(delivery) = finished_check {
                self.notify_if_finished(delivery);
            }
        }
        self.mab.stats()
    }

    /// Executes MAB commands; returns `true` when the loop should exit.
    async fn execute(&mut self, commands: Vec<MabCommand>) -> bool {
        let mut queue = commands;
        while !queue.is_empty() {
            let mut follow_ups = Vec::new();
            for command in queue {
                match command {
                    MabCommand::AckIm { to, .. } => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.acks_sent").incr();
                        }
                        let _ = self.notices.send(RuntimeNotice::AckSent { source: to });
                    }
                    MabCommand::Rejuvenate(trigger) => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.rejuvenations").incr();
                            self.telemetry.emit(
                                Event::new("runtime.rejuvenating", self.clock.now().as_millis())
                                    .with("trigger", trigger.to_string()),
                            );
                        }
                        let _ = self.notices.send(RuntimeNotice::Rejuvenating(trigger));
                        return true;
                    }
                    MabCommand::Channel {
                        delivery,
                        command,
                        ..
                    } => match command {
                        DeliveryCommand::Send {
                            attempt,
                            comm_type,
                            address_value,
                            text,
                            ..
                        } => {
                            self.attempt_owner.insert(attempt, delivery);
                            let outcome = self.channels.send(comm_type, &address_value, &text);
                            if self.telemetry.enabled() {
                                self.telemetry.metrics().counter("runtime.sends").incr();
                                self.telemetry.emit(
                                    Event::new("runtime.send", self.clock.now().as_millis())
                                        .with("channel", comm_type.to_string())
                                        .with(
                                            "accepted",
                                            !matches!(outcome, SendOutcome::Failed(_)),
                                        ),
                                );
                            }
                            let event = match outcome {
                                SendOutcome::Accepted => DeliveryEvent::SendAccepted { attempt },
                                SendOutcome::AcceptedWithAck(after) => {
                                    self.spawn_ack(delivery, attempt, after);
                                    DeliveryEvent::SendAccepted { attempt }
                                }
                                SendOutcome::Failed(failure) => {
                                    DeliveryEvent::SendFailed { attempt, failure }
                                }
                            };
                            let now = self.clock.now();
                            follow_ups.extend(self.mab.handle(
                                MabEvent::Delivery { id: delivery, event },
                                now,
                            ));
                            self.notify_if_finished(delivery);
                        }
                        DeliveryCommand::StartTimer { timer, after } => {
                            let tx = self.self_tx.clone();
                            tokio::spawn(async move {
                                tokio::time::sleep(Duration::from_millis(after.as_millis())).await;
                                let _ = tx.send(Inbound::Timer { delivery, timer }).await;
                            });
                        }
                    },
                }
            }
            queue = follow_ups;
        }
        false
    }

    fn spawn_ack(&self, delivery: DeliveryId, attempt: AttemptId, after: Duration) {
        let tx = self.self_tx.clone();
        tokio::spawn(async move {
            tokio::time::sleep(after).await;
            let _ = tx.send(Inbound::Ack { delivery, attempt }).await;
        });
    }

    fn notify_if_finished(&self, delivery: DeliveryId) {
        if let Some(status) = self.mab.delivery_status(delivery) {
            if status.is_terminal() {
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("runtime.deliveries_finished").incr();
                    self.telemetry.emit(
                        Event::new("runtime.delivery_finished", self.clock.now().as_millis())
                            .with("delivery", delivery.0)
                            .with("status", status_name(status)),
                    );
                }
                let _ = self
                    .notices
                    .send(RuntimeNotice::DeliveryFinished { delivery, status });
            }
        }
    }
}

/// Short stable name for a delivery status in telemetry events.
fn status_name(status: DeliveryStatus) -> &'static str {
    match status {
        DeliveryStatus::InProgress => "in_progress",
        DeliveryStatus::Acked { .. } => "acked",
        DeliveryStatus::Unconfirmed { .. } => "unconfirmed",
        DeliveryStatus::Exhausted { .. } => "exhausted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_core::address::{Address, AddressBook, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::delivery::SendFailure;
    use simba_core::mode::DeliveryMode;
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::{SubscriptionRegistry, UserId};
    use simba_sim::{SimDuration, SimTime};

    fn config() -> MabConfig {
        let mut classifier = Classifier::new();
        classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
        classifier.map_keyword("Sensor", "Home");
        let mut registry = SubscriptionRegistry::new();
        let alice = UserId::new("alice");
        let profile = registry.register_user(alice.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
        book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "IM",
            "EM",
            SimDuration::from_secs(60),
        ));
        registry.subscribe("Home", alice, "Urgent").unwrap();
        MabConfig {
            classifier,
            registry,
            rejuvenation: RejuvenationPolicy::default(),
        }
    }

    fn sensor_alert() -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO)
    }

    async fn next_finished(
        notices: &mut mpsc::UnboundedReceiver<RuntimeNotice>,
    ) -> DeliveryStatus {
        loop {
            match notices.recv().await.expect("service alive") {
                RuntimeNotice::DeliveryFinished { status, .. } => return status,
                _ => continue,
            }
        }
    }

    #[tokio::test(start_paused = true)]
    async fn alert_acked_end_to_end() {
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;

        // First notice: the MAB ack back to the source.
        assert_eq!(
            notices.recv().await.unwrap(),
            RuntimeNotice::AckSent { source: "aladdin-gw".into() }
        );
        // Then the user's IM ack lands (≈400 ms of paused time auto-advances).
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { block: 0, .. }));
    }

    #[tokio::test(start_paused = true)]
    async fn im_failure_falls_back_to_email_immediately() {
        let mut channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        channels.0.script(
            "im:alice",
            SendOutcome::Failed(SendFailure::RecipientUnreachable),
        );
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 1, .. }));
    }

    #[tokio::test(start_paused = true)]
    async fn missing_ack_times_out_into_email_fallback() {
        // IM accepted but the user never acks: the 60 s delivery-mode
        // timer (real tokio sleep, auto-advanced) must trigger the email.
        let channels = LoopbackHarness::accept_all();
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        let t0 = tokio::time::Instant::now();
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 1, .. }));
        assert!(t0.elapsed() >= Duration::from_secs(60));
    }

    #[tokio::test(start_paused = true)]
    async fn telemetry_spans_runtime_and_core_layers() {
        use simba_telemetry::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(256));
        let telemetry = Telemetry::with_sink(sink.clone());
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let service = service.with_telemetry(telemetry.clone());
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));

        // One event stream spans both layers: the core pipeline (mab.*,
        // wal.*, delivery.*) and the runtime shell (runtime.*).
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        for expected in ["runtime.recovered", "mab.received", "wal.append", "runtime.send", "delivery.acked", "runtime.delivery_finished"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
        }
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("runtime.sends"), 1);
        assert_eq!(snap.counter("runtime.acks_sent"), 1);
        assert_eq!(snap.counter("runtime.deliveries_finished"), 1);
        assert_eq!(snap.counter("mab.received"), 1);
        assert_eq!(snap.histogram("delivery.ack_latency_ms").unwrap().count, 1);
    }

    #[tokio::test(start_paused = true)]
    async fn watchdog_probe_answers() {
        let channels = LoopbackHarness::accept_all();
        let (service, handle, _notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        assert!(handle.are_you_working().await);
    }

    #[tokio::test(start_paused = true)]
    async fn remote_rejuvenation_stops_the_loop() {
        let channels = LoopbackHarness::accept_all();
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let join = tokio::spawn(service.run());
        handle
            .submit_im_alert(IncomingAlert::from_im(
                "aladdin-gw",
                "SIMBA-REJUVENATE",
                SimTime::ZERO,
            ))
            .await;
        loop {
            match notices.recv().await.unwrap() {
                RuntimeNotice::Rejuvenating(RejuvenationTrigger::RemoteCommand) => break,
                _ => continue,
            }
        }
        let stats = join.await.unwrap();
        assert_eq!(stats.remote_commands, 1);
        // The loop exited: the probe now fails.
        assert!(!handle.are_you_working().await);
    }

    /// Newtype so tests can pre-script before handing the adapter over.
    struct LoopbackHarness(crate::channels::LoopbackChannels);

    impl LoopbackHarness {
        fn always_ack(after: Duration) -> Self {
            LoopbackHarness(crate::channels::LoopbackChannels::always_ack(after))
        }
        fn accept_all() -> Self {
            LoopbackHarness(crate::channels::LoopbackChannels::accept_all())
        }
    }

    impl Channels for LoopbackHarness {
        fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome {
            self.0.send(comm_type, address, text)
        }
    }
}
