//! The live MyAlertBuddy service task.
//!
//! Beyond relaying events into the core state machine, the service owns
//! the *delivery lifecycle*: every delivery the buddy starts gets a
//! generation-tagged entry in a `live` table holding its pending timer
//! and ack tasks. When a delivery reaches a terminal state it is retired
//! — evicted from [`MyAlertBuddy`]'s active table into the bounded
//! completed-ring, its `attempt_owner` entries dropped, and its pending
//! tasks aborted so stale wakeups cancel instead of leaking sleeps.

use crate::channels::{Channels, SendOutcome};
use crate::clock::RuntimeClock;
use simba_core::alert::IncomingAlert;
use simba_core::delivery::{
    AttemptId, DeliveryCommand, DeliveryEvent, DeliveryStatus, SendFailure,
};
use simba_core::mab::{DeliveryId, MabCommand, MabEvent, MabStats, MyAlertBuddy};
use simba_core::rejuvenate::RejuvenationTrigger;
use simba_core::wal::{InMemoryWal, WriteAheadLog};
use simba_core::{MabConfig, Telemetry};
use simba_sim::SimDuration;
use simba_telemetry::Event;
use std::collections::HashMap;
use std::time::Duration;
use tokio::sync::mpsc;

/// Capacity of the advisory notice stream handed back by
/// [`MabService::new`]. Sized for a consumer that polls at human pace
/// while a burst of deliveries finishes.
const NOTICE_CAPACITY: usize = 256;

/// Something the service reports to its observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeNotice {
    /// The buddy acknowledged an incoming IM alert back to `source`.
    AckSent {
        /// The acknowledged source.
        source: String,
    },
    /// A delivery reached a terminal state.
    DeliveryFinished {
        /// Which delivery.
        delivery: DeliveryId,
        /// Its terminal status.
        status: DeliveryStatus,
    },
    /// The buddy requested rejuvenation; the service loop exits after this.
    Rejuvenating(
        /// Why.
        RejuvenationTrigger,
    ),
}

/// A point-in-time view of the service's in-memory delivery state; hosts
/// and soak harnesses use it to assert that retirement keeps every table
/// bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// The buddy's running totals.
    pub stats: MabStats,
    /// Deliveries still executing blocks.
    pub in_flight: usize,
    /// Deliveries held in the buddy's active table (in-flight plus
    /// terminal-awaiting-retirement).
    pub tracked: usize,
    /// Entries in the service's live-delivery table.
    pub live: usize,
    /// Entries in the attempt → delivery routing map.
    pub attempt_owner: usize,
    /// Summaries currently in the completed-ring (≤ its cap).
    pub retired: usize,
    /// Spawned timer/ack tasks not yet finished or aborted.
    pub pending_tasks: usize,
}

#[derive(Debug)]
enum Inbound {
    ImAlert(IncomingAlert),
    EmailAlert(IncomingAlert),
    Ack {
        delivery: DeliveryId,
        attempt: AttemptId,
        /// The delivery generation that spawned this ack task; `None` for
        /// external acks reported through [`MabHandle::ack`].
        gen: Option<u64>,
    },
    Timer {
        delivery: DeliveryId,
        timer: simba_core::delivery::TimerId,
        gen: u64,
    },
    AreYouWorking(tokio::sync::oneshot::Sender<bool>),
    Snapshot(tokio::sync::oneshot::Sender<ServiceSnapshot>),
    Stop,
}

/// A cloneable handle for feeding the service.
#[derive(Debug, Clone)]
pub struct MabHandle {
    tx: mpsc::Sender<Inbound>,
}

impl MabHandle {
    /// Submits an alert that arrived over IM (will be acked).
    pub async fn submit_im_alert(&self, alert: IncomingAlert) {
        let _ = self.tx.send(Inbound::ImAlert(alert)).await;
    }

    /// Submits an alert that arrived over email.
    pub async fn submit_email_alert(&self, alert: IncomingAlert) {
        let _ = self.tx.send(Inbound::EmailAlert(alert)).await;
    }

    /// Reports a user acknowledgement for a delivery attempt (e.g. the
    /// user clicked the IM toast). Ignored if the delivery has already
    /// been retired.
    pub async fn ack(&self, delivery: DeliveryId, attempt: AttemptId) {
        let _ = self
            .tx
            .send(Inbound::Ack { delivery, attempt, gen: None })
            .await;
    }

    /// The watchdog probe: resolves `true` when the service loop is alive
    /// and processing. Resolves `false` if the service is gone.
    pub async fn are_you_working(&self) -> bool {
        let (reply_tx, reply_rx) = tokio::sync::oneshot::channel();
        if self
            .tx
            .send(Inbound::AreYouWorking(reply_tx))
            .await
            .is_err()
        {
            return false;
        }
        reply_rx.await.unwrap_or(false)
    }

    /// Requests a state snapshot (retiring due deliveries first). Resolves
    /// `None` if the service is gone.
    pub async fn snapshot(&self) -> Option<ServiceSnapshot> {
        let (reply_tx, reply_rx) = tokio::sync::oneshot::channel();
        self.tx.send(Inbound::Snapshot(reply_tx)).await.ok()?;
        reply_rx.await.ok()
    }

    /// Asks the service loop to exit after processing previously queued
    /// input; the `run()` future then resolves with the final stats.
    pub async fn stop(&self) {
        let _ = self.tx.send(Inbound::Stop).await;
    }
}

/// Per-delivery runtime bookkeeping: the generation stamped into spawned
/// timer/ack tasks (wakeups from older generations are stale) and the
/// tasks themselves, aborted at retirement.
struct LiveDelivery {
    gen: u64,
    notified: bool,
    tasks: Vec<tokio::task::JoinHandle<()>>,
}

impl std::fmt::Debug for LiveDelivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveDelivery")
            .field("gen", &self.gen)
            .field("notified", &self.notified)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

/// The live service wrapping a [`MyAlertBuddy`].
#[derive(Debug)]
pub struct MabService<C, W = InMemoryWal> {
    mab: MyAlertBuddy<W>,
    channels: C,
    clock: RuntimeClock,
    rx: mpsc::Receiver<Inbound>,
    self_tx: mpsc::Sender<Inbound>,
    notices: mpsc::Sender<RuntimeNotice>,
    /// (delivery, attempt) → generation, for routing and validating acks.
    /// Entries are dropped when their delivery retires.
    attempt_owner: HashMap<(DeliveryId, AttemptId), u64>,
    /// Runtime bookkeeping for every delivery still in the buddy's table.
    live: HashMap<DeliveryId, LiveDelivery>,
    next_gen: u64,
    telemetry: Telemetry,
    /// When set, channel attempts are enqueued into the durable delivery
    /// ledger (owned by a worker pool) instead of being sent inline.
    ledger: Option<LedgerSink>,
}

/// Where ledger-routed sends go: the shared ledger plus the identity the
/// idempotency keys are minted under.
#[derive(Debug, Clone)]
struct LedgerSink {
    ledger: simba_ledger::SharedLedger,
    user: simba_core::subscription::UserId,
}

impl<C: Channels> MabService<C, InMemoryWal> {
    /// Builds the service over a fresh in-memory log; returns it plus the
    /// submit handle and the notice stream.
    pub fn new(
        config: MabConfig,
        channels: C,
    ) -> (Self, MabHandle, mpsc::Receiver<RuntimeNotice>) {
        MabService::with_wal(config, channels, InMemoryWal::new())
    }
}

impl<C: Channels, W: WriteAheadLog + Send + 'static> MabService<C, W> {
    /// Builds the service over an existing (possibly non-empty) log —
    /// e.g. a [`simba_core::wal::FileWal`] for a durable daemon. The
    /// restart protocol runs on the first loop turn: unprocessed records
    /// are replayed before new alerts are accepted.
    pub fn with_wal(
        config: MabConfig,
        channels: C,
        wal: W,
    ) -> (Self, MabHandle, mpsc::Receiver<RuntimeNotice>) {
        let clock = RuntimeClock::start();
        let (tx, rx) = mpsc::channel(256);
        // Notices are advisory (delivery state is durable in the WAL), so
        // a lagging consumer costs dropped notices, never memory:
        // overflow is counted under `runtime.notice_dropped`.
        let (notice_tx, notice_rx) = mpsc::channel(NOTICE_CAPACITY);
        let mab = MyAlertBuddy::new(config, wal, clock.now());
        let service = MabService {
            mab,
            channels,
            clock,
            rx,
            self_tx: tx.clone(),
            notices: notice_tx,
            attempt_owner: HashMap::new(),
            live: HashMap::new(),
            next_gen: 0,
            telemetry: Telemetry::disabled(),
            ledger: None,
        };
        (service, MabHandle { tx }, notice_rx)
    }

    /// Routes `runtime.*` events and metrics to `telemetry`, and threads
    /// the same handle into the wrapped [`MyAlertBuddy`] so the core
    /// pipeline (`mab.*`, `wal.*`, `delivery.*`) shares the sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.mab.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Configures delivery retirement on the wrapped buddy: how long a
    /// terminal delivery lingers (so straggling acks can still upgrade the
    /// outcome) and the completed-ring capacity.
    #[must_use]
    pub fn with_retirement(mut self, grace: SimDuration, completed_cap: usize) -> Self {
        self.mab.set_retirement(grace, completed_cap);
        self
    }

    /// Installs a presence-aware mode selector on the wrapped buddy: live
    /// soft-state facts then adjust the delivery mode at each delivery
    /// start, falling back to the static profile when facts are absent or
    /// expired.
    #[must_use]
    pub fn with_mode_selector(
        mut self,
        selector: Box<dyn simba_core::routing::ModeSelector>,
    ) -> Self {
        self.mab.set_mode_selector(selector);
        self
    }

    /// Routes this service's channel attempts into a durable delivery
    /// ledger under `user`'s identity. Each Send command then enqueues
    /// one `(delivery, channel)` record (group-committed before the
    /// attempt is acknowledged to the buddy) and a ledger worker pool —
    /// not this service — performs the send, retries with backoff, and
    /// dead-letters; see `simba_ledger`. Attempts report `SendAccepted`
    /// at enqueue: acceptance means "durably owned by the ledger", the
    /// §4.2.1 durable-before-ack contract moved one layer down.
    #[must_use]
    pub fn with_ledger(
        mut self,
        ledger: simba_ledger::SharedLedger,
        user: simba_core::subscription::UserId,
    ) -> Self {
        self.ledger = Some(LedgerSink { ledger, user });
        self
    }

    /// Runs until all handles are dropped, [`MabHandle::stop`] is called,
    /// or a rejuvenation triggers. Returns the final stats.
    pub async fn run(mut self) -> MabStats {
        // The §4.2.1 restart protocol: replay unprocessed log records
        // before accepting new alerts.
        let now = self.clock.now();
        let before = self.mab.delivery_watermark();
        let recovery = self.mab.recover(now);
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("runtime.recoveries").incr();
            self.telemetry.emit(
                Event::new("runtime.recovered", now.as_millis())
                    .with("replayed", self.mab.stats().replayed),
            );
        }
        let started = self.register_new(before);
        if self.execute(recovery).await {
            return self.mab.stats();
        }
        for id in started {
            self.notify_if_finished(id);
        }
        self.retire_finished();
        while let Some(inbound) = self.rx.recv().await {
            let now = self.clock.now();
            let mut finished_check = None;
            let before = self.mab.delivery_watermark();
            let commands = match inbound {
                Inbound::ImAlert(alert) => self.mab.handle(MabEvent::AlertByIm(alert), now),
                Inbound::EmailAlert(alert) => self.mab.handle(MabEvent::AlertByEmail(alert), now),
                Inbound::Ack { delivery, attempt, gen } => {
                    if self.ack_is_stale(delivery, attempt, gen) {
                        self.note_stale("ack");
                        continue;
                    }
                    finished_check = Some(delivery);
                    self.mab.handle(
                        MabEvent::Delivery {
                            id: delivery,
                            event: DeliveryEvent::Acked { attempt },
                        },
                        now,
                    )
                }
                Inbound::Timer { delivery, timer, gen } => {
                    if self.live.get(&delivery).map(|l| l.gen) != Some(gen) {
                        self.note_stale("timer");
                        continue;
                    }
                    finished_check = Some(delivery);
                    self.mab.handle(
                        MabEvent::Delivery {
                            id: delivery,
                            event: DeliveryEvent::TimerFired { timer },
                        },
                        now,
                    )
                }
                Inbound::AreYouWorking(reply) => {
                    let _ = reply.send(self.mab.are_you_working());
                    continue;
                }
                Inbound::Snapshot(reply) => {
                    self.retire_finished();
                    let _ = reply.send(self.snapshot_now());
                    continue;
                }
                Inbound::Stop => break,
            };
            let started = self.register_new(before);
            if self.execute(commands).await {
                break; // rejuvenating
            }
            for id in started {
                self.notify_if_finished(id);
            }
            if let Some(delivery) = finished_check {
                self.notify_if_finished(delivery);
            }
            self.retire_finished();
        }
        self.mab.stats()
    }

    /// Registers live-table entries for deliveries the buddy started since
    /// the `before` watermark, returning their ids so the caller can check
    /// for immediate terminal transitions (a delivery whose every block is
    /// disabled exhausts with zero send commands).
    fn register_new(&mut self, before: u64) -> Vec<DeliveryId> {
        let after = self.mab.delivery_watermark();
        (before..after)
            .map(|raw| {
                let id = DeliveryId(raw);
                let gen = self.next_gen;
                self.next_gen += 1;
                self.live.insert(id, LiveDelivery { gen, notified: false, tasks: Vec::new() });
                id
            })
            .collect()
    }

    /// Whether an inbound ack refers to a retired delivery or a stale
    /// generation.
    fn ack_is_stale(&self, delivery: DeliveryId, attempt: AttemptId, gen: Option<u64>) -> bool {
        match gen {
            Some(gen) => self.live.get(&delivery).map(|l| l.gen) != Some(gen),
            None => !self.attempt_owner.contains_key(&(delivery, attempt)),
        }
    }

    fn note_stale(&self, kind: &str) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("runtime.stale_dropped").incr();
            self.telemetry.emit(
                Event::new("runtime.stale_dropped", self.clock.now().as_millis())
                    .with("kind", kind),
            );
        }
    }

    /// Retires deliveries whose grace expired: their live entries go, their
    /// pending tasks are aborted (cancelling the underlying sleeps), and
    /// their attempt-routing entries are dropped.
    fn retire_finished(&mut self) {
        let now = self.clock.now();
        for retired in self.mab.retire_terminal(now) {
            if let Some(entry) = self.live.remove(&retired.id) {
                for task in entry.tasks {
                    task.abort();
                }
            }
            for attempt in &retired.attempts {
                self.attempt_owner.remove(&(retired.id, *attempt));
            }
        }
    }

    fn snapshot_now(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            stats: self.mab.stats(),
            in_flight: self.mab.in_flight(),
            tracked: self.mab.tracked(),
            live: self.live.len(),
            attempt_owner: self.attempt_owner.len(),
            retired: self.mab.retired_len(),
            pending_tasks: self
                .live
                .values()
                .flat_map(|l| &l.tasks)
                .filter(|t| !t.is_finished())
                .count(),
        }
    }

    /// Executes MAB commands; returns `true` when the loop should exit.
    async fn execute(&mut self, commands: Vec<MabCommand>) -> bool {
        let mut queue = commands;
        while !queue.is_empty() {
            let mut follow_ups = Vec::new();
            for command in queue {
                match command {
                    MabCommand::AckIm { to, .. } => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.acks_sent").incr();
                        }
                        self.notify(RuntimeNotice::AckSent { source: to });
                    }
                    MabCommand::Rejuvenate(trigger) => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.rejuvenations").incr();
                            self.telemetry.emit(
                                Event::new("runtime.rejuvenating", self.clock.now().as_millis())
                                    .with("trigger", trigger.to_string()),
                            );
                        }
                        self.notify(RuntimeNotice::Rejuvenating(trigger));
                        return true;
                    }
                    MabCommand::Channel {
                        delivery,
                        command,
                        ..
                    } => match command {
                        DeliveryCommand::Send {
                            attempt,
                            comm_type,
                            address_value,
                            text,
                            ..
                        } => {
                            let gen = self.generation(delivery);
                            self.attempt_owner.insert((delivery, attempt), gen);
                            if let Some(sink) = &self.ledger {
                                // Ledger-owned attempt: durable enqueue,
                                // then acknowledge the handoff. A worker
                                // pool performs the send and owns the
                                // retry/backoff/dead-letter lifecycle.
                                let accepted = {
                                    let mut ledger = sink
                                        .ledger
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    ledger.enqueue(
                                        &sink.user,
                                        delivery.0,
                                        comm_type,
                                        &address_value,
                                        &text,
                                        self.clock.now(),
                                    );
                                    // simba-analyze: allow(concurrency.blocking-under-guard): enqueue+commit is the atomic handoff to the worker pool; the guard scope IS the durability point
                                    ledger.commit().is_ok()
                                };
                                if self.telemetry.enabled() {
                                    self.telemetry.metrics().counter("runtime.sends").incr();
                                    self.telemetry.emit(
                                        Event::new(
                                            "runtime.send",
                                            self.clock.now().as_millis(),
                                        )
                                        .with("channel", comm_type.to_string())
                                        .with("accepted", accepted),
                                    );
                                }
                                let event = if accepted {
                                    DeliveryEvent::SendAccepted { attempt }
                                } else {
                                    DeliveryEvent::SendFailed {
                                        attempt,
                                        failure: SendFailure::ChannelDown,
                                    }
                                };
                                let now = self.clock.now();
                                follow_ups.extend(self.mab.handle(
                                    MabEvent::Delivery { id: delivery, event },
                                    now,
                                ));
                                self.notify_if_finished(delivery);
                                continue;
                            }
                            let outcome = self.channels.send(comm_type, &address_value, &text);
                            if self.telemetry.enabled() {
                                self.telemetry.metrics().counter("runtime.sends").incr();
                                self.telemetry.emit(
                                    Event::new("runtime.send", self.clock.now().as_millis())
                                        .with("channel", comm_type.to_string())
                                        .with(
                                            "accepted",
                                            !matches!(outcome, SendOutcome::Failed(_)),
                                        ),
                                );
                            }
                            let event = match outcome {
                                // simba-analyze: allow(durability.ack-before-commit): direct (unledgered) send path — this mirrors the adapter's synchronous accept; durable-before-ack applies to the ledgered path
                                SendOutcome::Accepted => DeliveryEvent::SendAccepted { attempt },
                                SendOutcome::AcceptedWithAck(after) => {
                                    self.spawn_ack(delivery, attempt, gen, after);
                                    // simba-analyze: allow(durability.ack-before-commit): direct (unledgered) send path — the adapter accepted synchronously
                                    DeliveryEvent::SendAccepted { attempt }
                                }
                                SendOutcome::Failed(failure) => {
                                    DeliveryEvent::SendFailed { attempt, failure }
                                }
                            };
                            let now = self.clock.now();
                            follow_ups.extend(self.mab.handle(
                                MabEvent::Delivery { id: delivery, event },
                                now,
                            ));
                            self.notify_if_finished(delivery);
                        }
                        DeliveryCommand::StartTimer { timer, after } => {
                            let gen = self.generation(delivery);
                            let tx = self.self_tx.clone();
                            let task = tokio::spawn(async move {
                                tokio::time::sleep(Duration::from_millis(after.as_millis())).await;
                                let _ = tx.send(Inbound::Timer { delivery, timer, gen }).await;
                            });
                            self.track_task(delivery, task);
                        }
                    },
                }
            }
            queue = follow_ups;
        }
        false
    }

    fn generation(&self, delivery: DeliveryId) -> u64 {
        self.live.get(&delivery).map(|l| l.gen).unwrap_or_default()
    }

    fn track_task(&mut self, delivery: DeliveryId, task: tokio::task::JoinHandle<()>) {
        if let Some(entry) = self.live.get_mut(&delivery) {
            entry.tasks.push(task);
        }
    }

    fn spawn_ack(&mut self, delivery: DeliveryId, attempt: AttemptId, gen: u64, after: Duration) {
        let tx = self.self_tx.clone();
        let task = tokio::spawn(async move {
            tokio::time::sleep(after).await;
            let _ = tx
                .send(Inbound::Ack { delivery, attempt, gen: Some(gen) })
                .await;
        });
        self.track_task(delivery, task);
    }

    fn notify_if_finished(&mut self, delivery: DeliveryId) {
        let Some(status) = self.mab.delivery_status(delivery) else {
            return;
        };
        if !status.is_terminal() {
            return;
        }
        // One notice per delivery: a late ack upgrading the outcome during
        // the grace window does not re-notify.
        match self.live.get_mut(&delivery) {
            Some(entry) if entry.notified => return,
            Some(entry) => entry.notified = true,
            None => {}
        }
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("runtime.deliveries_finished").incr();
            self.telemetry.emit(
                Event::new("runtime.delivery_finished", self.clock.now().as_millis())
                    .with("delivery", delivery.0)
                    .with("status", status_name(status)),
            );
        }
        self.notify(RuntimeNotice::DeliveryFinished { delivery, status });
    }

    /// Offers a notice to the (bounded) notice stream. Notices are
    /// advisory: when the consumer lags or is gone, the notice is dropped
    /// and counted rather than buffered or awaited — the service loop
    /// must never block on an observer.
    fn notify(&self, notice: RuntimeNotice) {
        if self.notices.try_send(notice).is_err() && self.telemetry.enabled() {
            self.telemetry.metrics().counter("runtime.notice_dropped").incr();
        }
    }
}

/// Short stable name for a delivery status in telemetry events.
fn status_name(status: DeliveryStatus) -> &'static str {
    match status {
        DeliveryStatus::InProgress => "in_progress",
        DeliveryStatus::Acked { .. } => "acked",
        DeliveryStatus::Unconfirmed { .. } => "unconfirmed",
        DeliveryStatus::Exhausted { .. } => "exhausted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_core::address::{Address, AddressBook, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::delivery::SendFailure;
    use simba_core::mode::DeliveryMode;
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::{SubscriptionRegistry, UserId};
    use simba_sim::{SimDuration, SimTime};

    fn config() -> MabConfig {
        let mut classifier = Classifier::new();
        classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
        classifier.map_keyword("Sensor", "Home");
        let mut registry = SubscriptionRegistry::new();
        let alice = UserId::new("alice");
        let profile = registry.register_user(alice.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
        book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "IM",
            "EM",
            SimDuration::from_secs(60),
        ));
        registry.subscribe("Home", alice, "Urgent").unwrap();
        MabConfig {
            classifier,
            registry,
            rejuvenation: RejuvenationPolicy::default(),
        }
    }

    fn sensor_alert() -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO)
    }

    async fn next_finished(
        notices: &mut mpsc::Receiver<RuntimeNotice>,
    ) -> DeliveryStatus {
        loop {
            match notices.recv().await.expect("service alive") {
                RuntimeNotice::DeliveryFinished { status, .. } => return status,
                _ => continue,
            }
        }
    }

    #[tokio::test(start_paused = true)]
    async fn alert_acked_end_to_end() {
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;

        // First notice: the MAB ack back to the source.
        assert_eq!(
            notices.recv().await.unwrap(),
            RuntimeNotice::AckSent { source: "aladdin-gw".into() }
        );
        // Then the user's IM ack lands (≈400 ms of paused time auto-advances).
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { block: 0, .. }));
    }

    #[tokio::test(start_paused = true)]
    async fn im_failure_falls_back_to_email_immediately() {
        let mut channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        channels.0.script(
            "im:alice",
            SendOutcome::Failed(SendFailure::RecipientUnreachable),
        );
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 1, .. }));
    }

    #[tokio::test(start_paused = true)]
    async fn missing_ack_times_out_into_email_fallback() {
        // IM accepted but the user never acks: the 60 s delivery-mode
        // timer (real tokio sleep, auto-advanced) must trigger the email.
        let channels = LoopbackHarness::accept_all();
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        let t0 = tokio::time::Instant::now();
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 1, .. }));
        assert!(t0.elapsed() >= Duration::from_secs(60));
    }

    #[tokio::test(start_paused = true)]
    async fn all_disabled_delivery_emits_exhausted_finished_notice() {
        // Regression: a delivery that is terminal at start — every block's
        // addresses disabled, so zero Send commands — never took the
        // send-outcome path into notify_if_finished, and observers waiting
        // on the notice stream hung forever.
        let mut config = config();
        let alice = UserId::new("alice");
        let profile = config.registry.user_mut(&alice).unwrap();
        profile.address_book.set_enabled("IM", false);
        profile.address_book.set_enabled("EM", false);

        let channels = LoopbackHarness::accept_all();
        let (service, handle, mut notices) = MabService::new(config, channels);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;

        assert_eq!(
            notices.recv().await.unwrap(),
            RuntimeNotice::AckSent { source: "aladdin-gw".into() }
        );
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Exhausted { .. }));
    }

    #[tokio::test(start_paused = true)]
    async fn retirement_frees_state_and_aborts_pending_timers() {
        // The delivery acks at ~400 ms; the 60 s block timer is still
        // pending. Retirement must clear every table and abort the sleep.
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        let t0 = tokio::time::Instant::now();
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));

        let snap = handle.snapshot().await.expect("service alive");
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.tracked, 0);
        assert_eq!(snap.live, 0);
        assert_eq!(snap.attempt_owner, 0);
        assert_eq!(snap.retired, 1);
        assert_eq!(snap.stats.retired, 1);
        assert_eq!(snap.pending_tasks, 0);
        // The snapshot resolved without the paused clock having to advance
        // through the 60 s ack-window sleep: the abort cancelled its timer.
        assert!(t0.elapsed() < Duration::from_secs(60));
    }

    #[tokio::test(start_paused = true)]
    async fn external_ack_after_retirement_is_dropped() {
        use simba_telemetry::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(256));
        let telemetry = Telemetry::with_sink(sink.clone());
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let service = service.with_telemetry(telemetry.clone());
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));

        // Force retirement, then replay the user's ack for the (now
        // retired) first attempt.
        let snap = handle.snapshot().await.unwrap();
        assert_eq!(snap.attempt_owner, 0);
        handle.ack(DeliveryId(0), AttemptId(0)).await;
        let after = handle.snapshot().await.unwrap();
        assert_eq!(after.stats, snap.stats);
        assert_eq!(telemetry.metrics().snapshot().counter("runtime.stale_dropped"), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn wal_replay_routes_before_new_alerts() {
        // Two unprocessed records sit in the log when the service boots; a
        // third alert is submitted live. Replayed deliveries must claim the
        // first delivery ids and finish alongside the new one.
        let mut wal = InMemoryWal::new();
        {
            use simba_core::wal::WriteAheadLog as _;
            wal.append(
                &IncomingAlert::from_im("aladdin-gw", "Sensor replay A", SimTime::ZERO),
                SimTime::ZERO,
            )
            .unwrap();
            wal.append(
                &IncomingAlert::from_im("aladdin-gw", "Sensor replay B", SimTime::ZERO),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let channels = LoopbackHarness::always_ack(Duration::from_millis(100));
        let (service, handle, mut notices) = MabService::with_wal(config(), channels, wal);
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;

        let mut finished = Vec::new();
        while finished.len() < 3 {
            if let RuntimeNotice::DeliveryFinished { delivery, status } =
                notices.recv().await.unwrap()
            {
                finished.push((delivery, status));
            }
        }
        let mut ids: Vec<u64> = finished.iter().map(|(d, _)| d.0).collect();
        ids.sort_unstable();
        // Replays took ids 0 and 1 (§4.2.1: replay precedes new alerts);
        // the live alert got id 2.
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(finished.iter().all(|(_, s)| matches!(s, DeliveryStatus::Acked { .. })));
        let snap = handle.snapshot().await.unwrap();
        assert_eq!(snap.stats.replayed, 2);
        assert_eq!(snap.stats.deliveries_started, 3);
        assert_eq!(snap.tracked, 0);
    }

    #[tokio::test(start_paused = true)]
    async fn stop_drains_and_returns_stats() {
        let channels = LoopbackHarness::always_ack(Duration::from_millis(100));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let join = tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let _ = next_finished(&mut notices).await;
        handle.stop().await;
        let stats = join.await.unwrap();
        assert_eq!(stats.deliveries_started, 1);
        // The loop exited: the probe now fails.
        assert!(!handle.are_you_working().await);
    }

    #[tokio::test(start_paused = true)]
    async fn telemetry_spans_runtime_and_core_layers() {
        use simba_telemetry::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(256));
        let telemetry = Telemetry::with_sink(sink.clone());
        let channels = LoopbackHarness::always_ack(Duration::from_millis(400));
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let service = service.with_telemetry(telemetry.clone());
        tokio::spawn(service.run());
        handle.submit_im_alert(sensor_alert()).await;
        let status = next_finished(&mut notices).await;
        assert!(matches!(status, DeliveryStatus::Acked { .. }));

        // One event stream spans both layers: the core pipeline (mab.*,
        // wal.*, delivery.*) and the runtime shell (runtime.*).
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        for expected in ["runtime.recovered", "mab.received", "wal.append", "runtime.send", "delivery.acked", "runtime.delivery_finished"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
        }
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("runtime.sends"), 1);
        assert_eq!(snap.counter("runtime.acks_sent"), 1);
        assert_eq!(snap.counter("runtime.deliveries_finished"), 1);
        assert_eq!(snap.counter("mab.received"), 1);
        assert_eq!(snap.histogram("delivery.ack_latency_ms").unwrap().count, 1);
    }

    #[tokio::test(start_paused = true)]
    async fn watchdog_probe_answers() {
        let channels = LoopbackHarness::accept_all();
        let (service, handle, _notices) = MabService::new(config(), channels);
        tokio::spawn(service.run());
        assert!(handle.are_you_working().await);
    }

    #[tokio::test(start_paused = true)]
    async fn remote_rejuvenation_stops_the_loop() {
        let channels = LoopbackHarness::accept_all();
        let (service, handle, mut notices) = MabService::new(config(), channels);
        let join = tokio::spawn(service.run());
        handle
            .submit_im_alert(IncomingAlert::from_im(
                "aladdin-gw",
                "SIMBA-REJUVENATE",
                SimTime::ZERO,
            ))
            .await;
        loop {
            match notices.recv().await.unwrap() {
                RuntimeNotice::Rejuvenating(RejuvenationTrigger::RemoteCommand) => break,
                _ => continue,
            }
        }
        let stats = join.await.unwrap();
        assert_eq!(stats.remote_commands, 1);
        // The loop exited: the probe now fails.
        assert!(!handle.are_you_working().await);
    }

    /// Newtype so tests can pre-script before handing the adapter over.
    struct LoopbackHarness(crate::channels::LoopbackChannels);

    impl LoopbackHarness {
        fn always_ack(after: Duration) -> Self {
            LoopbackHarness(crate::channels::LoopbackChannels::always_ack(after))
        }
        fn accept_all() -> Self {
            LoopbackHarness(crate::channels::LoopbackChannels::accept_all())
        }
    }

    impl Channels for LoopbackHarness {
        fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome {
            self.0.send(comm_type, address, text)
        }
    }
}
