//! The sharded million-user host.
//!
//! [`MabHost`](crate::MabHost) runs one service *task* per user — the
//! right shape for hundreds of tenants, the wrong one for a million. The
//! [`ShardedHost`] here is the scale shape: a fixed pool of shard workers
//! (default: one per core), each multiplexing thousands of buddies over
//! one [`ShardLog`] with **group commit** (one fsync per batch, not per
//! alert) and **hibernation** (idle buddies are serialized to a compact
//! CRC-guarded [`BuddySnapshot`] and rebuilt on the next routed alert or
//! replay demand), so resident memory tracks *active* users while the
//! roster tracks *registered* ones.
//!
//! The worker loop is the §4.2.1 pipeline batched:
//!
//! 1. **handle** — drain up to `batch_max` inbound messages plus due
//!    timer-wheel entries through each buddy's state machine; WAL appends
//!    and processed-marks buffer in the shard log, observable effects
//!    (acks, sends, notices) are *staged*;
//! 2. **commit** — one [`ShardLog::commit`] makes the whole batch
//!    durable with a single fsync;
//! 3. **execute** — release the staged effects. Send outcomes feed back
//!    into the buddies immediately (fallback blocks, ack scheduling);
//!    those delivery events never touch the log, so no second fsync is
//!    needed before their effects run.
//!
//! Durability ordering is preserved exactly as in the single-user
//! service: no ack leaves the host before the commit covering its log
//! record returns. A buddy whose processed-mark fails crashes *alone* —
//! its stats fold into the shard, a fresh incarnation replays its log
//! records — and the shard worker (with every other buddy on it) keeps
//! running.

use crate::channels::{Channels, SendOutcome};
use crate::clock::RuntimeClock;
use crate::host::{HostNotice, DEFAULT_NOTICE_CAPACITY};
use crate::service::RuntimeNotice;
use simba_core::alert::IncomingAlert;
use simba_core::delivery::{AttemptId, DeliveryCommand, DeliveryEvent, DeliveryStatus, TimerId};
use simba_core::mab::{DeliveryId, MabCommand, MabEvent, MabStats, MyAlertBuddy, RetiredDelivery};
use simba_core::shardlog::{ShardLog, ShardLogConfig, ShardLogStats, DEFAULT_SEGMENT_MAX_BYTES};
use simba_core::snapshot::BuddySnapshot;
use simba_core::subscription::UserId;
use simba_core::wal::WalError;
use simba_core::{MabConfig, Telemetry, UserShardWal};
use simba_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

/// The shard log handle a worker shares with its buddies' WAL facades.
/// `Arc<Mutex<_>>` rather than `Rc<RefCell<_>>` so the worker future is
/// `Send` and can be pinned to a dedicated OS thread; the mutex is
/// uncontended — a log never leaves its shard's event loop.
type SharedShardLog = Arc<Mutex<ShardLog>>;

/// Builds a user's [`MabConfig`] on demand. Configuration is derivable
/// state (profiles, subscriptions), deliberately not serialized into
/// hibernation snapshots; the factory is called at every activation —
/// first alert, rehydration, replay demand, and post-crash restart.
pub type ConfigFactory = Arc<dyn Fn(&UserId) -> MabConfig + Send + Sync>;

/// Configuration for a [`ShardedHost`].
#[derive(Debug, Clone)]
pub struct ShardedHostConfig {
    /// Worker count. Users are pinned to shards by a stable hash of
    /// their id, so restarts over the same `log_dir` must keep the same
    /// count (records of re-homed users still replay, on their old
    /// shard's log).
    pub shards: usize,
    /// Directory for the per-shard segmented logs (`shard-NNN/`).
    /// `None` keeps each shard log in memory.
    pub log_dir: Option<PathBuf>,
    /// Segment-rotation threshold for each shard log.
    pub segment_max_bytes: u64,
    /// Most inbound messages a worker drains before committing; bounds
    /// both ack latency and the blast radius of one commit.
    pub batch_max: usize,
    /// Idle time after which a buddy hibernates. [`SimDuration::ZERO`]
    /// disables the sweep (buddies stay resident once activated).
    pub hibernate_after: SimDuration,
    /// How long a terminal delivery lingers before retirement.
    pub retirement_grace: SimDuration,
    /// Per-buddy completed-ring capacity (0 keeps no retired summaries —
    /// the benchmark shape).
    pub completed_ring: usize,
    /// Capacity of the merged [`HostNotice`] stream; overflow is dropped
    /// and counted under `host.notice_dropped`.
    pub notice_capacity: usize,
    /// Capacity of each shard's inbound queue; submitters await space,
    /// so a hot shard exerts backpressure instead of buffering unboundedly.
    pub queue_capacity: usize,
    /// Run each shard worker on its own dedicated OS thread, each with
    /// its own single-threaded event loop (thread-per-shard). `false`
    /// spawns workers as tasks on the caller's executor — the
    /// deterministic shape `start_paused` tests rely on. Threaded
    /// workers keep real time (each thread's clock is wall-anchored), so
    /// virtual-time control from the caller does not reach them.
    pub threads: bool,
    /// When set, shard workers enqueue channel attempts into this
    /// durable delivery ledger (acknowledging the handoff as accepted)
    /// instead of sending inline; a `simba_ledger::LedgerWorkerPool`
    /// over the same handle performs the sends with retry, backoff, and
    /// idempotency-key dedupe.
    pub ledger: Option<simba_ledger::SharedLedger>,
    /// When set, every alert for a *registered* user runs through this
    /// rules engine inside the owning shard worker before it reaches the
    /// buddy; drive deadline flushes with [`ShardedHost::pump_digests`]
    /// (the gateway pumps call it on their idle tick).
    pub rules: Option<simba_rules::SharedRuleEngine>,
}

impl Default for ShardedHostConfig {
    fn default() -> Self {
        ShardedHostConfig {
            shards: default_shards(),
            log_dir: None,
            segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES,
            batch_max: 256,
            hibernate_after: SimDuration::from_mins(5),
            retirement_grace: SimDuration::ZERO,
            completed_ring: 0,
            notice_capacity: DEFAULT_NOTICE_CAPACITY,
            queue_capacity: 1024,
            threads: false,
            ledger: None,
            rules: None,
        }
    }
}

/// One worker per available core, at least one.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// The stable shard assignment: FNV-1a over the user id. Hand-rolled so
/// the mapping never changes underneath on-disk logs.
fn shard_of(user: &UserId, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in user.0.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Aggregated state of one shard — or, merged, of the whole host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedSnapshot {
    /// Registered users (roster entries: fresh + hibernated + active).
    pub users: usize,
    /// Buddies currently resident in memory.
    pub active: usize,
    /// Buddies currently hibernated to snapshots.
    pub hibernated: usize,
    /// Merged running totals across resident, hibernated, and folded
    /// (crashed / rejuvenated) buddies.
    pub stats: MabStats,
    /// Deliveries still executing blocks, summed over resident buddies.
    pub in_flight: usize,
    /// Deliveries tracked (in-flight plus awaiting retirement).
    pub tracked: usize,
    /// Retired deliveries that ended acknowledged.
    pub acked: u64,
    /// Retired deliveries that ended unconfirmed.
    pub unconfirmed: u64,
    /// Retired deliveries that exhausted every block.
    pub exhausted: u64,
    /// Hibernation transitions performed.
    pub hibernations: u64,
    /// Rehydrations performed (snapshot decoded and resumed).
    pub rehydrations: u64,
    /// Buddies that crashed and were restarted by the worker.
    pub crashes: u64,
    /// Snapshots rejected at rehydration (corrupt, truncated, foreign);
    /// each fell back to a fresh buddy plus shard-log replay.
    pub corrupt_snapshots: u64,
    /// Alerts refused because the user was not registered.
    pub unrouted: u64,
    /// Shard-log totals (appends, marks, group commits, rotations).
    pub log: ShardLogStats,
}

impl ShardedSnapshot {
    /// Folds another shard's snapshot into this one.
    pub fn merge(&mut self, other: &ShardedSnapshot) {
        self.users += other.users;
        self.active += other.active;
        self.hibernated += other.hibernated;
        self.stats.merge(other.stats);
        self.in_flight += other.in_flight;
        self.tracked += other.tracked;
        self.acked += other.acked;
        self.unconfirmed += other.unconfirmed;
        self.exhausted += other.exhausted;
        self.hibernations += other.hibernations;
        self.rehydrations += other.rehydrations;
        self.crashes += other.crashes;
        self.corrupt_snapshots += other.corrupt_snapshots;
        self.unrouted += other.unrouted;
        self.log.appends += other.log.appends;
        self.log.marks += other.log.marks;
        self.log.group_commits += other.log.group_commits;
        self.log.segments_rotated += other.log.segments_rotated;
    }
}

/// What the front door sends a shard worker.
enum ShardMsg {
    /// Add users to the roster (bulk — registration is just a map entry).
    Register(Vec<UserId>),
    /// An IM-borne alert for a user.
    Im(UserId, IncomingAlert),
    /// An email-borne alert for a user.
    Email(UserId, IncomingAlert),
    /// A flushed digest for a user — routed like an email-borne alert
    /// but *never* re-evaluated against the rules engine (the digest
    /// keeps its original source, so a by-source digest rule would
    /// re-absorb it forever).
    Digest(UserId, IncomingAlert),
    /// An external user acknowledgement for a delivery attempt.
    Ack {
        user: UserId,
        delivery: DeliveryId,
        attempt: AttemptId,
    },
    /// Reply with this shard's snapshot.
    Snapshot(oneshot::Sender<ShardedSnapshot>),
    /// Test hook: hibernate a user now (if idle); replies whether it did.
    Hibernate(UserId, oneshot::Sender<bool>),
    /// Test hook: fail the user's next processed-mark.
    InjectMarkFailure(UserId),
    /// Test hook: flip a byte in the user's stored hibernation snapshot;
    /// replies whether there was one to damage.
    CorruptSnapshot(UserId, oneshot::Sender<bool>),
    /// Drain, commit, reply with the final snapshot, and exit.
    Stop(oneshot::Sender<ShardedSnapshot>),
}

/// The roster slot for one registered user.
enum UserSlot {
    /// Registered; never activated (or reset after a crash/rejuvenation,
    /// awaiting its next alert to restart and replay).
    Fresh,
    /// Hibernated: the encoded [`BuddySnapshot`], a few dozen bytes.
    Hibernated(Box<[u8]>),
    /// Resident.
    Active(Box<ActiveBuddy>),
}

/// A resident buddy plus its worker-side bookkeeping.
struct ActiveBuddy {
    mab: MyAlertBuddy<UserShardWal<SharedShardLog>>,
    /// Monotonic per-worker activation id; timer-wheel entries carry the
    /// incarnation they were scheduled under, so wakeups for a buddy
    /// that has since hibernated, crashed, or restarted are stale by
    /// comparison and dropped.
    incarnation: u64,
    /// Last alert/ack activity, for the hibernation sweep.
    last_event_at: SimTime,
}

/// What a timer-wheel entry delivers when it fires.
enum TimerFire {
    /// A delivery-mode block timer.
    Block(TimerId),
    /// A channel-simulated user acknowledgement
    /// ([`SendOutcome::AcceptedWithAck`]).
    Ack(AttemptId),
}

struct TimerEntry {
    user: UserId,
    delivery: DeliveryId,
    fire: TimerFire,
    incarnation: u64,
}

/// Delivery outcomes counted at retirement.
#[derive(Debug, Clone, Copy, Default)]
struct Outcomes {
    acked: u64,
    unconfirmed: u64,
    exhausted: u64,
}

/// How a shard worker runs: a task on the caller's executor, or a
/// dedicated OS thread driving its own event loop.
enum ShardTask {
    Local(JoinHandle<()>),
    Thread(std::thread::JoinHandle<()>),
}

struct ShardHandle {
    tx: mpsc::Sender<ShardMsg>,
    depth: Arc<AtomicUsize>,
    task: ShardTask,
}

/// The sharded host front door: routes by user hash, registers in bulk,
/// snapshots and shuts down by fan-out.
pub struct ShardedHost {
    shards: Vec<ShardHandle>,
    clock: RuntimeClock,
    rules: Option<simba_rules::SharedRuleEngine>,
}

impl ShardedHost {
    /// Builds the host and spawns its shard workers — as tasks on the
    /// caller's executor, or (with [`ShardedHostConfig::threads`]) one
    /// dedicated OS thread per shard, each pinned to its own
    /// single-threaded event loop; cross-shard traffic flows only over
    /// the bounded routing channels and the snapshot/notice fan-in.
    /// `factory` rebuilds a user's [`MabConfig`] at every activation.
    /// Telemetry must be supplied here (workers capture it at spawn);
    /// pass [`Telemetry::disabled`] on hot benchmark paths.
    ///
    /// # Errors
    ///
    /// Opening a shard's on-disk log fails ([`ShardedHostConfig::log_dir`]
    /// set but unusable), or a shard thread cannot be spawned.
    pub fn new<C: Channels + Clone>(
        channels: C,
        config: ShardedHostConfig,
        factory: ConfigFactory,
        telemetry: Telemetry,
    ) -> Result<(Self, mpsc::Receiver<HostNotice>), WalError> {
        let shard_count = config.shards.max(1);
        let (notice_tx, notice_rx) = mpsc::channel(config.notice_capacity.max(1));
        let mut shards = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let log_config = match &config.log_dir {
                Some(dir) => {
                    let shard_dir = dir.join(format!("shard-{index:03}"));
                    std::fs::create_dir_all(&shard_dir).map_err(WalError::from)?;
                    ShardLogConfig {
                        dir: Some(shard_dir),
                        segment_max_bytes: config.segment_max_bytes,
                    }
                }
                None => ShardLogConfig {
                    dir: None,
                    segment_max_bytes: config.segment_max_bytes,
                },
            };
            let log = Arc::new(Mutex::new(ShardLog::open(log_config)?));
            let (tx, rx) = mpsc::channel(config.queue_capacity.max(1));
            let depth = Arc::new(AtomicUsize::new(0));
            // Deferred so a threaded worker anchors its clock on its own
            // thread's event loop, not the spawning one's. Everything the
            // closure captures is `Send` — the compile-time proof lives in
            // the `shard_worker_future_is_send` test below.
            let worker_depth = Arc::clone(&depth);
            let worker_channels = channels.clone();
            let worker_telemetry = telemetry.clone();
            let worker_factory = Arc::clone(&factory);
            let worker_notices = notice_tx.clone();
            let batch_max = config.batch_max.max(1);
            let hibernate_after = config.hibernate_after;
            let retirement_grace = config.retirement_grace;
            let completed_ring = config.completed_ring;
            let worker_ledger = config.ledger.clone();
            let worker_rules = config.rules.clone();
            let build = move || Worker {
                rx,
                depth: worker_depth,
                channels: worker_channels,
                clock: RuntimeClock::start(),
                telemetry: worker_telemetry,
                factory: worker_factory,
                notices: worker_notices,
                log,
                roster: HashMap::new(),
                timers: BTreeMap::new(),
                timer_seq: 0,
                next_incarnation: 0,
                touched: BTreeSet::new(),
                folded: MabStats::default(),
                outcomes: Outcomes::default(),
                hibernations: 0,
                rehydrations: 0,
                crashes: 0,
                corrupt_snapshots: 0,
                unrouted: 0,
                batch_max,
                hibernate_after,
                sweep_every: sweep_period(hibernate_after),
                last_sweep: SimTime::ZERO,
                retirement_grace,
                completed_ring,
                ledger: worker_ledger,
                rules: worker_rules,
            };
            let task = if config.threads {
                let thread = std::thread::Builder::new()
                    .name(format!("simba-shard-{index:03}"))
                    .spawn(move || tokio::runtime::block_on(build().run()))
                    .map_err(WalError::from)?;
                ShardTask::Thread(thread)
            } else {
                ShardTask::Local(tokio::spawn(build().run()))
            };
            shards.push(ShardHandle { tx, depth, task });
        }
        let rules = config.rules.clone();
        Ok((ShardedHost { shards, clock: RuntimeClock::start(), rules }, notice_rx))
    }

    /// The attached rules engine, if any.
    pub fn rules(&self) -> Option<&simba_rules::SharedRuleEngine> {
        self.rules.as_ref()
    }

    /// Flushes every digest window whose deadline has passed and routes
    /// each result to the owning user's shard — as an email-borne alert
    /// that bypasses re-evaluation. Call from the runtime's idle tick
    /// (the gateway pumps do); returns how many digests were dispatched.
    pub async fn pump_digests(&self) -> usize {
        let Some(engine) = self.rules.as_ref() else {
            return 0;
        };
        if engine.pending_digests() == 0 {
            return 0;
        }
        let mut dispatched = 0;
        for digest in engine.flush_due(self.clock.now().as_millis()) {
            let user = UserId::new(digest.user.clone());
            let shard = shard_of(&user, self.shards.len());
            if self.send(shard, ShardMsg::Digest(user, digest.to_incoming())).await {
                dispatched += 1;
            }
        }
        dispatched
    }

    /// Worker count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers one user (a roster entry on their shard; no buddy is
    /// built until their first alert).
    pub async fn register(&self, user: UserId) {
        self.register_many(vec![user]).await;
    }

    /// Registers users in bulk, partitioned by shard — the path that
    /// makes a million registrations one message per shard, not a
    /// million round trips.
    pub async fn register_many(&self, users: Vec<UserId>) {
        let mut per_shard: Vec<Vec<UserId>> = vec![Vec::new(); self.shards.len()];
        for user in users {
            per_shard[shard_of(&user, self.shards.len())].push(user);
        }
        for (index, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send(index, ShardMsg::Register(batch)).await;
            }
        }
    }

    /// Routes an IM-borne alert to the owning user's shard. Returns
    /// `false` only when the shard worker is gone; an unregistered user
    /// is counted by the worker under `host.unrouted`.
    pub async fn submit_im(&self, user: &UserId, alert: IncomingAlert) -> bool {
        let shard = shard_of(user, self.shards.len());
        self.send(shard, ShardMsg::Im(user.clone(), alert)).await
    }

    /// Like [`ShardedHost::submit_im`] for an email-borne alert.
    pub async fn submit_email(&self, user: &UserId, alert: IncomingAlert) -> bool {
        let shard = shard_of(user, self.shards.len());
        self.send(shard, ShardMsg::Email(user.clone(), alert)).await
    }

    /// Reports an external user acknowledgement for a delivery attempt.
    pub async fn ack(&self, user: &UserId, delivery: DeliveryId, attempt: AttemptId) {
        let shard = shard_of(user, self.shards.len());
        self.send(shard, ShardMsg::Ack { user: user.clone(), delivery, attempt })
            .await;
    }

    /// Snapshots every shard and merges the results.
    pub async fn snapshot(&self) -> ShardedSnapshot {
        let mut merged = ShardedSnapshot::default();
        for (index, _) in self.shards.iter().enumerate() {
            let (reply_tx, reply_rx) = oneshot::channel();
            if self.send(index, ShardMsg::Snapshot(reply_tx)).await {
                if let Ok(snap) = reply_rx.await {
                    merged.merge(&snap);
                }
            }
        }
        merged
    }

    /// Sum of inbound queue depths across shards (a load signal).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.depth.load(Ordering::Relaxed)).sum()
    }

    /// Test hook: asks the owning shard to hibernate `user` now; resolves
    /// `true` when the buddy was idle and is now a snapshot.
    pub async fn force_hibernate(&self, user: &UserId) -> bool {
        let shard = shard_of(user, self.shards.len());
        let (reply_tx, reply_rx) = oneshot::channel();
        if !self.send(shard, ShardMsg::Hibernate(user.clone(), reply_tx)).await {
            return false;
        }
        reply_rx.await.unwrap_or(false)
    }

    /// Test hook: the user's next processed-mark fails, crashing exactly
    /// that buddy.
    pub async fn inject_mark_failure(&self, user: &UserId) {
        let shard = shard_of(user, self.shards.len());
        self.send(shard, ShardMsg::InjectMarkFailure(user.clone())).await;
    }

    /// Test hook: damages the user's stored hibernation snapshot so the
    /// next activation must take the corrupt-fallback path. Resolves
    /// `true` when a snapshot existed to damage.
    pub async fn corrupt_snapshot(&self, user: &UserId) -> bool {
        let shard = shard_of(user, self.shards.len());
        let (reply_tx, reply_rx) = oneshot::channel();
        if !self.send(shard, ShardMsg::CorruptSnapshot(user.clone(), reply_tx)).await {
            return false;
        }
        reply_rx.await.unwrap_or(false)
    }

    /// Stops every worker (each drains, commits, and compacts nothing
    /// further) and returns the merged final snapshot.
    pub async fn shutdown(self) -> ShardedSnapshot {
        let mut merged = ShardedSnapshot::default();
        for shard in self.shards {
            let (reply_tx, reply_rx) = oneshot::channel();
            shard.depth.fetch_add(1, Ordering::Relaxed);
            if shard.tx.send(ShardMsg::Stop(reply_tx)).await.is_ok() {
                if let Ok(snap) = reply_rx.await {
                    merged.merge(&snap);
                }
            }
            match shard.task {
                ShardTask::Local(task) => {
                    let _ = task.await;
                }
                // The worker replied to Stop and is exiting; the join is
                // a formality, not a wait for work.
                ShardTask::Thread(thread) => {
                    let _ = thread.join();
                }
            }
        }
        merged
    }

    async fn send(&self, shard: usize, msg: ShardMsg) -> bool {
        let handle = &self.shards[shard];
        handle.depth.fetch_add(1, Ordering::Relaxed);
        if handle.tx.send(msg).await.is_err() {
            handle.depth.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

impl std::fmt::Debug for ShardedHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHost")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// Half the hibernation threshold, at least 1 ms: a buddy hibernates no
/// later than 1.5× its idle threshold.
fn sweep_period(hibernate_after: SimDuration) -> SimDuration {
    SimDuration::from_millis((hibernate_after.as_millis() / 2).max(1))
}

/// Field-wise saturating subtraction: removes a rehydrated snapshot's
/// totals from the folded aggregate they were parked in.
fn stats_sub(total: &mut MabStats, part: MabStats) {
    total.received_im = total.received_im.saturating_sub(part.received_im);
    total.received_email = total.received_email.saturating_sub(part.received_email);
    total.acked = total.acked.saturating_sub(part.acked);
    total.rejected = total.rejected.saturating_sub(part.rejected);
    total.routed = total.routed.saturating_sub(part.routed);
    total.unsubscribed = total.unsubscribed.saturating_sub(part.unsubscribed);
    total.deliveries_started = total.deliveries_started.saturating_sub(part.deliveries_started);
    total.replayed = total.replayed.saturating_sub(part.replayed);
    total.remote_commands = total.remote_commands.saturating_sub(part.remote_commands);
    total.retired = total.retired.saturating_sub(part.retired);
    total.mode_overridden = total.mode_overridden.saturating_sub(part.mode_overridden);
}

/// One shard worker: owns its roster, its log, and its timer wheel.
struct Worker<C> {
    rx: mpsc::Receiver<ShardMsg>,
    depth: Arc<AtomicUsize>,
    channels: C,
    clock: RuntimeClock,
    telemetry: Telemetry,
    factory: ConfigFactory,
    notices: mpsc::Sender<HostNotice>,
    log: SharedShardLog,
    roster: HashMap<UserId, UserSlot>,
    /// The central timer wheel: `(deadline, seq)` → entry. Replaces the
    /// per-timer spawned tasks of [`crate::MabService`]; at shard scale,
    /// one `BTreeMap` beats ten thousand sleeping tasks.
    timers: BTreeMap<(SimTime, u64), TimerEntry>,
    timer_seq: u64,
    next_incarnation: u64,
    /// Users that saw events this batch — the retirement-sweep set.
    touched: BTreeSet<UserId>,
    /// Totals of buddies no longer resident: hibernated (subtracted back
    /// at rehydration), crashed, and rejuvenated.
    folded: MabStats,
    outcomes: Outcomes,
    hibernations: u64,
    rehydrations: u64,
    crashes: u64,
    corrupt_snapshots: u64,
    unrouted: u64,
    batch_max: usize,
    hibernate_after: SimDuration,
    sweep_every: SimDuration,
    last_sweep: SimTime,
    retirement_grace: SimDuration,
    completed_ring: usize,
    /// Channel attempts go here instead of `channels` when set.
    ledger: Option<simba_ledger::SharedLedger>,
    /// Registered users' alerts run through this engine before routing.
    rules: Option<simba_rules::SharedRuleEngine>,
}

enum Flow {
    Continue,
    Stop(oneshot::Sender<ShardedSnapshot>),
}

impl<C: Channels> Worker<C> {
    /// Exclusive access to the shard log (uncontended: only this worker
    /// and its buddies' WAL facades — same thread — ever lock it).
    fn lock_log(&self) -> MutexGuard<'_, ShardLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    async fn run(mut self) {
        // Startup replay demand: any user with unprocessed records gets a
        // buddy (auto-registered — the log proves they existed) whose
        // `recover()` replays them before new traffic is accepted.
        let now = self.clock.now();
        self.last_sweep = now;
        let mut staged = Vec::new();
        let demand = self.lock_log().users_with_unprocessed();
        for user in demand {
            self.roster.entry(user.clone()).or_insert(UserSlot::Fresh);
            self.activate(&user, now, &mut staged);
        }
        self.finish_batch(staged, now);

        loop {
            let wait = self.idle_wait();
            let inbound = tokio::time::timeout(wait, self.rx.recv()).await;
            let now = self.clock.now();
            let mut staged = Vec::new();
            let mut stop = None;
            match inbound {
                Ok(Some(msg)) => {
                    let mut drained = 1usize;
                    match self.handle_msg(msg, now, &mut staged) {
                        Flow::Stop(reply) => stop = Some(reply),
                        Flow::Continue => {
                            while stop.is_none() && drained < self.batch_max {
                                match self.rx.try_recv() {
                                    Ok(msg) => {
                                        drained += 1;
                                        if let Flow::Stop(reply) =
                                            self.handle_msg(msg, now, &mut staged)
                                        {
                                            stop = Some(reply);
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    self.depth.fetch_sub(drained, Ordering::Relaxed);
                }
                Ok(None) => {
                    // Front door dropped without shutdown: make what we
                    // have durable and exit.
                    let _ = self.commit_once();
                    return;
                }
                Err(_) => {} // idle tick: timers and sweeps only
            }
            self.fire_due_timers(now, &mut staged);
            self.finish_batch(staged, now);
            self.maybe_sweep(now);
            if let Some(reply) = stop {
                self.retire_all(now);
                let _ = self.commit_once();
                let _ = reply.send(self.shard_snapshot());
                return;
            }
        }
    }

    /// Time until the next timer deadline or hibernation sweep, clamped
    /// to [1 ms, 1 s] so the worker stays responsive without spinning.
    fn idle_wait(&self) -> Duration {
        let now = self.clock.now();
        let mut deadline = self.last_sweep + self.sweep_every;
        if let Some(((at, _), _)) = self.timers.iter().next() {
            if *at < deadline {
                deadline = *at;
            }
        }
        Duration::from_millis(deadline.since(now).as_millis().clamp(1, 1_000))
    }

    fn handle_msg(
        &mut self,
        msg: ShardMsg,
        now: SimTime,
        staged: &mut Vec<(UserId, MabCommand)>,
    ) -> Flow {
        match msg {
            ShardMsg::Register(users) => {
                if self.telemetry.enabled() && !users.is_empty() {
                    self.telemetry.metrics().counter("host.users").add(users.len() as u64);
                }
                for user in users {
                    self.roster.entry(user).or_insert(UserSlot::Fresh);
                }
            }
            ShardMsg::Im(user, alert) => {
                if let Some(alert) = self.apply_rules(&user, alert, now, staged) {
                    self.route(user, MabEvent::AlertByIm(alert), now, staged);
                }
            }
            ShardMsg::Email(user, alert) => {
                if let Some(alert) = self.apply_rules(&user, alert, now, staged) {
                    self.route(user, MabEvent::AlertByEmail(alert), now, staged);
                }
            }
            ShardMsg::Digest(user, alert) => {
                // Deliberately no apply_rules: digests never re-enter
                // evaluation.
                self.route(user, MabEvent::AlertByEmail(alert), now, staged);
            }
            ShardMsg::Ack { user, delivery, attempt } => {
                let live = matches!(
                    self.roster.get(&user),
                    Some(UserSlot::Active(active)) if active.mab.delivery_status(delivery).is_some()
                );
                if live {
                    self.touch(&user, now);
                    self.feed(
                        &user,
                        MabEvent::Delivery { id: delivery, event: DeliveryEvent::Acked { attempt } },
                        now,
                        staged,
                    );
                } else if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("runtime.stale_dropped").incr();
                }
            }
            ShardMsg::Snapshot(reply) => {
                self.retire_all(now);
                let _ = reply.send(self.shard_snapshot());
            }
            ShardMsg::Hibernate(user, reply) => {
                let _ = reply.send(self.try_hibernate(&user, now));
            }
            ShardMsg::InjectMarkFailure(user) => {
                self.lock_log().inject_mark_failure(&user);
            }
            ShardMsg::CorruptSnapshot(user, reply) => {
                let damaged = match self.roster.get_mut(&user) {
                    Some(UserSlot::Hibernated(bytes)) if !bytes.is_empty() => {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0x01;
                        true
                    }
                    _ => false,
                };
                let _ = reply.send(damaged);
            }
            ShardMsg::Stop(reply) => return Flow::Stop(reply),
        }
        Flow::Continue
    }

    /// Runs one registered user's alert through the rules engine. `Some`
    /// means route it (urgency possibly rewritten); `None` means a rule
    /// consumed it. Unregistered users bypass evaluation so [`Self::route`]
    /// still counts them unrouted — rules never absorb unhosted traffic.
    /// A digest forced out early (count cap, severity escalation) is
    /// routed inline as an email-borne alert, bypassing re-evaluation.
    fn apply_rules(
        &mut self,
        user: &UserId,
        mut alert: IncomingAlert,
        now: SimTime,
        staged: &mut Vec<(UserId, MabCommand)>,
    ) -> Option<IncomingAlert> {
        let Some(engine) = self.rules.clone() else {
            return Some(alert);
        };
        if !self.roster.contains_key(user) {
            return Some(alert);
        }
        match engine.evaluate(&user.0, &alert, now.as_millis()) {
            simba_rules::Decision::Deliver { severity, .. } => {
                if let Some(severity) = severity {
                    alert.urgency = severity;
                }
                Some(alert)
            }
            simba_rules::Decision::Suppress { .. } => None,
            simba_rules::Decision::Digest { flushed, .. } => {
                if let Some(digest) = flushed {
                    let owner = UserId::new(digest.user.clone());
                    self.route(owner, MabEvent::AlertByEmail(digest.to_incoming()), now, staged);
                }
                None
            }
        }
    }

    /// The routing step: activate (rehydrating if hibernated) and feed.
    fn route(
        &mut self,
        user: UserId,
        event: MabEvent,
        now: SimTime,
        staged: &mut Vec<(UserId, MabCommand)>,
    ) {
        if !self.roster.contains_key(&user) {
            self.unrouted += 1;
            if self.telemetry.enabled() {
                self.telemetry.metrics().counter("host.unrouted").incr();
            }
            return;
        }
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("host.routed").incr();
        }
        self.activate(&user, now, staged);
        self.touch(&user, now);
        self.feed(&user, event, now, staged);
    }

    fn touch(&mut self, user: &UserId, now: SimTime) {
        self.touched.insert(user.clone());
        if let Some(UserSlot::Active(active)) = self.roster.get_mut(user) {
            active.last_event_at = now;
        }
    }

    /// Ensures `user` is resident: rehydrates a hibernated snapshot
    /// (falling back to a fresh buddy on corruption — the shard log, not
    /// the snapshot, is the source of truth) or builds a fresh buddy, then
    /// runs the §4.2.1 restart protocol and stages its replay commands.
    fn activate(&mut self, user: &UserId, now: SimTime, staged: &mut Vec<(UserId, MabCommand)>) {
        match self.roster.get(user) {
            None | Some(UserSlot::Active(_)) => return,
            Some(UserSlot::Fresh | UserSlot::Hibernated(_)) => {}
        }
        let prev = self.roster.insert(user.clone(), UserSlot::Fresh);
        let wal = UserShardWal::new(Arc::clone(&self.log), user.clone());
        let mut mab = match prev {
            Some(UserSlot::Hibernated(bytes)) => match BuddySnapshot::decode(&bytes) {
                Ok(snap) if snap.user == *user => {
                    stats_sub(&mut self.folded, snap.stats);
                    self.rehydrations += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("host.rehydrated").incr();
                    }
                    MyAlertBuddy::rehydrate((self.factory)(user), wal, &snap, now)
                }
                _ => {
                    // Corrupt, truncated, or foreign snapshot: counters are
                    // lost (they stay folded), deliveries are not — the
                    // fresh buddy replays its shard-log records below.
                    self.corrupt_snapshots += 1;
                    if self.telemetry.enabled() {
                        self.telemetry.metrics().counter("host.snapshot_corrupt").incr();
                    }
                    MyAlertBuddy::new((self.factory)(user), wal, now)
                }
            },
            _ => MyAlertBuddy::new((self.factory)(user), wal, now),
        };
        mab.set_retirement(self.retirement_grace, self.completed_ring);
        mab.set_telemetry(self.telemetry.clone());
        let recovery = mab.recover(now);
        staged.extend(recovery.into_iter().map(|cmd| (user.clone(), cmd)));
        if mab.is_crashed() {
            // Replay itself crashed the buddy (e.g. an injected mark
            // failure): fold it and leave the slot Fresh for the next
            // activation to retry.
            self.fold_crash(user, mab.stats());
            return;
        }
        self.touched.insert(user.clone());
        let incarnation = self.next_incarnation;
        self.next_incarnation += 1;
        self.roster.insert(
            user.clone(),
            UserSlot::Active(Box::new(ActiveBuddy { mab, incarnation, last_event_at: now })),
        );
    }

    fn fold_crash(&mut self, user: &UserId, stats: MabStats) {
        self.folded.merge(stats);
        self.crashes += 1;
        self.roster.insert(user.clone(), UserSlot::Fresh);
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("host.buddy_crashed").incr();
        }
    }

    /// Feeds one event through a resident buddy, staging its commands. A
    /// crash crashes that buddy alone: stats fold, the slot resets, and a
    /// fresh incarnation immediately replays the user's log records — the
    /// shard worker never stops.
    fn feed(
        &mut self,
        user: &UserId,
        event: MabEvent,
        now: SimTime,
        staged: &mut Vec<(UserId, MabCommand)>,
    ) {
        let Some(UserSlot::Active(active)) = self.roster.get_mut(user) else {
            return;
        };
        let commands = active.mab.handle(event, now);
        let crashed = active.mab.is_crashed().then(|| active.mab.stats());
        staged.extend(commands.into_iter().map(|cmd| (user.clone(), cmd)));
        if let Some(stats) = crashed {
            self.fold_crash(user, stats);
            self.activate(user, now, staged);
        }
    }

    /// Fires every due timer-wheel entry; entries whose incarnation no
    /// longer matches the resident buddy are stale and dropped.
    fn fire_due_timers(&mut self, now: SimTime, staged: &mut Vec<(UserId, MabCommand)>) {
        while let Some(((at, seq), entry)) = self.timers.pop_first() {
            if at > now {
                self.timers.insert((at, seq), entry);
                break;
            }
            let current = matches!(
                self.roster.get(&entry.user),
                Some(UserSlot::Active(active)) if active.incarnation == entry.incarnation
            );
            if !current {
                if self.telemetry.enabled() {
                    self.telemetry.metrics().counter("runtime.stale_dropped").incr();
                }
                continue;
            }
            let event = match entry.fire {
                TimerFire::Block(timer) => DeliveryEvent::TimerFired { timer },
                TimerFire::Ack(attempt) => DeliveryEvent::Acked { attempt },
            };
            self.touched.insert(entry.user.clone());
            self.feed(
                &entry.user,
                MabEvent::Delivery { id: entry.delivery, event },
                now,
                staged,
            );
        }
    }

    /// Phases 2 and 3: one group commit, then release the staged effects.
    /// Restarted buddies' replay commands loop back through another
    /// commit+execute round, so their marks are durable too.
    fn finish_batch(&mut self, staged: Vec<(UserId, MabCommand)>, now: SimTime) {
        let mut staged = staged;
        let mut rounds = 0usize;
        loop {
            let dirty = self.lock_log().is_dirty();
            if staged.is_empty() && !dirty {
                break;
            }
            if self.commit_once().is_err() {
                // The batch is not durable: withhold every staged effect
                // (no acks, no sends). The buffered tail stays pending and
                // is retried with the next batch's commit.
                staged.clear();
                break;
            }
            if staged.is_empty() {
                break;
            }
            let batch = std::mem::take(&mut staged);
            let restarts = self.execute(batch, now);
            for user in restarts {
                if let Some(UserSlot::Active(active)) = self.roster.get_mut(&user) {
                    let stats = active.mab.stats();
                    self.folded.merge(stats);
                    self.roster.insert(user.clone(), UserSlot::Fresh);
                    self.activate(&user, now, &mut staged);
                }
            }
            rounds += 1;
            if rounds >= 8 {
                break;
            }
        }
        self.retire_touched(now);
        if self.telemetry.enabled() {
            self.telemetry
                .metrics()
                .gauge("host.shard_depth")
                .set(self.depth.load(Ordering::Relaxed) as u64);
        }
    }

    /// One [`ShardLog::commit`] (a no-op when clean), with the commit and
    /// rotation counters surfaced as `host.*` metrics.
    fn commit_once(&mut self) -> Result<(), WalError> {
        let (before, result, after) = {
            let mut log = self.lock_log();
            let before = log.stats();
            // simba-analyze: allow(concurrency.blocking-under-guard): group commit is the WAL's durability point, and the log lock is uncontended (worker-thread-only) by design
            let result = log.commit();
            let after = log.stats();
            (before, result, after)
        };
        if self.telemetry.enabled() {
            let commits = after.group_commits.saturating_sub(before.group_commits);
            if commits > 0 {
                self.telemetry.metrics().counter("host.group_commits").add(commits);
            }
            let rotations = after.segments_rotated.saturating_sub(before.segments_rotated);
            if rotations > 0 {
                self.telemetry.metrics().counter("host.segments_rotated").add(rotations);
            }
            if result.is_err() {
                self.telemetry.metrics().counter("host.commit_failed").incr();
            }
        }
        result
    }

    /// Phase 3: acks and notices go out, sends hit the channels and their
    /// outcomes feed straight back into the owning buddy (fallback blocks
    /// run immediately; ack windows and block timers go on the wheel).
    /// Returns users whose buddy requested rejuvenation — the caller
    /// restarts them (the worker plays the MDC role at shard scale).
    fn execute(&mut self, batch: Vec<(UserId, MabCommand)>, now: SimTime) -> Vec<UserId> {
        let mut rejuvenating = Vec::new();
        let mut queue = batch;
        while !queue.is_empty() {
            let mut follow = Vec::new();
            for (user, command) in queue {
                match command {
                    MabCommand::AckIm { to, .. } => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.acks_sent").incr();
                        }
                        self.notify(user, RuntimeNotice::AckSent { source: to });
                    }
                    MabCommand::Rejuvenate(trigger) => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics().counter("runtime.rejuvenations").incr();
                        }
                        self.notify(user.clone(), RuntimeNotice::Rejuvenating(trigger));
                        rejuvenating.push(user);
                    }
                    MabCommand::Channel { delivery, command, .. } => match command {
                        DeliveryCommand::Send {
                            attempt, comm_type, address_value, text, ..
                        } => {
                            if let Some(ledger) = &self.ledger {
                                // Ledger-owned attempt: durable enqueue,
                                // acknowledge the handoff, and let the
                                // worker pool own send/retry/dead-letter.
                                let accepted = {
                                    let mut guard =
                                        ledger.lock().unwrap_or_else(PoisonError::into_inner);
                                    guard.enqueue(
                                        &user,
                                        delivery.0,
                                        comm_type,
                                        &address_value,
                                        &text,
                                        now,
                                    );
                                    // simba-analyze: allow(concurrency.blocking-under-guard): enqueue+commit is the atomic handoff to the delivery workers; the guard scope IS the durability point
                                    guard.commit().is_ok()
                                };
                                if self.telemetry.enabled() {
                                    self.telemetry.metrics().counter("runtime.sends").incr();
                                }
                                let event = if accepted {
                                    DeliveryEvent::SendAccepted { attempt }
                                } else {
                                    DeliveryEvent::SendFailed {
                                        attempt,
                                        failure:
                                            simba_core::delivery::SendFailure::ChannelDown,
                                    }
                                };
                                self.feed(
                                    &user,
                                    MabEvent::Delivery { id: delivery, event },
                                    now,
                                    &mut follow,
                                );
                                continue;
                            }
                            let outcome = self.channels.send(comm_type, &address_value, &text);
                            if self.telemetry.enabled() {
                                self.telemetry.metrics().counter("runtime.sends").incr();
                            }
                            let event = match outcome {
                                // simba-analyze: allow(durability.ack-before-commit): direct (unledgered) send path — this mirrors the adapter's synchronous accept; durable-before-ack applies to the ledgered path
                                SendOutcome::Accepted => DeliveryEvent::SendAccepted { attempt },
                                SendOutcome::AcceptedWithAck(after) => {
                                    self.schedule(
                                        &user,
                                        delivery,
                                        TimerFire::Ack(attempt),
                                        SimDuration::from_millis(after.as_millis() as u64),
                                        now,
                                    );
                                    // simba-analyze: allow(durability.ack-before-commit): direct (unledgered) send path — the adapter accepted synchronously
                                    DeliveryEvent::SendAccepted { attempt }
                                }
                                SendOutcome::Failed(failure) => {
                                    DeliveryEvent::SendFailed { attempt, failure }
                                }
                            };
                            self.feed(
                                &user,
                                MabEvent::Delivery { id: delivery, event },
                                now,
                                &mut follow,
                            );
                        }
                        DeliveryCommand::StartTimer { timer, after } => {
                            self.schedule(&user, delivery, TimerFire::Block(timer), after, now);
                        }
                    },
                }
            }
            queue = follow;
        }
        rejuvenating
    }

    fn schedule(
        &mut self,
        user: &UserId,
        delivery: DeliveryId,
        fire: TimerFire,
        after: SimDuration,
        now: SimTime,
    ) {
        let Some(UserSlot::Active(active)) = self.roster.get(user) else {
            return;
        };
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.insert(
            (now + after, seq),
            TimerEntry { user: user.clone(), delivery, fire, incarnation: active.incarnation },
        );
    }

    /// Retires due terminal deliveries on every buddy touched this batch,
    /// counting outcomes and emitting one `DeliveryFinished` per retired
    /// delivery.
    fn retire_touched(&mut self, now: SimTime) {
        let touched = std::mem::take(&mut self.touched);
        for user in touched {
            self.retire_user(&user, now);
        }
    }

    fn retire_all(&mut self, now: SimTime) {
        let users: Vec<UserId> = self
            .roster
            .iter()
            .filter(|(_, slot)| matches!(slot, UserSlot::Active(_)))
            .map(|(user, _)| user.clone())
            .collect();
        for user in users {
            self.retire_user(&user, now);
        }
    }

    fn retire_user(&mut self, user: &UserId, now: SimTime) {
        let retired = match self.roster.get_mut(user) {
            Some(UserSlot::Active(active)) => active.mab.retire_terminal(now),
            _ => return,
        };
        self.note_retired(user, retired);
    }

    fn note_retired(&mut self, user: &UserId, retired: Vec<RetiredDelivery>) {
        for summary in retired {
            match summary.status {
                DeliveryStatus::Acked { .. } => self.outcomes.acked += 1,
                DeliveryStatus::Unconfirmed { .. } => self.outcomes.unconfirmed += 1,
                DeliveryStatus::Exhausted { .. } => self.outcomes.exhausted += 1,
                DeliveryStatus::InProgress => {}
            }
            self.notify(
                user.clone(),
                RuntimeNotice::DeliveryFinished { delivery: summary.id, status: summary.status },
            );
        }
    }

    /// The hibernation sweep: every `sweep_every`, buddies idle past the
    /// threshold are retired-then-hibernated.
    fn maybe_sweep(&mut self, now: SimTime) {
        if self.hibernate_after == SimDuration::ZERO || now.since(self.last_sweep) < self.sweep_every
        {
            return;
        }
        self.last_sweep = now;
        let due: Vec<UserId> = self
            .roster
            .iter()
            .filter_map(|(user, slot)| match slot {
                UserSlot::Active(active)
                    if now.since(active.last_event_at) >= self.hibernate_after =>
                {
                    Some(user.clone())
                }
                _ => None,
            })
            .collect();
        for user in due {
            self.try_hibernate(&user, now);
        }
    }

    /// Retires leftovers, then hibernates `user` if idle. Counters park in
    /// the folded aggregate (and are subtracted back out at rehydration,
    /// so totals are never double-counted).
    fn try_hibernate(&mut self, user: &UserId, now: SimTime) -> bool {
        self.retire_user(user, now);
        let Some(UserSlot::Active(active)) = self.roster.get(user) else {
            return false;
        };
        let Some(snapshot) = active.mab.hibernate(user, now) else {
            return false;
        };
        let bytes = snapshot.encode().into_boxed_slice();
        self.folded.merge(snapshot.stats);
        self.hibernations += 1;
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("host.hibernated").incr();
        }
        self.roster.insert(user.clone(), UserSlot::Hibernated(bytes));
        true
    }

    fn notify(&self, user: UserId, notice: RuntimeNotice) {
        if self.notices.try_send(HostNotice { user, notice }).is_err()
            && self.telemetry.enabled()
        {
            self.telemetry.metrics().counter("host.notice_dropped").incr();
        }
    }

    fn shard_snapshot(&self) -> ShardedSnapshot {
        let mut snap = ShardedSnapshot {
            users: self.roster.len(),
            stats: self.folded,
            acked: self.outcomes.acked,
            unconfirmed: self.outcomes.unconfirmed,
            exhausted: self.outcomes.exhausted,
            hibernations: self.hibernations,
            rehydrations: self.rehydrations,
            crashes: self.crashes,
            corrupt_snapshots: self.corrupt_snapshots,
            unrouted: self.unrouted,
            log: self.lock_log().stats(),
            ..ShardedSnapshot::default()
        };
        for slot in self.roster.values() {
            match slot {
                UserSlot::Active(active) => {
                    snap.active += 1;
                    snap.stats.merge(active.mab.stats());
                    snap.in_flight += active.mab.in_flight();
                    snap.tracked += active.mab.tracked();
                }
                UserSlot::Hibernated(_) => snap.hibernated += 1,
                UserSlot::Fresh => {}
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time proof that shard-worker futures can cross onto their
    /// dedicated OS threads: `run()`'s future must be `Send` for every
    /// `Channels` impl, and everything a `ShardMsg` carries must be too.
    /// Regressing any buddy internals to `Rc`/`RefCell` (PR 6's hot-path
    /// shape) fails this function's type-check, not a runtime test.
    #[test]
    fn shard_worker_future_is_send() {
        fn assert_send<T: Send>() {}
        #[allow(dead_code)]
        fn worker_run_is_send<C: Channels + Clone>(worker: Worker<C>) {
            fn assert_future_send<F: std::future::Future + Send>(_: &F) {}
            let future = worker.run();
            assert_future_send(&future);
            drop(future);
        }
        assert_send::<ShardMsg>();
        assert_send::<ActiveBuddy>();
        assert_send::<ShardedHostConfig>();
    }

    #[test]
    fn shard_assignment_is_stable_and_spread() {
        let a = UserId::new("alice");
        assert_eq!(shard_of(&a, 8), shard_of(&a, 8));
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            seen.insert(shard_of(&UserId::new(format!("user{i}")), 8));
        }
        assert_eq!(seen.len(), 8, "256 users should reach all 8 shards");
    }

    #[test]
    fn sweep_period_is_half_threshold_with_floor() {
        assert_eq!(sweep_period(SimDuration::from_millis(100)), SimDuration::from_millis(50));
        assert_eq!(sweep_period(SimDuration::ZERO), SimDuration::from_millis(1));
    }

    #[test]
    fn stats_subtraction_reverses_merge() {
        let mut total = MabStats { received_im: 5, acked: 5, routed: 4, ..MabStats::default() };
        let part = MabStats { received_im: 2, acked: 2, routed: 1, ..MabStats::default() };
        let mut merged = total;
        merged.merge(part);
        stats_sub(&mut merged, part);
        assert_eq!(merged, total);
        // Saturation, never underflow.
        stats_sub(&mut total, MabStats { received_im: 99, ..MabStats::default() });
        assert_eq!(total.received_im, 0);
    }
}
