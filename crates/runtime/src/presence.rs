//! Presence-aware routing backed by the soft-state store.
//!
//! [`StoreModeSelector`] is the runtime's [`ModeSelector`]: at delivery
//! start it reads the user's `presence/<user>` fact and the
//! `chanhealth/<channel>` facts out of a [`SoftStateStore`] and distills
//! them into the [`RoutingContext`] the core's `apply_routing` consumes.
//! Expired facts read through the store are removed and never returned,
//! so an unrefreshed presence automatically decays back to the static
//! profile — no unsubscription protocol needed, exactly the soft-state
//! argument of the paper's §5 integration.

use crate::clock::RuntimeClock;
use simba_core::routing::{ModeSelector, PresenceHint, RoutingContext};
use simba_core::subscription::UserId;
use simba_core::CommType;
use simba_sim::{SimDuration, SimTime};
use simba_store::{SoftStateStore, CHANHEALTH_SCOPE, PRESENCE_SCOPE};
pub use simba_store::HEALTHY_VALUE;

/// The `chanhealth` key for a channel type (`im` / `sms` / `email`).
pub fn chanhealth_key(comm_type: CommType) -> &'static str {
    match comm_type {
        CommType::Im => "im",
        CommType::Sms => "sms",
        CommType::Email => "email",
    }
}

/// A [`ModeSelector`] that consults the soft-state store. Cheap to
/// clone; reads are at most four shard-lock acquisitions per delivery
/// start. Time comes from the caller (the buddy passes its service
/// clock's `now`), so paused-time tests stay deterministic.
#[derive(Debug, Clone)]
pub struct StoreModeSelector {
    store: SoftStateStore,
}

impl StoreModeSelector {
    /// Builds a selector reading `store`.
    pub fn new(store: SoftStateStore) -> Self {
        StoreModeSelector { store }
    }

    /// The context as of an explicit instant.
    pub fn context_at(&self, user: &UserId, now: SimTime) -> RoutingContext {
        let presence = self
            .store
            .get(PRESENCE_SCOPE, &user.0, now)
            .and_then(|fact| PresenceHint::from_value(&fact.value));
        let unhealthy = [CommType::Im, CommType::Sms, CommType::Email]
            .into_iter()
            .filter(|&ty| {
                self.store
                    .get(CHANHEALTH_SCOPE, chanhealth_key(ty), now)
                    .is_some_and(|fact| fact.value != HEALTHY_VALUE)
            })
            .collect();
        RoutingContext { presence, unhealthy }
    }
}

impl ModeSelector for StoreModeSelector {
    fn context(&self, user: &UserId, now: SimTime) -> RoutingContext {
        self.context_at(user, now)
    }
}

/// Spawns the periodic TTL sweeper: every `period` of runtime time the
/// store drops its expired facts. Driven by [`RuntimeClock`], so under a
/// paused tokio runtime the sweeps land at deterministic instants. Abort
/// the handle to stop sweeping (dropping the store does not).
pub fn spawn_sweeper(
    store: SoftStateStore,
    clock: RuntimeClock,
    period: SimDuration,
) -> tokio::task::JoinHandle<()> {
    let period = std::time::Duration::from_millis(period.as_millis().max(1));
    tokio::spawn(async move {
        loop {
            tokio::time::sleep(period).await;
            store.sweep(clock.now());
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::StoreConfig;
    use simba_telemetry::Telemetry;

    #[test]
    fn live_facts_shape_the_context() {
        let store = SoftStateStore::new(StoreConfig::default(), Telemetry::disabled());
        let selector = StoreModeSelector::new(store.clone());
        let user = UserId::new("alice");
        let t0 = SimTime::ZERO;

        assert!(selector.context_at(&user, t0).is_empty());

        store.put(PRESENCE_SCOPE, "alice", "away", SimDuration::from_secs(30), "wish", t0);
        store.put(CHANHEALTH_SCOPE, "sms", "degraded", SimDuration::from_secs(30), "net", t0);
        store.put(CHANHEALTH_SCOPE, "email", "healthy", SimDuration::from_secs(30), "net", t0);

        let ctx = selector.context_at(&user, SimTime::from_secs(1));
        assert_eq!(ctx.presence, Some(PresenceHint::Away));
        assert!(ctx.unhealthy.contains(&CommType::Sms));
        assert!(!ctx.unhealthy.contains(&CommType::Email));

        // Past the TTL every fact decays; the context empties out.
        assert!(selector.context_at(&user, SimTime::from_secs(31)).is_empty());
    }

    #[test]
    fn unparseable_presence_is_ignored() {
        let store = SoftStateStore::new(StoreConfig::default(), Telemetry::disabled());
        let selector = StoreModeSelector::new(store.clone());
        store.put(PRESENCE_SCOPE, "alice", "gone fishing", SimDuration::from_secs(30), "wish", SimTime::ZERO);
        let ctx = selector.context_at(&UserId::new("alice"), SimTime::from_secs(1));
        assert!(ctx.presence.is_none());
    }

    #[tokio::test(start_paused = true)]
    async fn sweeper_expires_facts_on_schedule() {
        let store = SoftStateStore::new(StoreConfig::default(), Telemetry::disabled());
        let clock = RuntimeClock::start();
        store.put(PRESENCE_SCOPE, "alice", "away", SimDuration::from_secs(2), "wish", clock.now());
        let sweeper = spawn_sweeper(store.clone(), clock, SimDuration::from_secs(1));

        tokio::time::sleep(std::time::Duration::from_millis(1500)).await;
        assert_eq!(store.len(), 1, "fact still live before its TTL");
        tokio::time::sleep(std::time::Duration::from_millis(1600)).await;
        assert_eq!(store.len(), 0, "sweeper dropped the expired fact");
        sweeper.abort();
    }
}
