//! Mapping wall-clock time onto [`SimTime`].

use simba_sim::SimTime;
use tokio::time::Instant;

/// A monotonically increasing clock anchored at service start.
///
/// Under `tokio::time::pause()` the clock follows tokio's virtual time,
/// which makes live-runtime tests as deterministic as the simulation.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeClock {
    epoch: Instant,
}

impl RuntimeClock {
    /// Anchors the clock at the current instant.
    pub fn start() -> Self {
        RuntimeClock {
            epoch: Instant::now(),
        }
    }

    /// Milliseconds elapsed since the anchor, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.epoch.elapsed().as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[tokio::test(start_paused = true)]
    async fn clock_follows_tokio_time() {
        let clock = RuntimeClock::start();
        assert_eq!(clock.now(), SimTime::ZERO);
        tokio::time::advance(Duration::from_millis(1_500)).await;
        assert_eq!(clock.now(), SimTime::from_millis(1_500));
        tokio::time::advance(Duration::from_secs(60)).await;
        assert_eq!(clock.now(), SimTime::from_millis(61_500));
    }
}
