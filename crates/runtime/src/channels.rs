//! Channel adapters for the live runtime.

use simba_core::address::CommType;
use simba_core::delivery::SendFailure;
use std::collections::HashMap;
use std::time::Duration;

/// What a channel did with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; no acknowledgement will follow (SMS, email).
    Accepted,
    /// Accepted; an end-to-end acknowledgement will arrive after roughly
    /// this long (IM to a present user). The service turns this into a
    /// delayed `Acked` event.
    AcceptedWithAck(Duration),
    /// Rejected synchronously.
    Failed(SendFailure),
}

/// A pluggable set of outbound channels.
///
/// Implementations must be cheap and non-blocking: transit time is
/// expressed through [`SendOutcome::AcceptedWithAck`] or simply by the
/// receiving side, never by blocking the service loop.
pub trait Channels: Send + 'static {
    /// Submits `text` to `address` over `comm_type`.
    fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome;
}

/// A cloneable wrapper sharing one [`Channels`] implementation between
/// several services — the shape a multi-tenant [`crate::MabHost`] needs,
/// where every per-user service sends through the same gateway adapters.
///
/// Sends are serialized by a mutex; that matches the [`Channels`]
/// contract (cheap, non-blocking submissions), so contention stays low
/// even with many tenants.
#[derive(Debug)]
pub struct SharedChannels<C> {
    inner: std::sync::Arc<std::sync::Mutex<C>>,
}

impl<C> Clone for SharedChannels<C> {
    fn clone(&self) -> Self {
        SharedChannels { inner: std::sync::Arc::clone(&self.inner) }
    }
}

impl<C: Channels> SharedChannels<C> {
    /// Wraps `channels` for sharing.
    pub fn new(channels: C) -> Self {
        SharedChannels { inner: std::sync::Arc::new(std::sync::Mutex::new(channels)) }
    }

    /// Runs `f` with the wrapped adapter (e.g. to script outcomes or
    /// inspect a loopback's sent log mid-test).
    pub fn with<R>(&self, f: impl FnOnce(&mut C) -> R) -> R {
        // A panic mid-`send` in another tenant must not take the whole
        // host down with it: recover the adapter and keep sending.
        f(&mut self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<C: Channels> Channels for SharedChannels<C> {
    fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .send(comm_type, address, text)
    }
}

/// An in-process adapter for demos and tests: per-address scripted
/// behaviour with a configurable default.
#[derive(Debug)]
pub struct LoopbackChannels {
    default: SendOutcome,
    per_address: HashMap<String, SendOutcome>,
    sent: Vec<(CommType, String, String)>,
}

impl LoopbackChannels {
    /// Every send is accepted; IM sends ack after `ack_after`.
    pub fn always_ack(ack_after: Duration) -> Self {
        LoopbackChannels {
            default: SendOutcome::AcceptedWithAck(ack_after),
            per_address: HashMap::new(),
            sent: Vec::new(),
        }
    }

    /// Every send is accepted with no acks (fire-and-forget world).
    pub fn accept_all() -> Self {
        LoopbackChannels {
            default: SendOutcome::Accepted,
            per_address: HashMap::new(),
            sent: Vec::new(),
        }
    }

    /// Scripts the outcome for a specific address.
    pub fn script(&mut self, address: impl Into<String>, outcome: SendOutcome) {
        self.per_address.insert(address.into(), outcome);
    }

    /// Everything sent so far, in order: `(channel, address, text)`.
    pub fn sent(&self) -> &[(CommType, String, String)] {
        &self.sent
    }
}

impl Channels for LoopbackChannels {
    fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome {
        self.sent
            .push((comm_type, address.to_string(), text.to_string()));
        let outcome = self
            .per_address
            .get(address)
            .copied()
            .unwrap_or(self.default);
        match (comm_type, outcome) {
            // Only IM can carry acknowledgements (§3.1); a scripted ack on
            // an ack-less channel degrades to plain acceptance.
            (CommType::Im, o) => o,
            (_, SendOutcome::AcceptedWithAck(_)) => SendOutcome::Accepted,
            (_, o) => o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_scripted_outcomes() {
        let mut c = LoopbackChannels::always_ack(Duration::from_millis(100));
        c.script("im:broken", SendOutcome::Failed(SendFailure::RecipientUnreachable));
        assert_eq!(
            c.send(CommType::Im, "im:alice", "hi"),
            SendOutcome::AcceptedWithAck(Duration::from_millis(100))
        );
        assert_eq!(
            c.send(CommType::Im, "im:broken", "hi"),
            SendOutcome::Failed(SendFailure::RecipientUnreachable)
        );
        assert_eq!(c.sent().len(), 2);
    }

    #[test]
    fn non_im_channels_never_ack() {
        let mut c = LoopbackChannels::always_ack(Duration::from_millis(100));
        assert_eq!(c.send(CommType::Email, "a@b", "hi"), SendOutcome::Accepted);
        assert_eq!(c.send(CommType::Sms, "+1", "hi"), SendOutcome::Accepted);
    }

    #[test]
    fn accept_all_has_no_acks() {
        let mut c = LoopbackChannels::accept_all();
        assert_eq!(c.send(CommType::Im, "im:x", "hi"), SendOutcome::Accepted);
    }

    #[test]
    fn shared_channels_fan_in_to_one_adapter() {
        let shared = SharedChannels::new(LoopbackChannels::accept_all());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.send(CommType::Im, "im:a", "hi");
        b.send(CommType::Email, "b@c", "yo");
        assert_eq!(shared.with(|c| c.sent().len()), 2);
    }
}
