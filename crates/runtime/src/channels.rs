//! Channel adapters for the live runtime.

use simba_core::address::CommType;
use simba_core::delivery::SendFailure;
use std::collections::HashMap;
use std::time::Duration;

/// What a channel did with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; no acknowledgement will follow (SMS, email).
    Accepted,
    /// Accepted; an end-to-end acknowledgement will arrive after roughly
    /// this long (IM to a present user). The service turns this into a
    /// delayed `Acked` event.
    AcceptedWithAck(Duration),
    /// Rejected synchronously.
    Failed(SendFailure),
}

/// A pluggable set of outbound channels.
///
/// Implementations must be cheap and non-blocking: transit time is
/// expressed through [`SendOutcome::AcceptedWithAck`] or simply by the
/// receiving side, never by blocking the service loop.
pub trait Channels: Send + 'static {
    /// Submits `text` to `address` over `comm_type`.
    fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome;
}

/// An in-process adapter for demos and tests: per-address scripted
/// behaviour with a configurable default.
#[derive(Debug)]
pub struct LoopbackChannels {
    default: SendOutcome,
    per_address: HashMap<String, SendOutcome>,
    sent: Vec<(CommType, String, String)>,
}

impl LoopbackChannels {
    /// Every send is accepted; IM sends ack after `ack_after`.
    pub fn always_ack(ack_after: Duration) -> Self {
        LoopbackChannels {
            default: SendOutcome::AcceptedWithAck(ack_after),
            per_address: HashMap::new(),
            sent: Vec::new(),
        }
    }

    /// Every send is accepted with no acks (fire-and-forget world).
    pub fn accept_all() -> Self {
        LoopbackChannels {
            default: SendOutcome::Accepted,
            per_address: HashMap::new(),
            sent: Vec::new(),
        }
    }

    /// Scripts the outcome for a specific address.
    pub fn script(&mut self, address: impl Into<String>, outcome: SendOutcome) {
        self.per_address.insert(address.into(), outcome);
    }

    /// Everything sent so far, in order: `(channel, address, text)`.
    pub fn sent(&self) -> &[(CommType, String, String)] {
        &self.sent
    }
}

impl Channels for LoopbackChannels {
    fn send(&mut self, comm_type: CommType, address: &str, text: &str) -> SendOutcome {
        self.sent
            .push((comm_type, address.to_string(), text.to_string()));
        let outcome = self
            .per_address
            .get(address)
            .copied()
            .unwrap_or(self.default);
        match (comm_type, outcome) {
            // Only IM can carry acknowledgements (§3.1); a scripted ack on
            // an ack-less channel degrades to plain acceptance.
            (CommType::Im, o) => o,
            (_, SendOutcome::AcceptedWithAck(_)) => SendOutcome::Accepted,
            (_, o) => o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_scripted_outcomes() {
        let mut c = LoopbackChannels::always_ack(Duration::from_millis(100));
        c.script("im:broken", SendOutcome::Failed(SendFailure::RecipientUnreachable));
        assert_eq!(
            c.send(CommType::Im, "im:alice", "hi"),
            SendOutcome::AcceptedWithAck(Duration::from_millis(100))
        );
        assert_eq!(
            c.send(CommType::Im, "im:broken", "hi"),
            SendOutcome::Failed(SendFailure::RecipientUnreachable)
        );
        assert_eq!(c.sent().len(), 2);
    }

    #[test]
    fn non_im_channels_never_ack() {
        let mut c = LoopbackChannels::always_ack(Duration::from_millis(100));
        assert_eq!(c.send(CommType::Email, "a@b", "hi"), SendOutcome::Accepted);
        assert_eq!(c.send(CommType::Sms, "+1", "hi"), SendOutcome::Accepted);
    }

    #[test]
    fn accept_all_has_no_acks() {
        let mut c = LoopbackChannels::accept_all();
        assert_eq!(c.send(CommType::Im, "im:x", "hi"), SendOutcome::Accepted);
    }
}
