//! Multi-tenant hosting: one [`MabService`] per user over shared channels.
//!
//! The paper's MyAlertBuddy is a *per-user* always-on agent (§3.3); a
//! deployment therefore runs many of them. [`MabHost`] is that deployment
//! shape: it spawns one service task per registered user — each with its
//! own WAL (a per-user file under [`HostConfig::wal_dir`], or in-memory) —
//! routes incoming alerts to the owning user's service, merges every
//! service's notice stream into one [`HostNotice`] stream, and aggregates
//! per-service [`ServiceSnapshot`]s so operators can watch the fleet's
//! delivery state stay bounded under load.

use crate::channels::Channels;
use crate::clock::RuntimeClock;
use crate::service::{MabHandle, MabService, RuntimeNotice, ServiceSnapshot};
use simba_core::alert::IncomingAlert;
use simba_core::mab::MabStats;
use simba_core::subscription::UserId;
use simba_core::wal::{FileWal, InMemoryWal, WalError};
use simba_core::{MabConfig, Telemetry};
use simba_sim::SimDuration;
use simba_telemetry::Event;
use std::collections::BTreeMap;
use std::path::PathBuf;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

/// Host-level configuration shared by every tenant service.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Directory for per-user WAL files (`<user>.wal`, opened tolerantly
    /// as a restarting buddy would). `None` keeps each log in memory.
    pub wal_dir: Option<PathBuf>,
    /// How long a terminal delivery lingers before retirement (giving
    /// straggling acks a chance to upgrade the outcome).
    pub retirement_grace: SimDuration,
    /// Per-user completed-ring capacity.
    pub completed_ring: usize,
    /// Capacity of the merged [`HostNotice`] stream. A slow consumer no
    /// longer grows an unbounded buffer: once full, further notices are
    /// dropped and counted under `host.notice_dropped`.
    pub notice_capacity: usize,
}

/// Default capacity of the merged notice stream.
pub const DEFAULT_NOTICE_CAPACITY: usize = 1024;

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            wal_dir: None,
            retirement_grace: SimDuration::ZERO,
            completed_ring: simba_core::mab::DEFAULT_COMPLETED_CAP,
            notice_capacity: DEFAULT_NOTICE_CAPACITY,
        }
    }
}

/// Why the host refused an operation.
#[derive(Debug)]
pub enum HostError {
    /// The user already has a running service.
    DuplicateUser(
        /// Who.
        UserId,
    ),
    /// Opening the user's write-ahead log failed.
    Wal(
        /// The underlying error.
        WalError,
    ),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::DuplicateUser(user) => write!(f, "user {user} already hosted"),
            HostError::Wal(e) => write!(f, "wal: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<WalError> for HostError {
    fn from(e: WalError) -> Self {
        HostError::Wal(e)
    }
}

/// A service notice tagged with the user whose buddy emitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostNotice {
    /// The tenant.
    pub user: UserId,
    /// What their service reported.
    pub notice: RuntimeNotice,
}

/// Aggregated state across every tenant service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostSnapshot {
    /// Hosted users.
    pub users: usize,
    /// Merged running totals.
    pub stats: MabStats,
    /// Sum of in-flight deliveries.
    pub in_flight: usize,
    /// Sum of actively tracked deliveries.
    pub tracked: usize,
    /// Sum of live-table entries.
    pub live: usize,
    /// Sum of attempt-routing entries.
    pub attempt_owner: usize,
    /// Sum of completed-ring occupancy.
    pub retired: usize,
    /// Sum of unfinished timer/ack tasks.
    pub pending_tasks: usize,
}

struct Tenant {
    handle: MabHandle,
    service: JoinHandle<MabStats>,
    forwarder: JoinHandle<()>,
}

/// A multi-tenant host running one [`MabService`] per user.
pub struct MabHost<C> {
    channels: C,
    config: HostConfig,
    clock: RuntimeClock,
    telemetry: Telemetry,
    tenants: BTreeMap<UserId, Tenant>,
    notice_tx: mpsc::Sender<HostNotice>,
    store: Option<simba_store::SoftStateStore>,
    sweeper: Option<JoinHandle<()>>,
    ledger: Option<simba_ledger::SharedLedger>,
    rules: Option<simba_rules::SharedRuleEngine>,
}

impl<C: Channels + Clone> MabHost<C> {
    /// Builds an empty host; returns it plus the merged notice stream.
    /// The stream is bounded by [`HostConfig::notice_capacity`]; notices a
    /// slow consumer cannot keep up with are dropped (never buffered
    /// without bound) and counted under `host.notice_dropped`. Clone
    /// `channels` per tenant with [`crate::SharedChannels`] when the
    /// tenants must share one physical gateway.
    pub fn new(channels: C, config: HostConfig) -> (Self, mpsc::Receiver<HostNotice>) {
        let (notice_tx, notice_rx) = mpsc::channel(config.notice_capacity.max(1));
        let host = MabHost {
            channels,
            config,
            clock: RuntimeClock::start(),
            telemetry: Telemetry::disabled(),
            tenants: BTreeMap::new(),
            notice_tx,
            store: None,
            sweeper: None,
            ledger: None,
            rules: None,
        };
        (host, notice_rx)
    }

    /// Routes `host.*` events and metrics to `telemetry`; services added
    /// afterwards share the sink (their `runtime.*`/`mab.*` events carry
    /// per-user tags where the layer provides them).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches the soft-state store: services added afterwards consult
    /// it through a [`crate::StoreModeSelector`] when starting deliveries,
    /// and a sweeper task expires facts every `sweep_period` of runtime
    /// time (aborted at shutdown). Publish presence/health facts into the
    /// same (cloned) store to steer routing.
    #[must_use]
    pub fn with_store(
        mut self,
        store: simba_store::SoftStateStore,
        sweep_period: SimDuration,
    ) -> Self {
        self.sweeper = Some(crate::presence::spawn_sweeper(
            store.clone(),
            self.clock,
            sweep_period,
        ));
        self.store = Some(store);
        self
    }

    /// The attached soft-state store, if any.
    pub fn store(&self) -> Option<&simba_store::SoftStateStore> {
        self.store.as_ref()
    }

    /// Attaches a durable delivery ledger: services added afterwards
    /// enqueue their channel attempts into it (one durable record per
    /// `(delivery, channel)`, group-committed before the attempt is
    /// acknowledged) instead of sending inline. Run a
    /// `simba_ledger::LedgerWorkerPool` over the same handle — with
    /// [`crate::LedgerChannelBridge`] in front of the channel adapters —
    /// to perform the sends; crash-recovery then becomes "any worker
    /// resumes any lease" instead of "replay one buddy's WAL".
    #[must_use]
    pub fn with_ledger(mut self, ledger: simba_ledger::SharedLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// The attached delivery ledger, if any.
    pub fn ledger(&self) -> Option<&simba_ledger::SharedLedger> {
        self.ledger.as_ref()
    }

    /// Attaches a rules engine: every submission for a *hosted* user runs
    /// through [`simba_rules::RuleEngine::evaluate`] before routing —
    /// suppress-rules consume the alert, digest-rules absorb it into a
    /// pending window (drain windows with [`MabHost::pump_digests`]), and
    /// severity overrides rewrite the alert's urgency. Digest deliveries
    /// bypass re-evaluation: a flushed digest keeps its original source,
    /// so running it back through the same digest rule would re-absorb it
    /// forever.
    #[must_use]
    pub fn with_rules(mut self, rules: simba_rules::SharedRuleEngine) -> Self {
        self.rules = Some(rules);
        self
    }

    /// The attached rules engine, if any.
    pub fn rules(&self) -> Option<&simba_rules::SharedRuleEngine> {
        self.rules.as_ref()
    }

    /// The host's clock (the timeline its sweeper and services measure).
    pub fn clock(&self) -> RuntimeClock {
        self.clock
    }

    /// Hosted user count.
    pub fn user_count(&self) -> usize {
        self.tenants.len()
    }

    /// The hosted users, in order.
    pub fn users(&self) -> impl Iterator<Item = &UserId> {
        self.tenants.keys()
    }

    /// Direct access to one tenant's service handle.
    pub fn handle(&self, user: &UserId) -> Option<&MabHandle> {
        self.tenants.get(user).map(|t| &t.handle)
    }

    /// Spawns a service for `user` over its own WAL. Fails if the user is
    /// already hosted or their log cannot be opened.
    pub fn add_user(&mut self, user: UserId, config: MabConfig) -> Result<(), HostError> {
        if self.tenants.contains_key(&user) {
            return Err(HostError::DuplicateUser(user));
        }
        let retirement = (self.config.retirement_grace, self.config.completed_ring);
        let selector = || {
            self.store
                .clone()
                .map(|s| Box::new(crate::StoreModeSelector::new(s)) as Box<dyn simba_core::routing::ModeSelector>)
        };
        let (handle, service, notices) = match &self.config.wal_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(WalError::from)?;
                let wal = FileWal::open_tolerant(dir.join(format!("{user}.wal")))?;
                let (service, handle, notices) = MabService::with_wal(config, self.channels.clone(), wal);
                let mut service = service
                    .with_retirement(retirement.0, retirement.1)
                    .with_telemetry(self.telemetry.clone());
                if let Some(selector) = selector() {
                    service = service.with_mode_selector(selector);
                }
                if let Some(ledger) = &self.ledger {
                    service = service.with_ledger(ledger.clone(), user.clone());
                }
                (handle, tokio::spawn(service.run()), notices)
            }
            None => {
                let (service, handle, notices) =
                    MabService::with_wal(config, self.channels.clone(), InMemoryWal::new());
                let mut service = service
                    .with_retirement(retirement.0, retirement.1)
                    .with_telemetry(self.telemetry.clone());
                if let Some(selector) = selector() {
                    service = service.with_mode_selector(selector);
                }
                if let Some(ledger) = &self.ledger {
                    service = service.with_ledger(ledger.clone(), user.clone());
                }
                (handle, tokio::spawn(service.run()), notices)
            }
        };
        let forwarder = self.spawn_forwarder(user.clone(), notices);
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("host.users").incr();
            self.telemetry.emit(
                Event::new("host.user_added", self.clock.now().as_millis())
                    .with("user", user.0.clone()),
            );
        }
        self.tenants.insert(user, Tenant { handle, service, forwarder });
        Ok(())
    }

    /// Re-tags one tenant's notices with their user id onto the merged
    /// stream; ends when that service's loop exits. The merged stream is
    /// bounded: when the consumer lags behind `notice_capacity`, the
    /// notice is dropped rather than buffered (delivery state itself is
    /// durable in the WAL; notices are advisory), and the drop is counted.
    fn spawn_forwarder(
        &self,
        user: UserId,
        mut notices: mpsc::Receiver<RuntimeNotice>,
    ) -> JoinHandle<()> {
        let tx = self.notice_tx.clone();
        let telemetry = self.telemetry.clone();
        tokio::spawn(async move {
            while let Some(notice) = notices.recv().await {
                if tx.try_send(HostNotice { user: user.clone(), notice }).is_err()
                    && telemetry.enabled()
                {
                    telemetry.metrics().counter("host.notice_dropped").incr();
                }
            }
        })
    }

    /// The routing front door: hands an IM-borne alert to the owning
    /// user's service. Returns `false` (and counts `host.unrouted`) when
    /// the user is not hosted. With a rules engine attached, the alert is
    /// evaluated first — `true` then also covers "consumed by a rule"
    /// (suppressed, or absorbed into a pending digest window).
    pub async fn submit_im(&self, user: &UserId, alert: IncomingAlert) -> bool {
        let Some(tenant) = self.tenants.get(user) else {
            self.note_routed(user, false);
            return false;
        };
        match self.apply_rules(user, alert).await {
            Some(alert) => {
                tenant.handle.submit_im_alert(alert).await;
                self.note_routed(user, true);
            }
            None => self.note_routed(user, true),
        }
        true
    }

    /// Like [`MabHost::submit_im`] for an email-borne alert.
    pub async fn submit_email(&self, user: &UserId, alert: IncomingAlert) -> bool {
        let Some(tenant) = self.tenants.get(user) else {
            self.note_routed(user, false);
            return false;
        };
        match self.apply_rules(user, alert).await {
            Some(alert) => {
                tenant.handle.submit_email_alert(alert).await;
                self.note_routed(user, true);
            }
            None => self.note_routed(user, true),
        }
        true
    }

    /// Runs one hosted user's alert through the rules engine. `Some` means
    /// route it (urgency possibly rewritten); `None` means a rule consumed
    /// it. A digest the absorption forced out early (count cap, severity
    /// escalation) is delivered inline, bypassing re-evaluation.
    async fn apply_rules(&self, user: &UserId, mut alert: IncomingAlert) -> Option<IncomingAlert> {
        let Some(engine) = self.rules.as_ref() else {
            return Some(alert);
        };
        let now_ms = self.clock.now().as_millis();
        match engine.evaluate(&user.0, &alert, now_ms) {
            simba_rules::Decision::Deliver { severity, .. } => {
                if let Some(severity) = severity {
                    alert.urgency = severity;
                }
                Some(alert)
            }
            simba_rules::Decision::Suppress { .. } => None,
            simba_rules::Decision::Digest { flushed, .. } => {
                if let Some(digest) = flushed {
                    self.deliver_digest(*digest).await;
                }
                None
            }
        }
    }

    /// Delivers one flushed digest to its owner as an email-borne alert,
    /// straight to the tenant handle — digests never re-enter evaluation.
    async fn deliver_digest(&self, digest: simba_core::DigestAlert) -> bool {
        let user = UserId::new(digest.user.clone());
        let Some(tenant) = self.tenants.get(&user) else {
            self.note_routed(&user, false);
            return false;
        };
        tenant.handle.submit_email_alert(digest.to_incoming()).await;
        self.note_routed(&user, true);
        true
    }

    /// Flushes every digest window whose deadline has passed and delivers
    /// the results. Call this from the runtime's idle tick (the gateway
    /// pumps do); returns how many digests went out.
    pub async fn pump_digests(&self) -> usize {
        let Some(engine) = self.rules.as_ref() else {
            return 0;
        };
        if engine.pending_digests() == 0 {
            return 0;
        }
        let mut delivered = 0;
        for digest in engine.flush_due(self.clock.now().as_millis()) {
            if self.deliver_digest(digest).await {
                delivered += 1;
            }
        }
        delivered
    }

    fn note_routed(&self, user: &UserId, routed: bool) {
        if self.telemetry.enabled() {
            if routed {
                self.telemetry.metrics().counter("host.routed").incr();
            } else {
                self.telemetry.metrics().counter("host.unrouted").incr();
                self.telemetry.emit(
                    Event::new("host.unrouted", self.clock.now().as_millis())
                        .with("user", user.0.clone()),
                );
            }
        }
    }

    /// Aggregates every tenant's [`ServiceSnapshot`] (each service retires
    /// due deliveries before answering). Tenants whose loop already exited
    /// contribute nothing.
    pub async fn snapshot(&self) -> HostSnapshot {
        let mut snap = HostSnapshot { users: self.tenants.len(), ..HostSnapshot::default() };
        for tenant in self.tenants.values() {
            if let Some(s) = tenant.handle.snapshot().await {
                snap.stats.merge(s.stats);
                snap.in_flight += s.in_flight;
                snap.tracked += s.tracked;
                snap.live += s.live;
                snap.attempt_owner += s.attempt_owner;
                snap.retired += s.retired;
                snap.pending_tasks += s.pending_tasks;
            }
        }
        snap
    }

    /// One tenant's snapshot, if hosted and alive.
    pub async fn snapshot_user(&self, user: &UserId) -> Option<ServiceSnapshot> {
        self.tenants.get(user)?.handle.snapshot().await
    }

    /// Stops every service in order and returns each user's final stats.
    /// Dropping the returned host also drops the merged notice sender, so
    /// the notice stream ends once the forwarders drain.
    pub async fn shutdown(self) -> Vec<(UserId, MabStats)> {
        if let Some(sweeper) = &self.sweeper {
            sweeper.abort();
        }
        let mut out = Vec::with_capacity(self.tenants.len());
        for (user, tenant) in self.tenants {
            tenant.handle.stop().await;
            let stats = tenant.service.await.unwrap_or_default();
            let _ = tenant.forwarder.await;
            if self.telemetry.enabled() {
                self.telemetry.emit(
                    Event::new("host.user_stopped", self.clock.now().as_millis())
                        .with("user", user.0.clone())
                        .with("deliveries", stats.deliveries_started),
                );
            }
            out.push((user, stats));
        }
        out
    }
}

impl<C> std::fmt::Debug for MabHost<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MabHost")
            .field("users", &self.tenants.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{LoopbackChannels, SendOutcome, SharedChannels};
    use simba_core::address::{Address, AddressBook, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::delivery::SendFailure;
    use simba_core::mab::DeliveryId;
    use simba_core::mode::DeliveryMode;
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::SubscriptionRegistry;
    use simba_core::wal::WriteAheadLog as _;
    use simba_core::DeliveryStatus;
    use simba_sim::SimTime;
    use std::time::Duration;

    fn user_config(name: &str) -> MabConfig {
        let mut classifier = Classifier::new();
        classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
        classifier.map_keyword("Sensor", "Home");
        let mut registry = SubscriptionRegistry::new();
        let user = UserId::new(name);
        let profile = registry.register_user(user.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
        book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "IM",
            "EM",
            simba_sim::SimDuration::from_secs(60),
        ));
        registry.subscribe("Home", user, "Urgent").unwrap();
        MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
    }

    fn sensor_alert(text: &str) -> IncomingAlert {
        IncomingAlert::from_im("aladdin-gw", text, SimTime::ZERO)
    }

    #[tokio::test(start_paused = true)]
    async fn routes_alerts_to_the_owning_user_only() {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(200)));
        let (mut host, mut notices) = MabHost::new(shared.clone(), HostConfig::default());
        for name in ["alice", "bob"] {
            host.add_user(UserId::new(name), user_config(name)).unwrap();
        }
        assert_eq!(host.user_count(), 2);

        assert!(host.submit_im(&UserId::new("alice"), sensor_alert("Sensor A ON")).await);
        let mut finished_user = None;
        while finished_user.is_none() {
            let HostNotice { user, notice } = notices.recv().await.unwrap();
            if matches!(notice, RuntimeNotice::DeliveryFinished { .. }) {
                finished_user = Some(user);
            }
        }
        assert_eq!(finished_user.unwrap(), UserId::new("alice"));

        // Only alice's IM address ever saw traffic.
        shared.with(|c| {
            assert!(c.sent().iter().all(|(_, addr, _)| addr == "im:alice"));
        });
        // Bob's buddy started nothing.
        let bob = host.snapshot_user(&UserId::new("bob")).await.unwrap();
        assert_eq!(bob.stats.deliveries_started, 0);
    }

    #[tokio::test(start_paused = true)]
    async fn unknown_user_is_not_routed() {
        let shared = SharedChannels::new(LoopbackChannels::accept_all());
        let (mut host, _notices) = MabHost::new(shared, HostConfig::default());
        host.add_user(UserId::new("alice"), user_config("alice")).unwrap();
        assert!(!host.submit_im(&UserId::new("mallory"), sensor_alert("Sensor ON")).await);
        assert!(host
            .add_user(UserId::new("alice"), user_config("alice"))
            .is_err());
    }

    #[tokio::test(start_paused = true)]
    async fn shutdown_collects_per_user_stats() {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(100)));
        let (mut host, mut notices) = MabHost::new(shared, HostConfig::default());
        for name in ["alice", "bob"] {
            host.add_user(UserId::new(name), user_config(name)).unwrap();
        }
        host.submit_im(&UserId::new("alice"), sensor_alert("Sensor 1 ON")).await;
        host.submit_im(&UserId::new("bob"), sensor_alert("Sensor 2 ON")).await;

        let mut finished = 0;
        while finished < 2 {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, .. } =
                notices.recv().await.unwrap()
            {
                finished += 1;
            }
        }
        let stats = host.shutdown().await;
        assert_eq!(stats.len(), 2);
        for (_, s) in &stats {
            assert_eq!(s.deliveries_started, 1);
            assert_eq!(s.retired, 1);
        }
        // The merged stream ends after shutdown drops the host.
        assert!(notices.recv().await.is_none());
    }

    #[tokio::test(start_paused = true)]
    async fn per_user_wal_files_survive_the_pipeline() {
        let dir = std::env::temp_dir().join(format!("simba-host-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(100)));
        let config = HostConfig { wal_dir: Some(dir.clone()), ..HostConfig::default() };
        let (mut host, mut notices) = MabHost::new(shared, config);
        for name in ["alice", "bob"] {
            host.add_user(UserId::new(name), user_config(name)).unwrap();
        }
        host.submit_im(&UserId::new("alice"), sensor_alert("Sensor 1 ON")).await;
        loop {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, user } =
                notices.recv().await.unwrap()
            {
                assert_eq!(user, UserId::new("alice"));
                break;
            }
        }
        host.shutdown().await;

        // Each tenant got its own log; alice's holds her processed alert.
        let alice_wal = FileWal::open_tolerant(dir.join("alice.wal")).unwrap();
        assert_eq!(alice_wal.len(), 1);
        assert!(alice_wal.unprocessed().is_empty());
        let bob_wal = FileWal::open_tolerant(dir.join("bob.wal")).unwrap();
        assert_eq!(bob_wal.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[tokio::test(start_paused = true)]
    async fn fleet_state_returns_to_the_floor_after_load() {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
        let (mut host, mut notices) =
            MabHost::new(shared.clone(), HostConfig { completed_ring: 4, ..HostConfig::default() });
        let users: Vec<UserId> = (0..3).map(|i| UserId::new(format!("user{i}"))).collect();
        for user in &users {
            host.add_user(user.clone(), user_config(&user.0)).unwrap();
        }
        // One failing tenant exercises the fallback path under the host.
        shared.with(|c| c.script("im:user2", SendOutcome::Failed(SendFailure::RecipientUnreachable)));

        for round in 0..5 {
            for user in &users {
                host.submit_im(user, sensor_alert(&format!("Sensor {round} ON"))).await;
            }
        }
        let mut finished = 0;
        let mut statuses = Vec::new();
        while finished < 15 {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { status, .. }, .. } =
                notices.recv().await.unwrap()
            {
                statuses.push(status);
                finished += 1;
            }
        }
        let snap = host.snapshot().await;
        assert_eq!(snap.users, 3);
        assert_eq!(snap.stats.deliveries_started, 15);
        assert_eq!(snap.stats.retired, 15);
        // Every table returned to its floor; the rings stay bounded.
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.tracked, 0);
        assert_eq!(snap.live, 0);
        assert_eq!(snap.attempt_owner, 0);
        assert_eq!(snap.pending_tasks, 0);
        assert!(snap.retired <= 3 * 4);
        // user2's deliveries fell back to unconfirmed email.
        assert_eq!(
            statuses.iter().filter(|s| matches!(s, DeliveryStatus::Unconfirmed { .. })).count(),
            5
        );
        assert_eq!(
            statuses.iter().filter(|s| matches!(s, DeliveryStatus::Acked { .. })).count(),
            10
        );
    }

    #[tokio::test(start_paused = true)]
    async fn lagging_notice_consumer_drops_instead_of_buffering() {
        use simba_telemetry::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(256));
        let telemetry = Telemetry::with_sink(sink.clone());
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
        let config = HostConfig { notice_capacity: 2, ..HostConfig::default() };
        let (host, mut notices) = MabHost::new(shared, config);
        let mut host = host.with_telemetry(telemetry.clone());
        host.add_user(UserId::new("alice"), user_config("alice")).unwrap();

        // Ten deliveries finish while nobody reads the merged stream: each
        // produces several notices, but the stream holds only two.
        for round in 0..10 {
            host.submit_im(&UserId::new("alice"), sensor_alert(&format!("Sensor {round} ON")))
                .await;
        }
        tokio::time::sleep(Duration::from_secs(5)).await;
        let dropped = telemetry.metrics().snapshot().counter("host.notice_dropped");
        assert!(dropped > 0, "expected overflow notices to be counted, got {dropped}");

        let stats = host.shutdown().await;
        assert_eq!(stats[0].1.deliveries_started, 10);
        // Exactly the buffered capacity survives for a late reader.
        let mut buffered = 0;
        while notices.recv().await.is_some() {
            buffered += 1;
        }
        assert_eq!(buffered, 2);
    }

    #[tokio::test(start_paused = true)]
    async fn rules_suppress_and_override_before_routing() {
        use simba_rules::{RuleEngine, RulesConfig, RuleSpec};

        let engine: simba_rules::SharedRuleEngine =
            std::sync::Arc::new(RuleEngine::open(RulesConfig::in_memory()).unwrap());
        engine
            .upsert("alice", None, RuleSpec::suppress("mute-off", "body contains \"OFF\""))
            .unwrap();
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
        let (host, mut notices) = MabHost::new(shared, HostConfig::default());
        let mut host = host.with_rules(engine.clone());
        host.add_user(UserId::new("alice"), user_config("alice")).unwrap();

        // Suppressed: consumed (submit reports true), never routed.
        assert!(host.submit_im(&UserId::new("alice"), sensor_alert("Sensor OFF")).await);
        // Unknown users stay unrouted — rules never absorb their alerts.
        assert!(!host.submit_im(&UserId::new("mallory"), sensor_alert("Sensor OFF")).await);
        // Unmatched traffic still flows.
        assert!(host.submit_im(&UserId::new("alice"), sensor_alert("Sensor ON")).await);
        loop {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, .. } =
                notices.recv().await.unwrap()
            {
                break;
            }
        }
        let snap = host.snapshot_user(&UserId::new("alice")).await.unwrap();
        assert_eq!(snap.stats.deliveries_started, 1, "suppressed alert must not route");
    }

    #[tokio::test(start_paused = true)]
    async fn digest_windows_flush_through_pump_digests() {
        use simba_rules::{DigestConfig, RuleEngine, RulesConfig, RuleSpec};

        let engine: simba_rules::SharedRuleEngine =
            std::sync::Arc::new(RuleEngine::open(RulesConfig::in_memory()).unwrap());
        engine
            .upsert(
                "alice",
                None,
                RuleSpec::digest(
                    "storm",
                    "source == \"aladdin-gw\"",
                    DigestConfig { window_ms: 5_000, max_count: 0, max_exemplars: 3, key: None },
                ),
            )
            .unwrap();
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(50)));
        let (host, mut notices) = MabHost::new(shared, HostConfig::default());
        let mut host = host.with_rules(engine.clone());
        host.add_user(UserId::new("alice"), user_config("alice")).unwrap();

        for round in 0..10 {
            assert!(host
                .submit_im(&UserId::new("alice"), sensor_alert(&format!("Sensor {round} ON")))
                .await);
        }
        assert_eq!(engine.pending_digests(), 1);
        // Before the deadline nothing flushes.
        assert_eq!(host.pump_digests().await, 0);
        let before = host.snapshot_user(&UserId::new("alice")).await.unwrap();
        assert_eq!(before.stats.deliveries_started, 0, "storm must be absorbed");

        tokio::time::sleep(Duration::from_secs(6)).await;
        assert_eq!(host.pump_digests().await, 1);
        assert_eq!(engine.pending_digests(), 0);
        loop {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, user } =
                notices.recv().await.unwrap()
            {
                assert_eq!(user, UserId::new("alice"));
                break;
            }
        }
        let after = host.snapshot_user(&UserId::new("alice")).await.unwrap();
        assert_eq!(after.stats.deliveries_started, 1, "one digest, not ten alerts");
    }

    #[tokio::test(start_paused = true)]
    async fn external_ack_reaches_the_right_tenant() {
        let shared = SharedChannels::new(LoopbackChannels::accept_all());
        let (mut host, mut notices) = MabHost::new(shared, HostConfig::default());
        host.add_user(UserId::new("alice"), user_config("alice")).unwrap();
        host.submit_im(&UserId::new("alice"), sensor_alert("Sensor ON")).await;
        // accept_all: no automatic ack; report one through the front door.
        tokio::time::sleep(Duration::from_millis(10)).await;
        host.handle(&UserId::new("alice"))
            .unwrap()
            .ack(DeliveryId(0), simba_core::delivery::AttemptId(0))
            .await;
        loop {
            if let HostNotice { notice: RuntimeNotice::DeliveryFinished { status, .. }, .. } =
                notices.recv().await.unwrap()
            {
                assert!(matches!(status, DeliveryStatus::Acked { .. }));
                break;
            }
        }
    }
}
