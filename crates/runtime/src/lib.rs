//! `simba-runtime` — a tokio-based live runtime for SIMBA.
//!
//! The deterministic simulation in `simba-sim` drives the evaluation; this
//! crate drives the *same* core state machines ([`simba_core::MyAlertBuddy`],
//! [`simba_core::DeliveryProcess`]) against real time: a long-running MAB
//! service task, channel adapters, tokio timers for delivery ack windows,
//! and a watchdog task playing the MDC role.
//!
//! Nothing in `simba-core` knows about tokio — the service here simply
//! maps wall-clock instants onto [`simba_sim::SimTime`] through
//! [`RuntimeClock`] and feeds events in. That is the architectural payoff
//! of keeping the core event-driven: one implementation, two drivers.
//!
//! For deployments, [`MabHost`] runs one service per user over
//! [`SharedChannels`] with per-user WALs, routing alerts to the owning
//! buddy and retiring terminal deliveries so fleet state stays bounded.
//! At population scale, [`ShardedHost`] replaces task-per-user with a
//! fixed pool of shard workers multiplexing thousands of buddies each
//! over group-committed shard logs, hibernating idle buddies to compact
//! snapshots so memory tracks *active* users rather than registered ones.
//!
//! ```no_run
//! use simba_runtime::{LoopbackChannels, MabService, RuntimeNotice};
//! use simba_core::{IncomingAlert, MabConfig};
//! use simba_sim::SimTime;
//!
//! # async fn demo(config: MabConfig) {
//! let channels = LoopbackChannels::always_ack(std::time::Duration::from_millis(400));
//! let (service, handle, mut notices) = MabService::new(config, channels);
//! tokio::spawn(service.run());
//! handle
//!     .submit_im_alert(IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::ZERO))
//!     .await;
//! while let Some(notice) = notices.recv().await {
//!     if let RuntimeNotice::DeliveryFinished { status, .. } = notice {
//!         println!("delivered: {status:?}");
//!         break;
//!     }
//! }
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channels;
mod clock;
mod host;
mod ledger_bridge;
mod presence;
mod service;
mod shard;
mod watchdog;

pub use channels::{Channels, LoopbackChannels, SendOutcome, SharedChannels};
pub use clock::RuntimeClock;
pub use host::{HostConfig, HostError, HostNotice, HostSnapshot, MabHost, DEFAULT_NOTICE_CAPACITY};
pub use ledger_bridge::{
    shared_filter, LedgerChannelBridge, SharedFilter, DEFAULT_DEDUPE_CAPACITY,
};
pub use shard::{ConfigFactory, ShardedHost, ShardedHostConfig, ShardedSnapshot};
pub use presence::{chanhealth_key, spawn_sweeper, StoreModeSelector, HEALTHY_VALUE};
pub use service::{MabHandle, MabService, RuntimeNotice, ServiceSnapshot};
pub use watchdog::{run_watchdog, run_watchdog_observed, WatchdogReport};
