//! The simulation engine: clock, queue, and the per-event [`Ctx`] handle.

use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// A discrete-event simulation over world state `W` and event type `E`.
///
/// The engine owns the virtual clock, the pending-event queue, the random
/// stream, and the trace. The caller supplies the world and, per run, an
/// event handler `FnMut(&mut W, &mut Ctx<E>, E)` that mutates the world and
/// schedules follow-up events through the [`Ctx`].
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct Engine<W, E> {
    world: W,
    now: SimTime,
    queue: EventQueue<E>,
    rng: SimRng,
    trace: Trace,
    processed: u64,
    event_limit: u64,
}

impl<W, E> Engine<W, E> {
    /// Creates an engine at `t = 0` with the given world and RNG seed.
    pub fn new(world: W, seed: u64) -> Self {
        Engine {
            world,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            trace: Trace::new(),
            processed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Replaces the trace (e.g. with [`Trace::disabled`] for benchmarks).
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Caps the total number of events processed across all runs; the engine
    /// stops silently when the cap is reached. A guard against runaway
    /// self-rescheduling loops in experiment code.
    #[must_use]
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared view of the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable view of the world (for setup between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (for recording setup markers).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The engine's root random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — time travel would break causality
    /// and, silently clamped, would mask scheduling bugs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        self.queue.push(at, event);
    }

    /// Runs until the queue is empty or the next event is after `end`.
    ///
    /// The clock finishes at the time of the last processed event (or `end`
    /// if no event at/after it fired — the clock is advanced to `end` so
    /// subsequent `schedule_in` calls are relative to the horizon).
    ///
    /// Events exactly at `end` are processed.
    pub fn run_until<F>(&mut self, end: SimTime, mut handler: F)
    where
        F: FnMut(&mut W, &mut Ctx<'_, E>, E),
    {
        let mut stopped = false;
        while let Some(at) = self.queue.peek_time() {
            if at > end {
                break;
            }
            if self.processed >= self.event_limit {
                stopped = true;
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked entry exists");
            self.now = at;
            self.processed += 1;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                trace: &mut self.trace,
                stop: false,
            };
            handler(&mut self.world, &mut ctx, event);
            if ctx.stop {
                stopped = true;
                break;
            }
        }
        if !stopped && self.now < end {
            self.now = end;
        }
    }

    /// Runs until the queue drains entirely (or the event limit trips).
    pub fn run_to_completion<F>(&mut self, handler: F)
    where
        F: FnMut(&mut W, &mut Ctx<'_, E>, E),
    {
        // SimTime::MAX is +∞ for our purposes; run_until will not advance
        // the clock past the final event because `now < end` stays true
        // only until the queue drains.
        let final_now = {
            self.run_until_inner(handler);
            self.now
        };
        self.now = final_now;
    }

    fn run_until_inner<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut W, &mut Ctx<'_, E>, E),
    {
        while let Some((at, event)) = self.queue.pop() {
            if self.processed >= self.event_limit {
                // Put it back conceptually: the event is dropped, which is
                // acceptable because the limit is a bug backstop, not a
                // semantic boundary.
                break;
            }
            self.now = at;
            self.processed += 1;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                trace: &mut self.trace,
                stop: false,
            };
            handler(&mut self.world, &mut ctx, event);
            if ctx.stop {
                break;
            }
        }
    }

    /// Consumes the engine and returns `(world, trace)`.
    pub fn into_parts(self) -> (W, Trace) {
        (self.world, self.trace)
    }
}

/// The handler-side handle: schedule follow-ups, draw randomness, record
/// trace entries, or stop the run.
#[derive(Debug)]
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SimRng,
    trace: &'a mut Trace,
    stop: bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current virtual time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        self.queue.push(at, event);
    }

    /// The engine's random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Records a trace entry at the current time.
    pub fn trace(&mut self, category: impl Into<String>, message: impl Into<String>) {
        self.trace.record(self.now, category, message);
    }

    /// Requests that the run stop after this event returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Once(&'static str),
        Repeat { label: &'static str, period: SimDuration },
        StopNow,
    }

    fn handler(w: &mut World, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Once(label) => w.log.push((ctx.now().as_millis(), label)),
            Ev::Repeat { label, period } => {
                w.log.push((ctx.now().as_millis(), label));
                ctx.schedule_in(period, Ev::Repeat { label, period });
            }
            Ev::StopNow => ctx.stop(),
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(SimDuration::from_millis(30), Ev::Once("c"));
        e.schedule_in(SimDuration::from_millis(10), Ev::Once("a"));
        e.schedule_in(SimDuration::from_millis(20), Ev::Once("b"));
        e.run_until(SimTime::from_secs(1), handler);
        assert_eq!(e.world().log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(e.now(), SimTime::from_secs(1));
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn horizon_is_inclusive_and_later_events_stay_queued() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(SimDuration::from_secs(5), Ev::Once("at-horizon"));
        e.schedule_in(SimDuration::from_secs(6), Ev::Once("beyond"));
        e.run_until(SimTime::from_secs(5), handler);
        assert_eq!(e.world().log, vec![(5_000, "at-horizon")]);
        assert_eq!(e.pending(), 1);
        // A later run picks the remaining event up.
        e.run_until(SimTime::from_secs(10), handler);
        assert_eq!(e.world().log.len(), 2);
    }

    #[test]
    fn repeating_events_tick() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(
            SimDuration::ZERO,
            Ev::Repeat { label: "t", period: SimDuration::from_secs(2) },
        );
        e.run_until(SimTime::from_secs(7), handler);
        let times: Vec<u64> = e.world().log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 2_000, 4_000, 6_000]);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(SimDuration::from_secs(1), Ev::Once("before"));
        e.schedule_in(SimDuration::from_secs(2), Ev::StopNow);
        e.schedule_in(SimDuration::from_secs(3), Ev::Once("after"));
        e.run_until(SimTime::from_secs(10), handler);
        assert_eq!(e.world().log, vec![(1_000, "before")]);
        assert_eq!(e.pending(), 1);
        // Clock stays at the stop event, not the horizon.
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn event_limit_is_a_backstop() {
        let mut e = Engine::new(World::default(), 1).with_event_limit(5);
        e.schedule_in(
            SimDuration::ZERO,
            Ev::Repeat { label: "r", period: SimDuration::from_millis(1) },
        );
        e.run_until(SimTime::MAX, handler);
        assert_eq!(e.processed(), 5);
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(SimDuration::from_secs(1), Ev::Once("a"));
        e.schedule_in(SimDuration::from_secs(9), Ev::Once("b"));
        e.run_to_completion(handler);
        assert_eq!(e.world().log.len(), 2);
        assert_eq!(e.now(), SimTime::from_secs(9));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<(), Ev> = Engine::new((), 1);
        e.schedule_in(SimDuration::from_secs(10), Ev::Once("later"));
        e.run_until(SimTime::from_secs(20), |_, ctx, _| {
            ctx.schedule_at(SimTime::from_secs(1), Ev::Once("past"));
        });
    }

    #[test]
    fn trace_records_through_ctx() {
        let mut e: Engine<(), Ev> = Engine::new((), 1);
        e.schedule_in(SimDuration::from_secs(1), Ev::Once("x"));
        e.run_until(SimTime::from_secs(2), |_, ctx, _| {
            ctx.trace("test.cat", "hello");
        });
        assert_eq!(e.trace().count("test.cat"), 1);
        assert_eq!(e.trace().entries()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn into_parts_returns_world_and_trace() {
        let mut e = Engine::new(World::default(), 1);
        e.schedule_in(SimDuration::ZERO, Ev::Once("only"));
        e.run_to_completion(handler);
        let (w, trace) = e.into_parts();
        assert_eq!(w.log.len(), 1);
        assert!(trace.is_empty());
    }
}
