//! Seeded random streams and the distribution samplers the network and
//! fault models need.
//!
//! `rand`'s `StdRng` does not guarantee a stable algorithm across releases,
//! so we pin ChaCha8 explicitly (see DESIGN.md §4): simulation outputs must
//! be bit-reproducible for the regression tests and the experiment tables.
//!
//! The exponential / log-normal / Pareto samplers are implemented here from
//! uniform draws (inverse-CDF and Box–Muller) rather than pulling in
//! `rand_distr`; they are exactly the three shapes the substrates need
//! (failure inter-arrivals, IM latency, email heavy tail).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream.
    ///
    /// Components that draw at data-dependent rates should each own a fork
    /// so that adding draws in one component does not perturb another —
    /// the key to comparable A/B runs under the same seed.
    pub fn fork(&mut self, stream_id: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::new(base ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range: lo {lo} > hi {hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// Used for failure inter-arrival times (Poisson processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: std_dev must be non-negative");
        let u1 = 1.0 - self.unit(); // in (0, 1], avoids ln(0)
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized by the *median* and the log-space sigma.
    ///
    /// IM delivery latency is modelled log-normally: most deliveries cluster
    /// near the median with a mild right tail.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "lognormal: median must be positive");
        let mu = median.ln();
        self.normal(mu, sigma).exp()
    }

    /// Pareto draw with scale `x_min` and shape `alpha`.
    ///
    /// Email delivery time is the canonical heavy tail ("seconds to days"):
    /// a Pareto body bolted onto a minimum transit time reproduces that.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: parameters must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        x_min / u.powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.range(0, items.len() as u64 - 1) as usize;
            Some(&items[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::new(9);
        let mut fork1 = parent1.fork(1);
        let seq1: Vec<u64> = (0..8).map(|_| fork1.range(0, 1000)).collect();

        let mut parent2 = SimRng::new(9);
        let mut fork2 = parent2.fork(1);
        // Parent keeps drawing; the fork's future is unaffected.
        for _ in 0..100 {
            parent2.unit();
        }
        let seq2: Vec<u64> = (0..8).map(|_| fork2.range(0, 1000)).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn fork_ids_give_distinct_streams() {
        let mut parent = SimRng::new(3);
        // fork() advances the parent, so fork different ids from clones of
        // the same parent state to isolate the id's contribution.
        let mut p2 = parent.clone();
        let mut a = parent.fork(1);
        let mut b = p2.fork(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.7..5.3).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = SimRng::new(17);
        let mut draws: Vec<f64> = (0..10_001).map(|_| r.lognormal(0.4, 0.5)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[5_000];
        assert!((0.35..0.45).contains(&median), "median = {median}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = SimRng::new(19);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn normal_is_symmetric() {
        let mut r = SimRng::new(23);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.normal(10.0, 2.0)).sum();
        let mean = sum / n as f64;
        assert!((9.9..10.1).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn pick_from_slices() {
        let mut r = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42]), Some(&42));
        let items = [1, 2, 3];
        for _ in 0..10 {
            assert!(items.contains(r.pick(&items).unwrap()));
        }
    }

    #[test]
    #[should_panic(expected = "range: lo")]
    fn range_panics_on_inverted_bounds() {
        SimRng::new(1).range(5, 4);
    }
}
