//! Structured trace recording.
//!
//! The paper instruments "both the SIMBA library and the MyAlertBuddy to log
//! all recovery actions" (§5) — the one-month fault log is the paper's key
//! dependability evidence. [`Trace`] is the engine-level equivalent: every
//! component appends `(time, category, message)` entries, and the experiment
//! harness post-processes them into recovery-action tables.

use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event was recorded.
    pub at: SimTime,
    /// Short machine-matchable category, e.g. `"mdc.restart"`.
    pub category: String,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// An append-only trace log with category filtering.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace that drops all records (for hot benchmark runs).
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Whether records are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn record(&mut self, at: SimTime, category: impl Into<String>, message: impl Into<String>) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                category: category.into(),
                message: message.into(),
            });
        }
    }

    /// All records in insertion order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Records whose category equals `category`.
    pub fn with_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Records whose category starts with `prefix` (e.g. `"mdc."`).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.category.starts_with(prefix))
    }

    /// Count of records in `category`.
    pub fn count(&self, category: &str) -> usize {
        self.with_category(category).count()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the whole trace, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "mdc.restart", "hang detected");
        t.record(SimTime::from_secs(2), "im.logout", "server recovery");
        t.record(SimTime::from_secs(3), "mdc.reboot", "restart storm");
        assert_eq!(t.len(), 3);
        assert_eq!(t.count("mdc.restart"), 1);
        assert_eq!(t.with_prefix("mdc.").count(), 2);
        assert_eq!(t.with_category("im.logout").count(), 1);
    }

    #[test]
    fn disabled_trace_drops_records() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, "x", "y");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut t = Trace::new();
        t.record(SimTime::from_millis(1_500), "a", "first");
        t.record(SimTime::from_millis(2_500), "b", "second");
        let r = t.render();
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("a: first"));
        assert!(r.contains("[d0+00:00:02.500] b: second"));
    }
}
