//! `simba-sim` — a deterministic discrete-event simulation engine.
//!
//! The SIMBA paper evaluated a live deployment over one month of wall-clock
//! time against real IM/email/SMS services. This crate is the substitute
//! substrate (DESIGN.md §2): it provides virtual time, a stable event queue,
//! seeded random streams, distribution samplers, a trace recorder, and
//! online metrics, so that a "month" of alert traffic and fault injection
//! replays deterministically in milliseconds.
//!
//! # Architecture
//!
//! The engine is generic over the world state `W` and the event type `E`.
//! Components are plain structs inside `W`; an event handler closure routes
//! each popped event to the right component and schedules follow-ups through
//! the [`Ctx`] handle:
//!
//! ```
//! use simba_sim::{Engine, SimDuration};
//!
//! #[derive(Default)]
//! struct World { ticks: u32 }
//! enum Ev { Tick }
//!
//! let mut engine = Engine::new(World::default(), 42);
//! engine.schedule_in(SimDuration::ZERO, Ev::Tick);
//! engine.run_until(simba_sim::SimTime::from_secs(10), |world, ctx, ev| match ev {
//!     Ev::Tick => {
//!         world.ticks += 1;
//!         ctx.schedule_in(SimDuration::from_secs(1), Ev::Tick);
//!     }
//! });
//! assert_eq!(engine.world().ticks, 11); // t = 0s ..= 10s
//! ```
//!
//! # Determinism
//!
//! Runs are reproducible: the same seed and the same schedule of calls
//! produce the identical event order (ties in timestamp break by scheduling
//! sequence number) and identical random draws. This invariant is property-
//! tested in `tests/determinism.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod metrics;
mod queue;
mod rng;
mod time;
mod trace;

pub use engine::{Ctx, Engine};
pub use metrics::{Counter, Histogram, MetricSet, ObserveDuration, ObserveDurationNamed, Summary};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
