//! The pending-event queue with stable FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A priority queue of `(SimTime, E)` pairs ordered by time, with ties
/// broken by insertion order (FIFO). Stability is what makes the engine
/// deterministic when many events share a timestamp.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo_within_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
