//! Online metrics for the experiment harness.
//!
//! The concrete types — [`Counter`], [`Summary`], [`Histogram`],
//! [`MetricSet`] — were promoted to the [`simba_telemetry`] crate so the
//! live runtime, CLI, and simulation all share one implementation. This
//! module re-exports them and layers the [`SimDuration`]-flavoured
//! observation helpers on top as extension traits, keeping existing
//! `metrics.observe_duration(name, dur)` call sites source-compatible.

use crate::time::SimDuration;

pub use simba_telemetry::{Counter, Histogram, MetricSet, Summary};

/// Duration-flavoured observation for single metrics.
pub trait ObserveDuration {
    /// Records a [`SimDuration`] in this metric's native unit.
    fn observe_duration(&mut self, d: SimDuration);
}

impl ObserveDuration for Summary {
    /// Records the duration in seconds.
    fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_secs_f64());
    }
}

impl ObserveDuration for Histogram {
    /// Records the duration in milliseconds.
    fn observe_duration(&mut self, d: SimDuration) {
        self.observe_ms(d.as_millis());
    }
}

/// Duration-flavoured observation for named summaries in a [`MetricSet`].
pub trait ObserveDurationNamed {
    /// Records a [`SimDuration`] (in seconds) into the summary `name`.
    fn observe_duration(&mut self, name: &str, d: SimDuration);
}

impl ObserveDurationNamed for MetricSet {
    fn observe_duration(&mut self, name: &str, d: SimDuration) {
        self.observe(name, d.as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_observes_duration_in_seconds() {
        let mut s = Summary::new();
        s.observe_duration(SimDuration::from_millis(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_observes_duration_in_millis() {
        let mut h = Histogram::new();
        h.observe_duration(SimDuration::from_millis(1024));
        assert_eq!(h.nonzero_buckets(), vec![(1024, 1)]);
    }

    #[test]
    fn metric_set_observes_named_duration() {
        let mut m = MetricSet::new();
        m.observe_duration("latency", SimDuration::from_millis(250));
        assert!((m.summary("latency").unwrap().mean() - 0.25).abs() < 1e-12);
    }
}
