//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Both are millisecond-granular. A millisecond is fine-grained enough for
//! every latency the paper reports (the smallest is "less than one second")
//! while keeping arithmetic exact — no floating-point clock drift across
//! platforms, which matters for the determinism guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as a "run to completion" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Creates an instant `mins` minutes after the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Creates an instant `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Creates an instant `days` days after the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Millisecond offset within the current simulated 24-hour day.
    ///
    /// Used by the rejuvenation scheduler ("every night at 11:30 PM").
    pub const fn millis_of_day(self) -> u64 {
        self.0 % 86_400_000
    }

    /// Index of the simulated day this instant falls in (day 0 starts at the epoch).
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400_000
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000)
    }

    /// Creates a duration from fractional seconds, rounding to milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero — distribution samplers
    /// use this to guard against pathological draws.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1_000.0).round().min(u64::MAX as f64) as u64)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in whole minutes (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let (d, rem) = (ms / 86_400_000, ms % 86_400_000);
        let (h, rem) = (rem / 3_600_000, rem % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1_000, rem % 1_000);
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000 {
            write!(f, "{:.1}min", self.0 as f64 / 60_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        // Saturating: earlier.since(later) is zero, not underflow.
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(2), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_millis(1_500));
    }

    #[test]
    fn day_arithmetic_for_rejuvenation_schedule() {
        // 11:30 PM on day 3.
        let t = SimTime::from_days(3) + SimDuration::from_hours(23) + SimDuration::from_mins(30);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.millis_of_day(), (23 * 60 + 30) * 60_000);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(2) + SimDuration::from_hours(3) + SimDuration::from_millis(42);
        assert_eq!(t.to_string(), "d2+03:00:00.042");
        assert_eq!(SimDuration::from_millis(900).to_string(), "900ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_mins(90).to_string(), "90.0min");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
