//! Property tests for the engine determinism invariant (DESIGN.md §6):
//! same seed ⇒ identical trace; equal-timestamp events fire in FIFO order.

use proptest::prelude::*;
use simba_sim::{Ctx, Engine, SimDuration, SimTime};

#[derive(Clone, Debug)]
enum Ev {
    Work(u32),
}

#[derive(Default)]
struct World {
    order: Vec<u32>,
    draws: Vec<u64>,
}

fn run(seed: u64, schedule: &[(u64, u32)], fanout: &[(u64, u32)]) -> (Vec<u32>, Vec<u64>) {
    let fanout = fanout.to_vec();
    let mut engine = Engine::new(World::default(), seed);
    for &(delay_ms, id) in schedule {
        engine.schedule_in(SimDuration::from_millis(delay_ms), Ev::Work(id));
    }
    engine.run_until(SimTime::from_secs(3_600), move |w: &mut World, ctx: &mut Ctx<'_, Ev>, ev| {
        let Ev::Work(id) = ev;
        w.order.push(id);
        w.draws.push(ctx.rng().range(0, 1_000_000));
        // Data-dependent fan-out: some events spawn children.
        for &(child_delay, child_id) in &fanout {
            if child_id % 7 == id % 7 && w.order.len() < 500 {
                ctx.schedule_in(SimDuration::from_millis(child_delay), Ev::Work(child_id));
            }
        }
    });
    let (w, _) = engine.into_parts();
    (w.order, w.draws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_same_run(
        seed in any::<u64>(),
        schedule in proptest::collection::vec((0u64..10_000, any::<u32>()), 1..30),
        fanout in proptest::collection::vec((1u64..5_000, any::<u32>()), 0..5),
    ) {
        let a = run(seed, &schedule, &fanout);
        let b = run(seed, &schedule, &fanout);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn equal_timestamps_fire_fifo(ids in proptest::collection::vec(any::<u32>(), 1..50)) {
        let schedule: Vec<(u64, u32)> = ids.iter().map(|&id| (42u64, id)).collect();
        let (order, _) = run(0, &schedule, &[]);
        prop_assert_eq!(order, ids);
    }

    #[test]
    fn different_seed_same_event_order_without_randomized_scheduling(
        schedule in proptest::collection::vec((0u64..10_000, any::<u32>()), 1..30),
    ) {
        // The *event order* depends only on the schedule, not the seed —
        // randomness only affects draws, not ordering, in this workload.
        let (order_a, draws_a) = run(1, &schedule, &[]);
        let (order_b, draws_b) = run(2, &schedule, &[]);
        prop_assert_eq!(order_a, order_b);
        if draws_a.len() > 4 {
            prop_assert_ne!(draws_a, draws_b);
        }
    }
}
