//! Satellite 3: store concurrency guarantees.
//!
//! * Property test — expiry never resurrects a fact: once a key's fact
//!   of generation `g` has been observed gone (expired, swept, or
//!   evicted), no later read returns a generation `<= g`, and the
//!   generations a reader observes for one key never decrease.
//! * Race test — a lagging subscriber is dropped while writer threads
//!   keep making progress; no writer ever blocks on the dead observer.

use proptest::prelude::*;
use simba_sim::{SimDuration, SimTime};
use simba_store::{SoftStateStore, StoreConfig};
use simba_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Publish under one of a few fixed keys with a bounded TTL.
    Put { key: u8, ttl_ms: u64 },
    /// Read one of the fixed keys.
    Get { key: u8 },
    /// Run the periodic sweeper.
    Sweep,
    /// Let time pass.
    Advance { ms: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u64..200).prop_map(|(key, ttl_ms)| Op::Put { key, ttl_ms }),
        (0u8..4).prop_map(|key| Op::Get { key }),
        Just(Op::Sweep),
        (1u64..120).prop_map(|ms| Op::Advance { ms }),
    ]
}

proptest! {
    /// Drives a single-shard store through an arbitrary schedule with a
    /// monotone clock and checks, per key: observed generations never
    /// decrease, a generation seen dead is never read again, and an
    /// expired-at-read fact is never handed out.
    #[test]
    fn expiry_never_resurrects_a_fact(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let store = SoftStateStore::new(
            StoreConfig { shards: 1, ..StoreConfig::default() },
            Telemetry::disabled(),
        );
        let mut now = SimTime::from_millis(0);
        // Per key: highest generation we have put, highest we have read,
        // and the generation of the fact currently believed live.
        let mut last_put: HashMap<u8, u64> = HashMap::new();
        let mut last_read: HashMap<u8, u64> = HashMap::new();
        let mut dead_high: HashMap<u8, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { key, ttl_ms } => {
                    let gen = store.put(
                        "presence",
                        &format!("k{key}"),
                        "v",
                        SimDuration::from_millis(ttl_ms),
                        "prop",
                        now,
                    );
                    let prev = last_put.insert(key, gen);
                    prop_assert!(prev.is_none_or(|p| gen > p), "generation not monotone");
                }
                Op::Get { key } => {
                    match store.get("presence", &format!("k{key}"), now) {
                        Some(fact) => {
                            prop_assert!(!fact.is_expired(now), "expired fact returned");
                            prop_assert!(
                                last_read.get(&key).is_none_or(|&r| fact.generation >= r),
                                "observed generation went backwards"
                            );
                            prop_assert!(
                                dead_high.get(&key).is_none_or(|&d| fact.generation > d),
                                "a dead fact was resurrected"
                            );
                            last_read.insert(key, fact.generation);
                        }
                        None => {
                            // Whatever was live for this key is now gone;
                            // nothing at or below its generation may come back.
                            if let Some(&g) = last_put.get(&key) {
                                let d = dead_high.entry(key).or_insert(0);
                                *d = (*d).max(g);
                            }
                        }
                    }
                }
                Op::Sweep => {
                    store.sweep(now);
                }
                Op::Advance { ms } => {
                    now = SimTime::from_millis(now.as_millis() + ms);
                }
            }
        }
    }
}

/// A subscriber that never drains its one-slot channel is shed while
/// four writer threads publish 1000 facts: every put completes, the
/// subscriber is unsubscribed, and `store.sub_dropped` records it.
#[test]
fn lagging_subscriber_dropped_while_writers_progress() {
    let telemetry = Telemetry::with_sink(Arc::new(simba_telemetry::RingBufferSink::new(64)));
    let store = SoftStateStore::new(
        StoreConfig { shards: 4, subscriber_capacity: 1, ..StoreConfig::default() },
        telemetry.clone(),
    );
    // Held but never polled: after one event the channel is full and the
    // next matching event must drop the subscription, not block a put.
    let lagging_rx = store.subscribe(None);
    assert_eq!(store.subscriber_count(), 1);

    let store = Arc::new(store);
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..250u64 {
                    store.put(
                        "presence",
                        &format!("w{w}-u{i}"),
                        "away",
                        SimDuration::from_millis(60_000),
                        "race",
                        SimTime::from_millis(i),
                    );
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread panicked");
    }

    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("store.puts"), 1000, "every write completed");
    assert_eq!(store.subscriber_count(), 0, "lagging subscriber shed");
    assert_eq!(snap.counter("store.sub_dropped"), 1);
    assert_eq!(store.len(), 1000);
    drop(lagging_rx);
}

/// Live subscribers that do drain keep receiving while a lagging peer is
/// shed: dropping one observer never censors the others.
#[tokio::test(start_paused = true)]
async fn healthy_subscriber_survives_peer_drop() {
    let store = SoftStateStore::new(
        StoreConfig { shards: 1, subscriber_capacity: 1, ..StoreConfig::default() },
        Telemetry::disabled(),
    );
    let mut healthy = store.subscribe(Some("presence"));
    let _lagging = store.subscribe(Some("presence"));
    assert_eq!(store.subscriber_count(), 2);

    for i in 0..3u64 {
        store.put(
            "presence",
            "alice",
            &format!("v{i}"),
            SimDuration::from_millis(1_000),
            "test",
            SimTime::from_millis(i),
        );
        // Drain so the healthy channel never fills.
        let event = healthy.recv().await.expect("healthy subscriber still fed");
        assert_eq!(event.key(), "alice");
    }
    assert_eq!(store.subscriber_count(), 1, "only the lagging peer was shed");
}
