//! The sharded store: per-shard locking, lazy + swept TTL expiry,
//! per-scope LRU shedding, and non-blocking subscriber fan-out.

use crate::fact::{Fact, StoreEvent};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{CounterHandle, GaugeHandle, Telemetry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tokio::sync::mpsc;

/// Tuning knobs. The defaults suit the runtime and CLI; the bench raises
/// the capacities.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of lock shards `(scope, key)` pairs hash across. More
    /// shards means less writer contention; `1` serializes everything
    /// (useful for exact-LRU tests).
    pub shards: usize,
    /// Per-scope fact cap, enforced **per shard**: each shard keeps at
    /// most this many live facts for one scope and sheds its
    /// least-recently-touched beyond that. With `shards == 1` the bound
    /// is exact; with `n` shards a scope holds at most `n × cap` facts.
    pub scope_capacity: usize,
    /// Bounded capacity of each subscriber's event channel. A subscriber
    /// whose channel is full when an event arrives is dropped (counted
    /// under `store.sub_dropped`) — writers never block on observers.
    pub subscriber_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            scope_capacity: 4_096,
            subscriber_capacity: 64,
        }
    }
}

/// Cached metric handles (one registry lock at construction, atomics
/// after).
#[derive(Debug, Clone)]
struct Counters {
    puts: CounterHandle,
    hits: CounterHandle,
    misses: CounterHandle,
    expired: CounterHandle,
    evicted: CounterHandle,
    sweeps: CounterHandle,
    sub_dropped: CounterHandle,
    size: GaugeHandle,
    subscribers: GaugeHandle,
}

impl Counters {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        Counters {
            puts: m.counter("store.puts"),
            hits: m.counter("store.hits"),
            misses: m.counter("store.misses"),
            expired: m.counter("store.expired"),
            evicted: m.counter("store.evicted"),
            sweeps: m.counter("store.sweeps"),
            sub_dropped: m.counter("store.sub_dropped"),
            size: m.gauge("store.size"),
            subscribers: m.gauge("store.subscribers"),
        }
    }
}

/// One stored fact plus its LRU access stamp.
#[derive(Debug)]
struct Entry {
    value: String,
    source: String,
    published_at: SimTime,
    expires_at: SimTime,
    generation: u64,
    /// Shard-local access tick; only the newest queue slot for a key is
    /// live, older slots are lazily skipped.
    tick: u64,
}

impl Entry {
    fn fact(&self) -> Fact {
        Fact {
            value: self.value.clone(),
            source: self.source.clone(),
            published_at: self.published_at,
            expires_at: self.expires_at,
            generation: self.generation,
        }
    }
}

/// One lock's worth of the map.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<(String, String), Entry>,
    /// Lazy per-scope LRU queue of `(tick, key)`; stale slots (tick no
    /// longer matching the entry) are skipped at eviction and compacted
    /// away when the queue outgrows the scope 4:1.
    lru: HashMap<String, VecDeque<(u64, String)>>,
    /// Live facts per scope in this shard.
    scope_len: HashMap<String, usize>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, scope: &str, key: &str) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        let queue = self.lru.entry(scope.to_string()).or_default();
        queue.push_back((tick, key.to_string()));
        let live = self.scope_len.get(scope).copied().unwrap_or(0);
        if queue.len() > 4 * live + 8 {
            let entries = &self.entries;
            let scope_owned = scope.to_string();
            queue.retain(|(t, k)| {
                entries
                    .get(&(scope_owned.clone(), k.clone()))
                    .is_some_and(|e| e.tick == *t)
            });
        }
        tick
    }

    fn remove(&mut self, scope: &str, key: &str) -> Option<Entry> {
        let entry = self.entries.remove(&(scope.to_string(), key.to_string()))?;
        if let Some(len) = self.scope_len.get_mut(scope) {
            *len = len.saturating_sub(1);
        }
        Some(entry)
    }

    /// Sheds the least-recently-touched live fact in `scope` other than
    /// `keep`. Returns the evicted `(key, generation)`.
    fn evict_lru(&mut self, scope: &str, keep: &str) -> Option<(String, u64)> {
        let queue = self.lru.get_mut(scope)?;
        while let Some((tick, key)) = queue.pop_front() {
            if key == keep {
                // The just-touched key carries the newest tick; a live
                // front slot for it would mean nothing older exists.
                continue;
            }
            let is_live = self
                .entries
                .get(&(scope.to_string(), key.clone()))
                .is_some_and(|e| e.tick == tick);
            if is_live {
                let entry = self.remove(scope, &key)?;
                return Some((key, entry.generation));
            }
        }
        None
    }
}

#[derive(Debug)]
struct Subscriber {
    /// `None` subscribes to every scope.
    scope: Option<String>,
    tx: mpsc::Sender<StoreEvent>,
}

#[derive(Debug)]
struct Inner {
    config: StoreConfig,
    shards: Vec<Mutex<Shard>>,
    /// Next generation, store-wide. Monotone: assigned before any shard
    /// lock, so a later put always carries a larger generation than any
    /// fact it can observe or replace.
    generation: AtomicU64,
    size: AtomicU64,
    subs: Mutex<Vec<Subscriber>>,
    counters: Counters,
    telemetry: Telemetry,
}

/// The sharded soft-state store. Cloning is cheap (an `Arc`); all clones
/// see the same facts. Every operation takes an explicit `now` so the
/// same code is deterministic under the simulation clock and live under
/// a runtime clock.
#[derive(Debug, Clone)]
pub struct SoftStateStore {
    inner: Arc<Inner>,
}

impl SoftStateStore {
    /// Creates a store with the given shape, reporting `store.*` metrics
    /// through `telemetry`.
    pub fn new(config: StoreConfig, telemetry: Telemetry) -> Self {
        let shards = config.shards.max(1);
        SoftStateStore {
            inner: Arc::new(Inner {
                shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
                generation: AtomicU64::new(0),
                size: AtomicU64::new(0),
                subs: Mutex::new(Vec::new()),
                counters: Counters::new(&telemetry),
                config: StoreConfig { shards, ..config },
                telemetry,
            }),
        }
    }

    /// A default-shaped store with telemetry disabled (tests, tools).
    pub fn disabled() -> Self {
        SoftStateStore::new(StoreConfig::default(), Telemetry::disabled())
    }

    /// The configuration in force.
    pub fn config(&self) -> StoreConfig {
        self.inner.config
    }

    /// The telemetry handle the store reports through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    fn shard_for(&self, scope: &str, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        scope.hash(&mut hasher);
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.inner.shards.len();
        &self.inner.shards[idx]
    }

    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        // A panic while holding a shard lock leaves plain map data, not a
        // broken invariant: recover instead of poisoning every reader.
        shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Publishes a fact under `(scope, key)`, replacing any previous one,
    /// and returns its generation. The fact expires `ttl` after `now`.
    pub fn put(
        &self,
        scope: &str,
        key: &str,
        value: impl Into<String>,
        ttl: SimDuration,
        source: impl Into<String>,
        now: SimTime,
    ) -> u64 {
        let generation = self.inner.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let expires_at = SimTime::from_millis(now.as_millis().saturating_add(ttl.as_millis()));
        let entry = Entry {
            value: value.into(),
            source: source.into(),
            published_at: now,
            expires_at,
            generation,
            tick: 0,
        };
        let fact = entry.fact();
        let mut events = Vec::with_capacity(2);
        {
            let mut shard = Self::lock(self.shard_for(scope, key));
            let tick = shard.touch(scope, key);
            let mut entry = entry;
            entry.tick = tick;
            let replaced = shard
                .entries
                .insert((scope.to_string(), key.to_string()), entry)
                .is_some();
            if !replaced {
                *shard.scope_len.entry(scope.to_string()).or_insert(0) += 1;
                self.inner.size.fetch_add(1, Ordering::Relaxed);
                let live = shard.scope_len.get(scope).copied().unwrap_or(0);
                if live > self.inner.config.scope_capacity.max(1) {
                    if let Some((shed_key, shed_gen)) = shard.evict_lru(scope, key) {
                        self.inner.size.fetch_sub(1, Ordering::Relaxed);
                        self.inner.counters.evicted.incr();
                        events.push(StoreEvent::Evicted {
                            scope: scope.to_string(),
                            key: shed_key,
                            generation: shed_gen,
                        });
                    }
                }
            }
        }
        self.inner.counters.puts.incr();
        self.inner.counters.size.set(self.inner.size.load(Ordering::Relaxed));
        events.push(StoreEvent::Published {
            scope: scope.to_string(),
            key: key.to_string(),
            fact,
        });
        self.notify(events);
        generation
    }

    /// Reads the fact under `(scope, key)` as of `now`. An expired fact
    /// is removed on the spot (counted under `store.expired`) and never
    /// returned — a hit is always a live fact.
    pub fn get(&self, scope: &str, key: &str, now: SimTime) -> Option<Fact> {
        let mut expired_event = None;
        let result = {
            let mut shard = Self::lock(self.shard_for(scope, key));
            match shard.entries.get(&(scope.to_string(), key.to_string())) {
                None => None,
                Some(entry) if now >= entry.expires_at => {
                    let entry = shard.remove(scope, key)?;
                    expired_event = Some(StoreEvent::Expired {
                        scope: scope.to_string(),
                        key: key.to_string(),
                        generation: entry.generation,
                    });
                    None
                }
                Some(_) => {
                    let tick = shard.touch(scope, key);
                    let entry = shard
                        .entries
                        .get_mut(&(scope.to_string(), key.to_string()))?;
                    entry.tick = tick;
                    Some(entry.fact())
                }
            }
        };
        match (&result, expired_event) {
            (Some(_), _) => self.inner.counters.hits.incr(),
            (None, Some(event)) => {
                self.inner.size.fetch_sub(1, Ordering::Relaxed);
                self.inner.counters.expired.incr();
                self.inner.counters.misses.incr();
                self.inner.counters.size.set(self.inner.size.load(Ordering::Relaxed));
                self.notify(vec![event]);
            }
            (None, None) => self.inner.counters.misses.incr(),
        }
        result
    }

    /// Removes every fact expired at `now` across all shards, returning
    /// how many were dropped. Drive this periodically from the owning
    /// clock (the runtime spawns a sweeper task; the simulation calls it
    /// from its event loop).
    pub fn sweep(&self, now: SimTime) -> usize {
        let mut events = Vec::new();
        for shard in &self.inner.shards {
            let mut shard = Self::lock(shard);
            let dead: Vec<(String, String)> = shard
                .entries
                .iter()
                .filter(|(_, e)| now >= e.expires_at)
                .map(|(k, _)| k.clone())
                .collect();
            for (scope, key) in dead {
                if let Some(entry) = shard.remove(&scope, &key) {
                    events.push(StoreEvent::Expired {
                        scope,
                        key,
                        generation: entry.generation,
                    });
                }
            }
        }
        let removed = events.len();
        if removed > 0 {
            self.inner.size.fetch_sub(removed as u64, Ordering::Relaxed);
            self.inner.counters.expired.add(removed as u64);
            self.inner.counters.size.set(self.inner.size.load(Ordering::Relaxed));
        }
        self.inner.counters.sweeps.incr();
        self.notify(events);
        removed
    }

    /// Subscribes to store events, optionally filtered to one scope.
    /// The channel is bounded by [`StoreConfig::subscriber_capacity`]; a
    /// subscriber whose channel is full when an event arrives is dropped
    /// (its receiver ends) and counted under `store.sub_dropped`.
    pub fn subscribe(&self, scope: Option<&str>) -> mpsc::Receiver<StoreEvent> {
        let (tx, rx) = mpsc::channel(self.inner.config.subscriber_capacity.max(1));
        let mut subs = Self::lock_subs(&self.inner.subs);
        subs.push(Subscriber { scope: scope.map(str::to_string), tx });
        self.inner.counters.subscribers.set(subs.len() as u64);
        rx
    }

    /// Live subscriber count (drops are noticed on the next event).
    pub fn subscriber_count(&self) -> usize {
        Self::lock_subs(&self.inner.subs).len()
    }

    /// Total live facts (facts expired but not yet noticed by a read or
    /// sweep still count).
    pub fn len(&self) -> usize {
        self.inner.size.load(Ordering::Relaxed) as usize
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of one scope's live facts at `now`, sorted by key.
    /// Read-only: expired facts are skipped but left for the sweeper.
    pub fn snapshot_scope(&self, scope: &str, now: SimTime) -> Vec<(String, Fact)> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            let shard = Self::lock(shard);
            for ((s, key), entry) in &shard.entries {
                if s == scope && now < entry.expires_at {
                    out.push((key.clone(), entry.fact()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn lock_subs(subs: &Mutex<Vec<Subscriber>>) -> std::sync::MutexGuard<'_, Vec<Subscriber>> {
        subs.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Fans events out to subscribers. `try_send` only: a full (or
    /// closed) channel drops the subscriber then and there — the cost of
    /// lagging lands on the observer, never on the write path.
    fn notify(&self, events: Vec<StoreEvent>) {
        if events.is_empty() {
            return;
        }
        let mut subs = Self::lock_subs(&self.inner.subs);
        if subs.is_empty() {
            return;
        }
        let mut dropped = 0u64;
        for event in events {
            subs.retain(|sub| {
                let wants = sub.scope.as_deref().is_none_or(|s| s == event.scope());
                if !wants {
                    return true;
                }
                if sub.tx.try_send(event.clone()).is_err() {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        if dropped > 0 {
            self.inner.counters.sub_dropped.add(dropped);
            self.inner.counters.subscribers.set(subs.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn store1() -> SoftStateStore {
        SoftStateStore::new(
            StoreConfig { shards: 1, ..StoreConfig::default() },
            Telemetry::disabled(),
        )
    }

    #[test]
    fn put_get_round_trip() {
        let store = store1();
        let gen = store.put("presence", "alice", "away", d(1_000), "wish", t(0));
        let fact = store.get("presence", "alice", t(500)).expect("live fact");
        assert_eq!(fact.value, "away");
        assert_eq!(fact.source, "wish");
        assert_eq!(fact.generation, gen);
        assert_eq!(fact.ttl_remaining(t(500)), d(500));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn expired_fact_is_never_returned() {
        let store = store1();
        store.put("presence", "alice", "away", d(1_000), "wish", t(0));
        assert!(store.get("presence", "alice", t(1_000)).is_none());
        // The lazy removal really removed it.
        assert_eq!(store.len(), 0);
        assert!(store.get("presence", "alice", t(0)).is_none());
    }

    #[test]
    fn refresh_extends_and_bumps_generation() {
        let store = store1();
        let g1 = store.put("presence", "alice", "away", d(100), "wish", t(0));
        let g2 = store.put("presence", "alice", "at_desk", d(100), "wish", t(50));
        assert!(g2 > g1);
        let fact = store.get("presence", "alice", t(120)).expect("refreshed");
        assert_eq!(fact.value, "at_desk");
        assert_eq!(fact.generation, g2);
    }

    #[test]
    fn sweep_removes_expired_facts_only() {
        let store = store1();
        store.put("presence", "a", "x", d(100), "s", t(0));
        store.put("presence", "b", "y", d(500), "s", t(0));
        store.put("chanhealth", "im", "down", d(100), "s", t(0));
        assert_eq!(store.sweep(t(200)), 2);
        assert_eq!(store.len(), 1);
        assert!(store.get("presence", "b", t(200)).is_some());
    }

    #[test]
    fn scope_capacity_sheds_least_recently_touched() {
        let store = SoftStateStore::new(
            StoreConfig { shards: 1, scope_capacity: 2, ..StoreConfig::default() },
            Telemetry::disabled(),
        );
        store.put("presence", "a", "1", d(10_000), "s", t(0));
        store.put("presence", "b", "2", d(10_000), "s", t(1));
        // Touch `a` so `b` is now the LRU fact.
        assert!(store.get("presence", "a", t(2)).is_some());
        store.put("presence", "c", "3", d(10_000), "s", t(3));
        assert_eq!(store.len(), 2);
        assert!(store.get("presence", "b", t(4)).is_none(), "LRU fact shed");
        assert!(store.get("presence", "a", t(4)).is_some());
        assert!(store.get("presence", "c", t(4)).is_some());
        // Other scopes are not charged against this scope's bound.
        store.put("chanhealth", "im", "healthy", d(10_000), "s", t(5));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn subscriber_sees_publish_expire_and_evict() {
        let store = SoftStateStore::new(
            StoreConfig { shards: 1, scope_capacity: 1, ..StoreConfig::default() },
            Telemetry::disabled(),
        );
        let mut rx = store.subscribe(Some("presence"));
        let g_a = store.put("presence", "a", "1", d(100), "s", t(0));
        let g_b = store.put("presence", "b", "2", d(100), "s", t(1));
        assert!(store.get("presence", "b", t(200)).is_none());

        assert_eq!(
            rx.try_recv().ok().map(|e| e.key().to_string()),
            Some("a".to_string())
        );
        match rx.try_recv().expect("evict event") {
            StoreEvent::Evicted { key, generation, .. } => {
                assert_eq!(key, "a");
                assert_eq!(generation, g_a);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // b's publish, then b's lazy expiry.
        assert!(matches!(rx.try_recv(), Ok(StoreEvent::Published { .. })));
        match rx.try_recv().expect("expiry event") {
            StoreEvent::Expired { key, generation, .. } => {
                assert_eq!(key, "b");
                assert_eq!(generation, g_b);
            }
            other => panic!("expected expiry, got {other:?}"),
        }
    }

    #[test]
    fn scope_filter_limits_events() {
        let store = store1();
        let mut rx = store.subscribe(Some("chanhealth"));
        store.put("presence", "alice", "away", d(100), "s", t(0));
        store.put("chanhealth", "im", "down", d(100), "s", t(0));
        let event = rx.try_recv().expect("one event");
        assert_eq!(event.scope(), "chanhealth");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn lagging_subscriber_is_dropped_not_blocking() {
        let telemetry = Telemetry::with_sink(std::sync::Arc::new(
            simba_telemetry::RingBufferSink::new(16),
        ));
        let store = SoftStateStore::new(
            StoreConfig { shards: 1, subscriber_capacity: 2, ..StoreConfig::default() },
            telemetry.clone(),
        );
        let _rx = store.subscribe(None);
        assert_eq!(store.subscriber_count(), 1);
        for i in 0..10 {
            store.put("presence", &format!("u{i}"), "x", d(100), "s", t(i));
        }
        // The two-slot channel filled; the third event dropped the
        // subscriber, and later puts stopped paying for it.
        assert_eq!(store.subscriber_count(), 0);
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("store.sub_dropped"), 1);
        assert_eq!(snap.counter("store.puts"), 10);
    }

    #[test]
    fn snapshot_scope_skips_expired() {
        let store = store1();
        store.put("presence", "a", "1", d(100), "s", t(0));
        store.put("presence", "b", "2", d(500), "s", t(0));
        let snap = store.snapshot_scope("presence", t(200));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "b");
        // Read-only: the expired fact is left for the sweeper.
        assert_eq!(store.len(), 2);
        assert_eq!(store.sweep(t(200)), 1);
    }

    #[test]
    fn metrics_follow_the_lifecycle() {
        let telemetry = Telemetry::with_sink(std::sync::Arc::new(
            simba_telemetry::RingBufferSink::new(16),
        ));
        let store = SoftStateStore::new(
            StoreConfig { shards: 1, ..StoreConfig::default() },
            telemetry.clone(),
        );
        store.put("presence", "a", "1", d(100), "s", t(0));
        assert!(store.get("presence", "a", t(10)).is_some());
        assert!(store.get("presence", "missing", t(10)).is_none());
        assert!(store.get("presence", "a", t(200)).is_none());
        store.sweep(t(200));
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("store.puts"), 1);
        assert_eq!(snap.counter("store.hits"), 1);
        assert_eq!(snap.counter("store.misses"), 2);
        assert_eq!(snap.counter("store.expired"), 1);
        assert_eq!(snap.counter("store.sweeps"), 1);
        assert_eq!(snap.gauge("store.size"), 0);
    }
}
