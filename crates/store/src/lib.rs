//! `simba-store` — the soft-state store behind presence-aware routing.
//!
//! The paper's evaluation (§5) integrates SIMBA with Aladdin's
//! **Soft-State Store** and the **WISH** user-location service: sensors
//! and gateways publish short-lived facts — where the user is, whether a
//! channel is healthy — and MyAlertBuddy consults them when it starts a
//! delivery, falling back to the static profile when the facts have
//! expired. This crate is that state layer:
//!
//! * a sharded, in-memory map `(scope, key) → Fact` with per-shard
//!   locking so concurrent writers and readers never serialize globally;
//! * **TTL expiry**, both lazy (an expired fact read through
//!   [`SoftStateStore::get`] is removed on the spot and never returned)
//!   and periodic (the owner drives [`SoftStateStore::sweep`] from its
//!   clock, so simulation time stays deterministic — the store itself
//!   never reads a wall clock);
//! * **bounded per-scope capacity** with LRU shedding — soft state is
//!   rediscoverable by design, so the oldest-touched fact is dropped
//!   rather than growing without bound;
//! * a **subscription API** over bounded channels: a subscriber that
//!   lags is dropped (counted under `store.sub_dropped`), never allowed
//!   to block a writer.
//!
//! Facts carry a **generation** from a store-wide monotone counter: a
//! later publication always carries a larger generation, so expiry can
//! never "resurrect" an old value — any fact observed after a removal is
//! provably newer. `crates/store/tests/` holds the property test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fact;
mod store;

pub use fact::{Fact, StoreEvent};
pub use store::{SoftStateStore, StoreConfig};

/// The scope presence facts are published under (`presence/<user>`).
pub const PRESENCE_SCOPE: &str = "presence";
/// The scope channel-health facts are published under
/// (`chanhealth/<channel>`, keys `im` / `email` / `sms`).
pub const CHANHEALTH_SCOPE: &str = "chanhealth";
/// The [`CHANHEALTH_SCOPE`] value meaning the channel is usable; any
/// other live value marks it unhealthy and demotes its delivery blocks.
pub const HEALTHY_VALUE: &str = "healthy";
