//! The unit of soft state: a short-lived, generation-stamped fact.

use simba_sim::{SimDuration, SimTime};

/// One soft-state fact: a value published under `(scope, key)` that
/// expires on its own unless refreshed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// The published value (free-form; the conventions live with the
    /// publishers — e.g. `"away"` under `presence/<user>`).
    pub value: String,
    /// Who published it (a gateway source name, a channel name...).
    pub source: String,
    /// When it was published.
    pub published_at: SimTime,
    /// The instant it stops being true. A fact is expired once
    /// `now >= expires_at`.
    pub expires_at: SimTime,
    /// Store-wide monotone publication counter: a later put always has a
    /// larger generation, so a reader can order observations and expiry
    /// can never resurrect an older value.
    pub generation: u64,
}

impl Fact {
    /// Whether the fact is expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }

    /// Time-to-live remaining at `now` (zero when expired).
    pub fn ttl_remaining(&self, now: SimTime) -> SimDuration {
        self.expires_at.since(now)
    }
}

/// A change notification delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// A fact was published (new key or refresh of an existing one).
    Published {
        /// The fact's scope.
        scope: String,
        /// The fact's key.
        key: String,
        /// The fact as stored.
        fact: Fact,
    },
    /// A fact expired (noticed lazily by a read or by a sweep).
    Expired {
        /// The fact's scope.
        scope: String,
        /// The fact's key.
        key: String,
        /// Generation of the fact that expired.
        generation: u64,
    },
    /// A fact was shed to keep its scope inside its capacity bound.
    Evicted {
        /// The fact's scope.
        scope: String,
        /// The fact's key.
        key: String,
        /// Generation of the fact that was shed.
        generation: u64,
    },
}

impl StoreEvent {
    /// The scope the event happened in.
    pub fn scope(&self) -> &str {
        match self {
            StoreEvent::Published { scope, .. }
            | StoreEvent::Expired { scope, .. }
            | StoreEvent::Evicted { scope, .. } => scope,
        }
    }

    /// The key the event happened to.
    pub fn key(&self) -> &str {
        match self {
            StoreEvent::Published { key, .. }
            | StoreEvent::Expired { key, .. }
            | StoreEvent::Evicted { key, .. } => key,
        }
    }
}
