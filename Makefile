# Offline CI for the SIMBA workspace. No network: all dependencies are
# vendored path crates, so every target below runs from a cold checkout.
#
#   make ci     — everything a PR must pass
#   make build  — release build of the whole workspace
#   make test   — tier-1 tests (root package: facade + integration tests)
#   make test-all — every workspace member's tests
#   make doc    — rustdoc for all workspace crates (no deps)
#   make lint   — clippy, warnings as errors
#   make analyze — simba-analyze: telemetry registry + hygiene pass +
#                 cross-file concurrency/durability rules; fails on any
#                 unsuppressed finding and writes ANALYZE_REPORT.json
#                 (schema in crates/analyze/README.md) next to the
#                 BENCH_e*.json artifacts
#   make tsan   — sharded-host + ledger crash-matrix tests under
#                 ThreadSanitizer when a nightly toolchain is installed;
#                 prints a notice and succeeds otherwise
#   make soak   — short deterministic multi-user host soak (E3H)
#   make gateway-smoke — E6 gateway smoke: 1k alerts over localhost TCP
#                 with injected drops; asserts zero accepted-then-lost
#   make store-smoke — E7 soft-state store smoke: concurrent TTL'd
#                 writes/reads/subscriptions; asserts zero expired-fact reads
#   make host-smoke — E8 sharded-host smoke: 2k active of 20k registered
#                 users through hibernation + group-commit shard logs;
#                 on machines with >= 2 CPUs it also runs the thread-per-
#                 shard multi-core comparison (multiplier asserted >= 2x
#                 only when >= 4 cores are available)
#   make ledger-smoke — E9 durable delivery ledger smoke: 4 workers x
#                 20k deliveries with injected worker kills and forced
#                 lease expiries; asserts zero lost, zero double-effect
#   make rules-smoke — E10 rules smoke: single-thread rule-evaluation
#                 floor plus the 10k-alarm storm collapsed into exactly
#                 one digest delivery with critical cut-through
#   make trajectory — merge the BENCH_e*.json artifacts into
#                 BENCH_TRAJECTORY.json (schema in EXPERIMENTS.md) and
#                 fail if any merged artifact recorded a failed floor
#
# The six smoke targets each write a machine-readable BENCH_e*.json
# artifact (schema in EXPERIMENTS.md) and exit non-zero below their
# throughput floors; `make trajectory` then merges them, so `make ci`
# both produces the bench trajectory and fails on a regression.

CARGO ?= cargo

.PHONY: ci build test test-all doc lint analyze tsan soak gateway-smoke store-smoke host-smoke ledger-smoke rules-smoke trajectory clean

ci: build test doc lint analyze soak gateway-smoke store-smoke host-smoke ledger-smoke rules-smoke trajectory

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test --workspace -q

doc:
	$(CARGO) doc --no-deps

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	# Informational second pass: surface every unwrap in the crates the
	# dependability argument leans on. simba-analyze is the hard gate
	# (it understands test code and suppressions); this just prints.
	$(CARGO) clippy -p simba-core -p simba-runtime -p simba-gateway -p simba-net -p simba-ledger --lib -- -W clippy::unwrap_used

analyze:
	$(CARGO) run -q -p simba-analyze -- check --report ANALYZE_REPORT.json

# ThreadSanitizer pass over the code paths with real cross-thread
# sharing: the thread-per-shard host and the ledger crash matrix.
# -Z sanitizer=thread needs a nightly toolchain and std rebuilt with
# sanitizer instrumentation (-Z build-std); when rustup has no nightly
# (the offline CI image ships stable only) this prints a notice and
# succeeds, so `make tsan` is safe to run anywhere.
tsan:
	@if ! rustup run nightly rustc --version >/dev/null 2>&1; then \
		echo "tsan: no nightly toolchain installed — skipping (rustup toolchain install nightly, then re-run \`make tsan\`)"; \
	elif [ ! -f "$$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library/Cargo.lock" ]; then \
		echo "tsan: nightly lacks rust-src (needed for -Z build-std) — skipping (rustup component add rust-src --toolchain nightly)"; \
	else \
		echo "tsan: running sharded_threads + ledger crash matrix under ThreadSanitizer"; \
		RUSTFLAGS="-Z sanitizer=thread" \
		rustup run nightly $(CARGO) test -Z build-std --target x86_64-unknown-linux-gnu \
			-p simba-runtime --test sharded_threads -- --test-threads=1 && \
		RUSTFLAGS="-Z sanitizer=thread" \
		rustup run nightly $(CARGO) test -Z build-std --target x86_64-unknown-linux-gnu \
			-p simba-ledger --test crash_matrix -- --test-threads=1; \
	fi

soak:
	$(CARGO) run --release -q -p simba-bench --bin exp_e3_host_soak -- --smoke --seed 42

gateway-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e6_gateway -- --smoke

store-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e7_store -- --smoke

host-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e8_sharded -- --smoke
	@cores=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$cores" -ge 2 ]; then \
		threads=$$cores; [ "$$threads" -gt 8 ] && threads=8; \
		echo "host-smoke: $$cores cores, running multi-core E8 with $$threads shard threads"; \
		$(CARGO) run --release -q -p simba-bench --bin exp_e8_sharded -- --smoke --threads $$threads; \
	else \
		echo "host-smoke: single core, skipping the multi-core E8 comparison"; \
	fi

ledger-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e9_ledger -- --smoke

rules-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e10_rules -- --smoke

trajectory:
	$(CARGO) run --release -q -p simba-bench --bin bench_trajectory

clean:
	$(CARGO) clean
