# Offline CI for the SIMBA workspace. No network: all dependencies are
# vendored path crates, so every target below runs from a cold checkout.
#
#   make ci     — everything a PR must pass
#   make build  — release build of the whole workspace
#   make test   — tier-1 tests (root package: facade + integration tests)
#   make test-all — every workspace member's tests
#   make doc    — rustdoc for all workspace crates (no deps)
#   make lint   — clippy, warnings as errors
#   make analyze — simba-analyze: telemetry registry + hygiene pass
#   make soak   — short deterministic multi-user host soak (E3H)
#   make gateway-smoke — E6 gateway smoke: 1k alerts over localhost TCP
#                 with injected drops; asserts zero accepted-then-lost
#   make store-smoke — E7 soft-state store smoke: concurrent TTL'd
#                 writes/reads/subscriptions; asserts zero expired-fact reads
#   make host-smoke — E8 sharded-host smoke: 2k active of 20k registered
#                 users through hibernation + group-commit shard logs;
#                 on machines with >= 2 CPUs it also runs the thread-per-
#                 shard multi-core comparison (multiplier asserted >= 2x
#                 only when >= 4 cores are available)
#   make ledger-smoke — E9 durable delivery ledger smoke: 4 workers x
#                 20k deliveries with injected worker kills and forced
#                 lease expiries; asserts zero lost, zero double-effect
#
# The five smoke targets each write a machine-readable BENCH_e*.json
# artifact (schema in EXPERIMENTS.md) and exit non-zero below their
# throughput floors, so `make ci` both produces the bench trajectory and
# fails on a regression.

CARGO ?= cargo

.PHONY: ci build test test-all doc lint analyze soak gateway-smoke store-smoke host-smoke ledger-smoke clean

ci: build test doc lint analyze soak gateway-smoke store-smoke host-smoke ledger-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test --workspace -q

doc:
	$(CARGO) doc --no-deps

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings
	# Informational second pass: surface every unwrap in the crates the
	# dependability argument leans on. simba-analyze is the hard gate
	# (it understands test code and suppressions); this just prints.
	$(CARGO) clippy -p simba-core -p simba-runtime -p simba-gateway -p simba-net -p simba-ledger --lib -- -W clippy::unwrap_used

analyze:
	$(CARGO) run -q -p simba-analyze -- check

soak:
	$(CARGO) run --release -q -p simba-bench --bin exp_e3_host_soak -- --smoke --seed 42

gateway-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e6_gateway -- --smoke

store-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e7_store -- --smoke

host-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e8_sharded -- --smoke
	@cores=$$(nproc 2>/dev/null || echo 1); \
	if [ "$$cores" -ge 2 ]; then \
		threads=$$cores; [ "$$threads" -gt 8 ] && threads=8; \
		echo "host-smoke: $$cores cores, running multi-core E8 with $$threads shard threads"; \
		$(CARGO) run --release -q -p simba-bench --bin exp_e8_sharded -- --smoke --threads $$threads; \
	else \
		echo "host-smoke: single core, skipping the multi-core E8 comparison"; \
	fi

ledger-smoke:
	$(CARGO) run --release -q -p simba-bench --bin exp_e9_ledger -- --smoke

clean:
	$(CARGO) clean
