//! §4.2: "Although MyAlertBuddy provides primarily a personalized service,
//! it supports multiple subscribers per category to allow alert sharing."
//!
//! A household's MyAlertBuddy routes one home-security alert to both
//! parents — each with their *own* delivery mode and address book — and
//! each delivery proceeds independently.

use simba::core::address::{Address, AddressBook, CommType};
use simba::core::alert::IncomingAlert;
use simba::core::classify::{Classifier, KeywordField};
use simba::core::delivery::{DeliveryCommand, DeliveryEvent, DeliveryStatus, SendFailure};
use simba::core::mab::{DeliveryId, MabCommand, MabConfig, MabEvent, MyAlertBuddy};
use simba::core::mode::DeliveryMode;
use simba::core::subscription::{SubscriptionRegistry, UserId};
use simba::core::wal::InMemoryWal;
use simba::sim::{SimDuration, SimTime};

fn household() -> MyAlertBuddy<InMemoryWal> {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home.Security");

    let mut registry = SubscriptionRegistry::new();
    for (name, im, email) in [
        ("alice", "im:alice", "alice@work"),
        ("bob", "im:bob", "bob@office"),
    ] {
        let user = UserId::new(name);
        let profile = registry.register_user(user.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, im)).expect("fresh");
        book.add(Address::new("EM", CommType::Email, email)).expect("fresh");
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Mine",
            "IM",
            "EM",
            SimDuration::from_secs(if name == "alice" { 30 } else { 90 }),
        ));
        registry.subscribe("Home.Security", user, "Mine").expect("valid");
    }

    MyAlertBuddy::new(
        MabConfig {
            classifier,
            registry,
            rejuvenation: simba::core::rejuvenate::RejuvenationPolicy::default(),
        },
        InMemoryWal::new(),
        SimTime::ZERO,
    )
}

/// Collects `(delivery, user, attempt, address_value)` from send commands.
fn sends(commands: &[MabCommand]) -> Vec<(DeliveryId, String, simba::core::delivery::AttemptId, String)> {
    commands
        .iter()
        .filter_map(|c| match c {
            MabCommand::Channel {
                delivery,
                user,
                command: DeliveryCommand::Send { attempt, address_value, .. },
            } => Some((*delivery, user.0.clone(), *attempt, address_value.clone())),
            _ => None,
        })
        .collect()
}

#[test]
fn one_alert_fans_out_to_every_subscriber() {
    let mut mab = household();
    let alert = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(5));
    let commands = mab.handle(MabEvent::AlertByIm(alert), SimTime::from_secs(5));

    let out = sends(&commands);
    assert_eq!(out.len(), 2, "one IM per subscriber");
    let users: Vec<&str> = out.iter().map(|(_, u, _, _)| u.as_str()).collect();
    assert!(users.contains(&"alice") && users.contains(&"bob"));
    // Each delivery goes to the subscriber's own address.
    for (_, user, _, addr) in &out {
        assert_eq!(addr, &format!("im:{user}"));
    }
    assert_eq!(mab.stats().deliveries_started, 2);
    assert_eq!(mab.stats().routed, 1, "one alert, shared");
}

#[test]
fn sharers_deliveries_are_independent() {
    let mut mab = household();
    let alert = IncomingAlert::from_im("aladdin-gw", "Garage Door Sensor ON", SimTime::from_secs(1));
    let commands = mab.handle(MabEvent::AlertByIm(alert), SimTime::from_secs(1));
    let out = sends(&commands);

    let (alice_delivery, _, alice_attempt, _) =
        out.iter().find(|(_, u, _, _)| u == "alice").expect("alice routed").clone();
    let (bob_delivery, _, bob_attempt, _) =
        out.iter().find(|(_, u, _, _)| u == "bob").expect("bob routed").clone();

    // Alice acks her IM; bob's IM fails and falls back to email.
    mab.handle(
        MabEvent::Delivery { id: alice_delivery, event: DeliveryEvent::SendAccepted { attempt: alice_attempt } },
        SimTime::from_secs(2),
    );
    mab.handle(
        MabEvent::Delivery { id: alice_delivery, event: DeliveryEvent::Acked { attempt: alice_attempt } },
        SimTime::from_secs(3),
    );
    let fallback = mab.handle(
        MabEvent::Delivery {
            id: bob_delivery,
            event: DeliveryEvent::SendFailed { attempt: bob_attempt, failure: SendFailure::RecipientUnreachable },
        },
        SimTime::from_secs(4),
    );

    assert!(matches!(
        mab.delivery_status(alice_delivery),
        Some(DeliveryStatus::Acked { block: 0, .. })
    ));
    assert!(matches!(
        mab.delivery_status(bob_delivery),
        Some(DeliveryStatus::InProgress)
    ));
    // Bob's fallback email targets bob's address, untouched by alice's ack.
    let fb = sends(&fallback);
    assert_eq!(fb.len(), 1);
    assert_eq!(fb[0].1, "bob");
    assert_eq!(fb[0].3, "bob@office");
}
