//! The §3.3 story, end to end: "the ideal model from a user's perspective
//! would be to map each personal alert category to a delivery mechanism at
//! a central, personalized site."
//!
//! Alice aggregates stock alerts from Yahoo!, WSJ, and CBS MarketWatch
//! into one personal "Investment" category, then — with single MyAlertBuddy
//! updates, never touching the three services — switches its delivery
//! mode, disables her SMS address while abroad, and mutes the category
//! during the night.

use simba::core::address::{Address, AddressBook, CommType};
use simba::core::alert::IncomingAlert;
use simba::core::classify::{Classifier, KeywordField};
use simba::core::delivery::DeliveryCommand;
use simba::core::mab::{MabCommand, MabConfig, MabEvent, MyAlertBuddy};
use simba::core::mode::{Block, DeliveryMode};
use simba::core::subscription::{SubscriptionRegistry, TimeWindow, UserId};
use simba::core::wal::InMemoryWal;
use simba::sim::{SimDuration, SimTime};

fn buddy() -> MyAlertBuddy<InMemoryWal> {
    let mut classifier = Classifier::new();
    // Three independent services; Yahoo!/CBS put keywords in the sender
    // name, WSJ in the subject — per-source rules as in §4.2.
    classifier.accept_source("alerts@yahoo", KeywordField::SenderName, "alerts.yahoo.com");
    classifier.accept_source("alerts@wsj", KeywordField::Subject, "wsj.com/alerts");
    classifier.accept_source("alerts@cbs-mw", KeywordField::SenderName, "cbs.marketwatch.com");
    // Aggregation: three native vocabularies → one personal category.
    classifier.map_keyword("Stocks", "Investment");
    classifier.map_keyword("Financial news", "Investment");
    classifier.map_keyword("Earnings reports", "Investment");

    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, "im:alice")).expect("fresh");
    book.add(Address::new("SMS", CommType::Sms, "+1-555-0100")).expect("fresh");
    book.add(Address::new("EM", CommType::Email, "alice@work")).expect("fresh");
    profile.address_book = book;
    profile.define_mode(
        DeliveryMode::new(
            "SmsFirst",
            vec![
                Block::acked(vec!["SMS".into()], SimDuration::from_secs(120)),
                Block::fire_and_forget(vec!["EM".into()]),
            ],
        )
        .expect("static"),
    );
    profile.define_mode(DeliveryMode::im_then_email("ImFirst", "IM", "EM", SimDuration::from_secs(60)));
    registry.subscribe("Investment", alice, "SmsFirst").expect("valid");

    MyAlertBuddy::new(
        MabConfig {
            classifier,
            registry,
            rejuvenation: simba::core::rejuvenate::RejuvenationPolicy::default(),
        },
        InMemoryWal::new(),
        SimTime::ZERO,
    )
}

/// The three services emit their native alerts.
fn service_alerts(at: SimTime) -> [IncomingAlert; 3] {
    [
        IncomingAlert::from_email("alerts@yahoo", "Yahoo! Stocks", "MSFT 80", "b", at),
        IncomingAlert::from_email("alerts@wsj", "WSJ", "Financial news flash", "b", at),
        IncomingAlert::from_email("alerts@cbs-mw", "CBS Earnings reports", "Q4", "b", at),
    ]
}

fn first_send_channel(commands: &[MabCommand]) -> Option<CommType> {
    commands.iter().find_map(|c| match c {
        MabCommand::Channel { command: DeliveryCommand::Send { comm_type, .. }, .. } => Some(*comm_type),
        _ => None,
    })
}

#[test]
fn aggregation_joins_three_services_into_one_category() {
    let mut mab = buddy();
    for (i, alert) in service_alerts(SimTime::from_secs(10)).into_iter().enumerate() {
        let cmds = mab.handle(MabEvent::AlertByEmail(alert), SimTime::from_secs(10 + i as u64));
        // All three route via the Investment subscription: SMS first.
        assert_eq!(first_send_channel(&cmds), Some(CommType::Sms), "service {i}");
    }
    assert_eq!(mab.stats().routed, 3);
}

#[test]
fn one_mode_switch_redirects_all_three_services() {
    let mut mab = buddy();
    // "She would like to temporarily switch the delivery mechanism for all
    // 'Investment' alerts from SMS to IM" — one update, not three.
    mab.config_mut()
        .registry
        .set_mode("Investment", &UserId::new("alice"), "ImFirst")
        .expect("mode exists");
    for alert in service_alerts(SimTime::from_secs(100)) {
        let cmds = mab.handle(MabEvent::AlertByEmail(alert), SimTime::from_secs(100));
        assert_eq!(first_send_channel(&cmds), Some(CommType::Im));
    }
}

#[test]
fn disabling_the_sms_address_falls_back_automatically() {
    let mut mab = buddy();
    // "When the user travels to an area where her cell phone doesn't work
    // ... she only needs to ask MyAlertBuddy to temporarily disable her
    // SMS address. Any delivery block that contains an SMS action will
    // automatically fail and fall back to the next backup block."
    mab.config_mut()
        .registry
        .user_mut(&UserId::new("alice"))
        .expect("alice")
        .address_book
        .set_enabled("SMS", false);
    let [alert, ..] = service_alerts(SimTime::from_secs(200));
    let cmds = mab.handle(MabEvent::AlertByEmail(alert), SimTime::from_secs(200));
    // Block 1 (SMS) is skipped entirely; block 2 (email) fires at once.
    assert_eq!(first_send_channel(&cmds), Some(CommType::Email));
}

#[test]
fn quiet_hours_suppress_the_category() {
    let mut mab = buddy();
    // "She may need to disable these alerts during certain hours to avoid
    // distractions" — a 09:00–17:00 window.
    mab.config_mut().registry.set_window(
        "Investment",
        &UserId::new("alice"),
        Some(TimeWindow { start_min: 9 * 60, end_min: 17 * 60 }),
    );
    let night = SimTime::from_hours(23);
    let [alert, ..] = service_alerts(night);
    let cmds = mab.handle(MabEvent::AlertByEmail(alert), night);
    assert_eq!(first_send_channel(&cmds), None, "night alert must not route");
    assert_eq!(mab.stats().unsubscribed, 1);

    let noon = SimTime::from_days(1) + SimDuration::from_hours(12);
    let [alert, ..] = service_alerts(noon);
    let cmds = mab.handle(MabEvent::AlertByEmail(alert), noon);
    assert_eq!(first_send_channel(&cmds), Some(CommType::Sms));
}

#[test]
fn whole_configuration_survives_xml_round_trip() {
    let mab = buddy();
    let xml = simba::core::registry_to_xml(&mab.config().registry);
    let restored = simba::core::registry_from_xml(&xml).expect("own output parses");
    // The restored registry routes identically.
    let mut mab2 = MyAlertBuddy::new(
        MabConfig {
            classifier: mab.config().classifier.clone(),
            registry: restored,
            rejuvenation: simba::core::rejuvenate::RejuvenationPolicy::default(),
        },
        InMemoryWal::new(),
        SimTime::ZERO,
    );
    let [alert, ..] = service_alerts(SimTime::from_secs(10));
    let cmds = mab2.handle(MabEvent::AlertByEmail(alert), SimTime::from_secs(10));
    assert_eq!(first_send_channel(&cmds), Some(CommType::Sms));
}
