//! Property test of the §4.2.1 crash-safety invariant (DESIGN.md §6):
//! **an alert acknowledged by MyAlertBuddy is never lost**, for any crash
//! point and any interleaving of alerts and crashes. Duplicates are
//! possible but always timestamp-detectable.

use proptest::prelude::*;
use simba::core::alert::{Alert, AlertId, IncomingAlert, Urgency};
use simba::core::dedup::DuplicateDetector;
use simba::core::mab::{CrashPoint, MabCommand, MabEvent, MyAlertBuddy};
use simba::core::wal::{InMemoryWal, WriteAheadLog};
use simba::sim::SimTime;
use simba_bench::harness::standard_config;

fn arb_crash_point() -> impl Strategy<Value = Option<CrashPoint>> {
    prop_oneof![
        3 => Just(None),
        1 => Just(Some(CrashPoint::BeforeLog)),
        1 => Just(Some(CrashPoint::AfterLogBeforeAck)),
        1 => Just(Some(CrashPoint::AfterAckBeforeRoute)),
        1 => Just(Some(CrashPoint::AfterRouteBeforeMark)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn acked_alerts_are_never_lost(schedule in proptest::collection::vec(arb_crash_point(), 1..40)) {
        let config = standard_config();
        let mut mab = MyAlertBuddy::new(config.clone(), InMemoryWal::new(), SimTime::ZERO);
        let mut dedup = DuplicateDetector::daily();

        let mut acked: Vec<u64> = Vec::new();
        let mut delivered_fresh: Vec<u64> = Vec::new();

        for (i, crash) in schedule.iter().enumerate() {
            let i = i as u64;
            let now = SimTime::from_secs(100 + i * 60);
            if let Some(point) = crash {
                mab.inject_crash_at(*point);
            }
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor p{i} ON"), now);
            let commands = mab.handle(MabEvent::AlertByIm(alert), now);

            let mut routed = commands
                .iter()
                .filter(|c| matches!(c, MabCommand::Channel { .. }))
                .count() > 0;
            if commands.iter().any(|c| matches!(c, MabCommand::AckIm { .. })) {
                acked.push(i);
            }

            if mab.is_crashed() {
                // Restart over the same log; replay completes the pipeline.
                let wal = mab.into_wal();
                mab = MyAlertBuddy::new(config.clone(), wal, now);
                let recovery = mab.recover(now);
                routed |= recovery
                    .iter()
                    .any(|c| matches!(c, MabCommand::Channel { .. }));
            }

            if routed {
                // The user receives (possibly several copies of) the alert;
                // the dedup key is (source, category, origin timestamp).
                let user_view = Alert {
                    id: AlertId(i),
                    source: "aladdin-gw".into(),
                    category: "Home.Security".into(),
                    text: format!("Sensor p{i} ON"),
                    origin_timestamp: now,
                    received_at: now,
                    urgency: Urgency::Normal,
                };
                if dedup.observe(&user_view, now) {
                    delivered_fresh.push(i);
                }
            }
        }

        // THE invariant: every acked alert was delivered (exactly once,
        // post-dedup).
        for tag in &acked {
            prop_assert!(
                delivered_fresh.contains(tag),
                "alert {tag} was acked but never delivered (schedule: {schedule:?})"
            );
        }
        // And dedup means no alert is *seen* twice.
        let mut sorted = delivered_fresh.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), delivered_fresh.len());
    }

    #[test]
    fn unacked_alerts_never_produce_surprise_deliveries_after_crash_before_log(
        n in 1u64..20
    ) {
        // Crash before the log on every alert: no acks, no log records, no
        // replays — the sender knows to fall back.
        let config = standard_config();
        let mut mab = MyAlertBuddy::new(config.clone(), InMemoryWal::new(), SimTime::ZERO);
        for i in 0..n {
            let now = SimTime::from_secs(100 + i * 60);
            mab.inject_crash_at(CrashPoint::BeforeLog);
            let commands = mab.handle(
                MabEvent::AlertByIm(IncomingAlert::from_im("aladdin-gw", "Sensor q ON", now)),
                now,
            );
            prop_assert!(commands.is_empty());
            let wal = mab.into_wal();
            prop_assert!(wal.unprocessed().is_empty());
            mab = MyAlertBuddy::new(config.clone(), wal, now);
            prop_assert!(mab.recover(now).is_empty());
        }
    }
}
