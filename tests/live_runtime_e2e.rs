//! Integration: the tokio live runtime drives the same core as the
//! simulation — an alert flows source → MAB service → channel adapters →
//! ack, under paused (deterministic) tokio time.

use simba::core::alert::IncomingAlert;
use simba::core::delivery::{DeliveryStatus, SendFailure};
use simba::runtime::{Channels, LoopbackChannels, MabService, RuntimeNotice, SendOutcome};
use simba::sim::SimTime;
use simba_bench::harness::standard_config;
use std::time::Duration;

struct Scripted(LoopbackChannels);

impl Channels for Scripted {
    fn send(&mut self, ct: simba::core::address::CommType, addr: &str, text: &str) -> SendOutcome {
        self.0.send(ct, addr, text)
    }
}

async fn wait_finished(
    notices: &mut tokio::sync::mpsc::Receiver<RuntimeNotice>,
) -> DeliveryStatus {
    loop {
        if let RuntimeNotice::DeliveryFinished { status, .. } = notices.recv().await.expect("service alive") { return status }
    }
}

#[tokio::test(start_paused = true)]
async fn live_alert_is_acked_in_under_a_second() {
    let channels = Scripted(LoopbackChannels::always_ack(Duration::from_millis(350)));
    let (service, handle, mut notices) = MabService::new(standard_config(), channels);
    tokio::spawn(service.run());

    handle
        .submit_im_alert(IncomingAlert::from_im("aladdin-gw", "Sensor live ON", SimTime::ZERO))
        .await;
    let t0 = tokio::time::Instant::now();
    let status = wait_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { block: 0, .. }));
    assert!(t0.elapsed() < Duration::from_secs(1));
}

#[tokio::test(start_paused = true)]
async fn live_fallback_cascade_im_to_sms_to_email() {
    // The "Critical" mode escalates IM (60 s) → SMS (120 s) → email.
    let mut loopback = LoopbackChannels::accept_all();
    loopback.script(
        simba_bench::harness::USER_IM,
        SendOutcome::Failed(SendFailure::RecipientUnreachable),
    );
    let (service, handle, mut notices) = MabService::new(standard_config(), Scripted(loopback));
    tokio::spawn(service.run());

    let t0 = tokio::time::Instant::now();
    handle
        .submit_im_alert(IncomingAlert::from_im("aladdin-gw", "Sensor cascade ON", SimTime::ZERO))
        .await;
    let status = wait_finished(&mut notices).await;
    // IM fails synchronously → SMS accepted but unacknowledgeable → its
    // 120 s window expires → email (fire-and-forget) completes block 2.
    assert!(matches!(status, DeliveryStatus::Unconfirmed { block: 2, .. }), "status {status:?}");
    assert!(t0.elapsed() >= Duration::from_secs(120), "elapsed {:?}", t0.elapsed());
}

#[tokio::test(start_paused = true)]
async fn durable_service_replays_unprocessed_alerts_across_restart() {
    use simba::core::wal::{FileWal, WriteAheadLog};
    use simba::core::IncomingAlert as IA;
    use simba::sim::SimTime as T;

    let dir = std::env::temp_dir().join(format!("simba-live-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("durable.wal");
    let _ = std::fs::remove_file(&path);

    // Incarnation 1 dies after logging an alert but before routing it —
    // simulated by writing the record directly, as a crashed service
    // would have left it.
    {
        let mut wal = FileWal::open(&path).expect("fresh log");
        wal.append(
            &IA::from_im("aladdin-gw", "Sensor durable ON", T::from_secs(1)),
            T::from_secs(1),
        )
        .expect("append");
        // No mark_processed: the crash hit before routing completed.
    }

    // Incarnation 2 starts over the same file and must replay it.
    let wal = FileWal::open_tolerant(&path).expect("reopen");
    assert_eq!(wal.unprocessed().len(), 1);
    let channels = Scripted(LoopbackChannels::always_ack(Duration::from_millis(250)));
    let (service, _handle, mut notices) =
        MabService::with_wal(standard_config(), channels, wal);
    tokio::spawn(service.run());

    // The replayed alert is routed and acked with no new submissions.
    let status = wait_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }), "status {status:?}");
    std::fs::remove_file(&path).expect("cleanup");
}

#[tokio::test(start_paused = true)]
async fn live_email_alert_routes_without_ack() {
    let channels = Scripted(LoopbackChannels::always_ack(Duration::from_millis(300)));
    let (service, handle, mut notices) = MabService::new(standard_config(), channels);
    tokio::spawn(service.run());

    handle
        .submit_email_alert(IncomingAlert::from_email(
            "assistant@desktop",
            "SIMBA Desktop Assistant",
            "Email: server down!",
            "forwarded by the assistant",
            SimTime::ZERO,
        ))
        .await;
    // "Email:" in the subject maps to Work → Critical mode (IM first) → acked.
    let status = wait_finished(&mut notices).await;
    assert!(matches!(status, DeliveryStatus::Acked { .. }));
    // Email arrivals produce no AckSent notices (acks are an IM concept)
    // — already consumed by wait_finished if any existed; verify stats
    // through a watchdog probe instead: service is healthy.
    assert!(handle.are_you_working().await);
}
