//! Property tests of the delivery-layer semantics (DESIGN.md §6):
//!
//! * disabled addresses never fire;
//! * a block that acks stops the escalation — later blocks never fire;
//! * if every action of every block fails synchronously, the process
//!   exhausts after firing each enabled action exactly once;
//! * XML round-trips for arbitrary valid modes and address books.

use proptest::prelude::*;
use simba::core::address::{Address, AddressBook, CommType};
use simba::core::alert::{Alert, AlertId, Urgency};
use simba::core::delivery::{
    DeliveryCommand, DeliveryEvent, DeliveryProcess, DeliveryStatus, SendFailure,
};
use simba::core::mode::{Block, DeliveryMode};
use simba::sim::{SimDuration, SimTime};

const ADDRESS_POOL: [(&str, CommType); 5] = [
    ("IM-1", CommType::Im),
    ("IM-2", CommType::Im),
    ("SMS-1", CommType::Sms),
    ("EM-1", CommType::Email),
    ("EM-2", CommType::Email),
];

fn arb_book() -> impl Strategy<Value = AddressBook> {
    proptest::collection::vec(any::<bool>(), ADDRESS_POOL.len()).prop_map(|enabled_flags| {
        let mut book = AddressBook::new();
        for ((name, ty), enabled) in ADDRESS_POOL.iter().zip(enabled_flags) {
            let mut addr = Address::new(*name, *ty, format!("val:{name}"));
            addr.enabled = enabled;
            book.add(addr).expect("unique pool names");
        }
        book
    })
}

fn arb_mode() -> impl Strategy<Value = DeliveryMode> {
    let action = proptest::sample::select(
        ADDRESS_POOL.iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>(),
    );
    let block = (
        proptest::collection::vec(action, 1..4),
        proptest::option::of(1u64..300),
    )
        .prop_map(|(actions, ack)| match ack {
            Some(secs) => Block::acked(actions, SimDuration::from_secs(secs)),
            None => Block::fire_and_forget(actions),
        });
    proptest::collection::vec(block, 1..4)
        .prop_map(|blocks| DeliveryMode::new("prop-mode", blocks).expect("non-empty blocks"))
}

fn alert() -> Alert {
    Alert {
        id: AlertId(1),
        source: "src".into(),
        category: "Cat".into(),
        text: "text".into(),
        origin_timestamp: SimTime::ZERO,
        received_at: SimTime::ZERO,
        urgency: Urgency::Normal,
    }
}

/// Drives a process to completion, failing every send. Returns the names
/// of all addresses that were actually fired.
fn fail_everything(mode: &DeliveryMode, book: &AddressBook) -> (Vec<String>, DeliveryStatus) {
    let (mut p, mut cmds) = DeliveryProcess::start(alert(), mode.clone(), book, SimTime::ZERO);
    let mut fired = Vec::new();
    let mut guard = 0;
    while !cmds.is_empty() {
        guard += 1;
        assert!(guard < 100, "runaway command loop");
        let mut next = Vec::new();
        for c in cmds {
            if let DeliveryCommand::Send { attempt, address_name, .. } = c {
                fired.push(address_name);
                next.extend(p.handle(
                    DeliveryEvent::SendFailed { attempt, failure: SendFailure::ChannelDown },
                    book,
                    SimTime::from_secs(1),
                ));
            }
        }
        cmds = next;
    }
    (fired, p.status())
}

proptest! {
    #[test]
    fn disabled_addresses_never_fire(mode in arb_mode(), book in arb_book()) {
        let (fired, _) = fail_everything(&mode, &book);
        for name in &fired {
            let addr = book.get(name).expect("pool address");
            prop_assert!(addr.enabled, "disabled address {name} fired");
        }
    }

    #[test]
    fn all_failures_exhaust_after_firing_each_enabled_action_once(
        mode in arb_mode(),
        book in arb_book(),
    ) {
        let (fired, status) = fail_everything(&mode, &book);
        prop_assert!(matches!(status, DeliveryStatus::Exhausted { .. }), "status {status:?}");
        // Expected: per block, each enabled action fires exactly once.
        let mut expected = Vec::new();
        for block in mode.blocks() {
            for action in &block.actions {
                if book.get(action).is_some_and(|a| a.enabled) {
                    expected.push(action.clone());
                }
            }
        }
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn ack_on_first_block_stops_escalation(mode in arb_mode(), book in arb_book()) {
        let (mut p, cmds) = DeliveryProcess::start(alert(), mode.clone(), &book, SimTime::ZERO);
        let Some(DeliveryCommand::Send { attempt, .. }) =
            cmds.iter().find(|c| matches!(c, DeliveryCommand::Send { .. }))
        else {
            return Ok(()); // everything disabled: nothing to ack
        };
        let before = p.attempts().len();
        p.handle(DeliveryEvent::SendAccepted { attempt: *attempt }, &book, SimTime::from_secs(1));
        let follow = p.handle(DeliveryEvent::Acked { attempt: *attempt }, &book, SimTime::from_secs(2));
        // An ack is terminal: no later blocks, no new attempts.
        let acked = matches!(p.status(), DeliveryStatus::Acked { .. });
        prop_assert!(acked);
        prop_assert!(follow.is_empty());
        prop_assert_eq!(p.attempts().len(), before, "no new attempts after ack");
    }

    #[test]
    fn mode_xml_roundtrip(mode in arb_mode()) {
        let xml = mode.to_xml();
        prop_assert_eq!(DeliveryMode::from_xml(&xml).expect("own output parses"), mode);
    }

    #[test]
    fn book_xml_roundtrip(book in arb_book()) {
        let xml = book.to_xml();
        prop_assert_eq!(AddressBook::from_xml(&xml).expect("own output parses"), book);
    }
}
