//! End-to-end scenarios for the remaining §2 alert services: the web-store
//! community monitor and the desktop assistant, wired through the full
//! pipeline.

use simba::core::address::CommType;
use simba::net::presence::{PresenceTimeline, UserContext};
use simba::sim::{SimDuration, SimTime};
use simba::sources::assistant::{DesktopAssistant, Importance};
use simba::sources::webstore::{CommunitySite, WebStoreMonitor};
use simba_bench::harness::{build, handle, Ev, PipelineOptions};

#[test]
fn community_photo_alert_reaches_members() {
    // §2.2: "when a new photo is added to the shared community photo
    // album, interested members can receive an alert containing the URL".
    let mut site = CommunitySite::new("hiking");
    site.add_member("alice");
    let mut monitor = WebStoreMonitor::new("webstore-im");

    site.add_photo("summit-2001", "peak.jpg", SimTime::from_mins(10));
    site.add_calendar_entry("events", "BBQ Saturday", SimTime::from_mins(12));
    let alerts = monitor.sweep(&site, SimTime::from_mins(15));
    assert_eq!(alerts.len(), 2);
    assert!(alerts[0].body.contains("http://communities/hiking/summit-2001/peak.jpg"));

    let horizon = SimTime::from_hours(2);
    let mut engine = build(PipelineOptions::new(3, horizon));
    for (tag, alert) in alerts.into_iter().enumerate() {
        engine.schedule_at(SimTime::from_mins(15), Ev::Emit { tag: tag as u64, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();
    // The photo alert (containing "photo") classifies into Community and
    // reaches the user; the URL survives the trip.
    let track = &world.tracks[&0];
    assert!(track.seen_at.is_some(), "photo alert not seen");
    assert_eq!(track.via, Some(CommType::Im));
}

#[test]
fn assistant_forwards_urgent_email_to_away_user_via_sms() {
    // §2.5: the assistant activates when the console is idle and the user
    // has not processed email elsewhere; "all alerts are generated as SMS
    // messages" — here: the Work category's Critical mode escalates
    // IM → SMS, and an away-from-desk (mobile) user is reached by the SMS.
    let mut assistant = DesktopAssistant::new("assistant@desktop", SimDuration::from_mins(10));
    assistant.on_user_activity(SimTime::from_mins(5));

    // 20 minutes later the user is long gone; an urgent email lands.
    let at = SimTime::from_mins(25);
    let alert = assistant
        .on_incoming_email(Importance::High, "prod server down!", at)
        .expect("assistant active after threshold");

    let horizon = SimTime::from_hours(3);
    let mut options = PipelineOptions::new(9, horizon);
    // The user is away from the desk, phone in coverage, for the whole run.
    options.presence = PresenceTimeline::constant(UserContext::MobileCovered, horizon);
    let mut engine = build(options);
    engine.schedule_at(at, Ev::Emit { tag: 1, alert });
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    let track = &world.tracks[&1];
    assert!(track.reached_user_at.is_some(), "alert never reached a device");
    assert!(track.seen_at.is_some(), "mobile user never saw the SMS");
    // The IM block cannot be acked (nobody at the desk): the user saw it
    // via the SMS escalation, strictly after the 60 s IM ack window.
    assert!(!track.user_acked);
    let seen = track.seen_at.expect("seen");
    assert!(seen >= at + SimDuration::from_secs(60), "seen too early: {seen}");
    assert!(world.metrics.counter("user.sms_sent") >= 1);
}

#[test]
fn assistant_stays_quiet_when_user_is_at_the_desk() {
    let mut assistant = DesktopAssistant::new("assistant@desktop", SimDuration::from_mins(10));
    assistant.on_user_activity(SimTime::from_mins(24));
    let alert = assistant.on_incoming_email(Importance::High, "x", SimTime::from_mins(25));
    assert!(alert.is_none(), "user present: the desktop popup suffices");
    assert_eq!(assistant.suppressed(), 1);
}
