//! Property tests of the Soft-State Store semantics (DESIGN.md §6):
//! replicas converge under arbitrary write/replication interleavings, and
//! timeout detection fires exactly once per expiry.

use proptest::prelude::*;
use simba::sim::{SimDuration, SimTime};
use simba::sources::sss::{SoftStateStore, SssEvent, StoreId};

#[derive(Debug, Clone)]
enum Op {
    /// Write `value` to variable `var % VARS` on replica `replica % 3`.
    Write { replica: u8, var: u8, value: u8 },
    /// Refresh a variable on a replica.
    Refresh { replica: u8, var: u8 },
    /// Flush one replica's outbound queue to the others.
    Sync { replica: u8 },
}

const VARS: u8 = 3;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(replica, var, value)| Op::Write { replica, var, value }),
        (any::<u8>(), any::<u8>()).prop_map(|(replica, var)| Op::Refresh { replica, var }),
        any::<u8>().prop_map(|replica| Op::Sync { replica }),
    ]
}

fn stores() -> Vec<SoftStateStore> {
    let mut stores: Vec<SoftStateStore> = (0..3u32)
        .map(|i| {
            let mut s = SoftStateStore::new(StoreId(i + 1));
            s.define_type("t", "schema");
            for v in 0..VARS {
                s.create_var(
                    format!("var-{v}"),
                    "t",
                    "initial",
                    SimDuration::from_secs(3_600),
                    1_000,
                    SimTime::ZERO,
                )
                .expect("fresh store");
            }
            s
        })
        .collect();
    // Propagate the concurrent creations so the replicas start from a
    // converged state (LWW tie-break picks the highest store id).
    full_sync(&mut stores);
    stores
}

fn full_sync(stores: &mut [SoftStateStore]) {
    // Flush until quiescent (each apply can itself enqueue nothing, so two
    // rounds always suffice; loop defensively anyway).
    for _ in 0..4 {
        for i in 0..stores.len() {
            let updates = stores[i].take_outbound();
            for update in updates {
                for (j, peer) in stores.iter_mut().enumerate() {
                    if j != i {
                        peer.apply_update(update.clone());
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn replicas_converge_after_quiescence(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut stores = stores();
        let mut now = SimTime::from_secs(1);
        for op in &ops {
            now += SimDuration::from_secs(1);
            match op {
                Op::Write { replica, var, value } => {
                    let r = (*replica as usize) % 3;
                    let name = format!("var-{}", var % VARS);
                    stores[r].write(&name, format!("v{value}"), now).expect("var exists");
                }
                Op::Refresh { replica, var } => {
                    let r = (*replica as usize) % 3;
                    let name = format!("var-{}", var % VARS);
                    stores[r].refresh(&name, now).expect("var exists");
                }
                Op::Sync { replica } => {
                    let r = (*replica as usize) % 3;
                    let updates = stores[r].take_outbound();
                    for update in updates {
                        for (j, peer) in stores.iter_mut().enumerate() {
                            if j != r {
                                peer.apply_update(update.clone());
                            }
                        }
                    }
                }
            }
        }
        full_sync(&mut stores);

        // Convergence: every replica agrees on every variable's value and
        // last-writer metadata.
        for v in 0..VARS {
            let name = format!("var-{v}");
            let reference = stores[0].read(&name).expect("exists").clone();
            for s in &stores[1..] {
                let other = s.read(&name).expect("exists");
                prop_assert_eq!(&other.value, &reference.value, "value diverged on {}", name.as_str());
                prop_assert_eq!(other.written_at, reference.written_at);
                prop_assert_eq!(other.writer, reference.writer);
            }
        }
    }

    #[test]
    fn timeouts_fire_exactly_once_per_expiry(
        refresh_gaps in proptest::collection::vec(1u64..200, 0..10),
        check_offsets in proptest::collection::vec(1u64..600, 1..20),
    ) {
        let mut s = SoftStateStore::new(StoreId(1));
        s.define_type("t", "");
        // refresh_every 10 s, 2 misses → deadline = last write + 30 s.
        s.create_var("x", "t", "v", SimDuration::from_secs(10), 2, SimTime::ZERO).expect("fresh");

        let mut now = SimTime::ZERO;
        for gap in refresh_gaps {
            now += SimDuration::from_secs(gap);
            s.refresh("x", now).expect("exists");
        }
        let last_refresh = now;

        let mut checks: Vec<SimTime> = check_offsets
            .iter()
            .map(|&o| last_refresh + SimDuration::from_secs(o))
            .collect();
        checks.sort();
        let mut timeout_events = 0;
        for at in checks {
            for ev in s.check_timeouts(at) {
                let is_timeout = matches!(ev, SssEvent::TimedOut { .. });
                prop_assert!(is_timeout);
                timeout_events += 1;
                // A timeout may only be reported after the deadline.
                prop_assert!(at >= last_refresh + SimDuration::from_secs(30));
            }
        }
        prop_assert!(timeout_events <= 1, "timed out {timeout_events} times");
    }
}
