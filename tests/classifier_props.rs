//! Property tests for classification and subscription matching
//! (DESIGN.md §6 "classifier totality"): every accepted alert maps to
//! exactly one category (or the default); unaccepted sources are always
//! rejected; hierarchical subscription matching never double-delivers to
//! one user.

use proptest::prelude::*;
use simba::core::alert::IncomingAlert;
use simba::core::classify::{Classifier, KeywordField, RejectReason};
use simba::core::mode::DeliveryMode;
use simba::core::subscription::{SubscriptionRegistry, UserId};
use simba::sim::{SimDuration, SimTime};

const SOURCES: [&str; 3] = ["src-a", "src-b", "src-c"];
const KEYWORDS: [(&str, &str); 4] = [
    ("stocks", "Investment"),
    ("weather", "Daily"),
    ("sensor", "Home"),
    ("stocks options", "Derivatives"), // longer keyword containing "stocks"
];

fn classifier(with_default: bool) -> Classifier {
    let mut c = Classifier::new();
    c.accept_source(SOURCES[0], KeywordField::SenderName, "u");
    c.accept_source(SOURCES[1], KeywordField::Subject, "u");
    c.accept_source(SOURCES[2], KeywordField::Body, "u");
    for (kw, cat) in KEYWORDS {
        c.map_keyword(kw, cat);
    }
    if with_default {
        c.set_default_category("Misc");
    }
    c
}

fn arb_text() -> impl Strategy<Value = String> {
    // Text that may or may not contain keywords, in arbitrary casing.
    prop_oneof![
        "[a-zA-Z ]{0,30}",
        "[a-zA-Z ]{0,10}(stocks|WEATHER|Sensor|STOCKS OPTIONS)[a-zA-Z ]{0,10}",
    ]
}

proptest! {
    #[test]
    fn accepted_sources_with_default_always_classify(
        source_idx in 0usize..3,
        sender in arb_text(),
        subject in arb_text(),
        body in arb_text(),
    ) {
        let c = classifier(true);
        let mut alert = IncomingAlert::from_email(SOURCES[source_idx], sender, subject, body, SimTime::ZERO);
        alert.urgency = simba::core::alert::Urgency::Normal;
        let category = c.classify(&alert).expect("default makes classification total");
        let known: Vec<&str> = KEYWORDS.iter().map(|(_, c)| *c).chain(["Misc"]).collect();
        prop_assert!(known.contains(&category.as_str()), "unexpected category {category}");
    }

    #[test]
    fn unknown_sources_always_rejected(
        source in "[a-z]{1,10}",
        body in arb_text(),
    ) {
        prop_assume!(!SOURCES.contains(&source.as_str()));
        let c = classifier(true);
        let alert = IncomingAlert::from_im(source.clone(), body, SimTime::ZERO);
        prop_assert_eq!(
            c.classify(&alert),
            Err(RejectReason::UnknownSource(source))
        );
    }

    #[test]
    fn classification_reads_only_the_configured_field(
        sender in arb_text(),
        subject in arb_text(),
        body in arb_text(),
    ) {
        // src-a reads SenderName: planting a keyword in subject/body must
        // not change the outcome for it.
        let c = classifier(true);
        let base = IncomingAlert::from_email(SOURCES[0], sender.clone(), subject, body, SimTime::ZERO);
        let altered = IncomingAlert::from_email(
            SOURCES[0],
            sender,
            "stocks stocks stocks",
            "weather weather",
            SimTime::ZERO,
        );
        prop_assert_eq!(c.classify(&base), c.classify(&altered));
    }

    #[test]
    fn longer_keyword_always_beats_its_prefix(pad in "[a-z ]{0,10}") {
        let c = classifier(false);
        let alert = IncomingAlert::from_email(
            SOURCES[0],
            format!("{pad} STOCKS OPTIONS {pad}"),
            "",
            "",
            SimTime::ZERO,
        );
        prop_assert_eq!(c.classify(&alert).expect("keyword present"), "Derivatives");
    }

    #[test]
    fn hierarchical_matching_delivers_at_most_once_per_user(
        depth in 1usize..5,
        subscribe_levels in proptest::collection::btree_set(0usize..5, 1..5),
    ) {
        // Category "a.b.c..." with subscriptions at several prefix levels:
        // a user must match exactly once (the most specific level).
        let mut registry = SubscriptionRegistry::new();
        let user = UserId::new("u");
        let profile = registry.register_user(user.clone());
        profile
            .address_book
            .add(simba::core::address::Address::new("IM", simba::core::address::CommType::Im, "im:u"))
            .expect("fresh");
        profile.define_mode(DeliveryMode::im_then_email("M", "IM", "IM", SimDuration::from_secs(9)));

        let segments: Vec<String> = (0..=depth).map(|i| format!("l{i}")).collect();
        let full = segments.join(".");
        let mut subscribed_any = false;
        for level in &subscribe_levels {
            if *level <= depth {
                let prefix = segments[..=*level].join(".");
                registry.subscribe(prefix, user.clone(), "M").expect("valid");
                subscribed_any = true;
            }
        }
        let matched = registry.active_subscriptions(&full, SimTime::ZERO);
        if subscribed_any {
            prop_assert_eq!(matched.len(), 1, "category {}", full);
        } else {
            prop_assert!(matched.is_empty());
        }
    }
}
