//! Cross-crate integration: the full §5 pipeline — sources, channels,
//! client managers, MyAlertBuddy, watchdog, user — assembled end to end.

use simba::core::address::CommType;
use simba::core::alert::IncomingAlert;
use simba::net::outage::OutageSchedule;
use simba::net::presence::{DwellProfile, PresenceTimeline};
use simba::sim::{SimDuration, SimRng, SimTime};
use simba_bench::harness::{build, handle, Ev, PipelineOptions};

#[test]
fn a_week_of_alerts_reaches_the_user() {
    let horizon = SimTime::from_days(7);
    let mut options = PipelineOptions::new(1, horizon);
    let mut rng = SimRng::new(99);
    options.presence = PresenceTimeline::generate(horizon, DwellProfile::default(), &mut rng);
    let mut engine = build(options);

    let total = 7 * 12;
    for i in 0..total {
        let at = SimTime::from_mins(30 + i * 120);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor event {i} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag: i, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    let emitted = world.tracks.values().filter(|t| t.emitted_at.is_some()).count();
    let reached = world
        .tracks
        .values()
        .filter(|t| t.emitted_at.is_some() && t.reached_user_at.is_some())
        .count();
    assert_eq!(emitted as u64, total);
    // With a realistic presence timeline every alert still reaches a
    // device (IM, SMS, or the email fallback).
    assert!(
        reached as u64 >= total - 2,
        "only {reached}/{total} reached the user"
    );
}

#[test]
fn im_outage_window_reroutes_everything_through_email() {
    let horizon = SimTime::from_days(1);
    let mut options = PipelineOptions::new(5, horizon);
    options.im_outages = OutageSchedule::from_windows(vec![(
        SimTime::from_hours(6),
        SimTime::from_hours(8),
    )]);
    let mut engine = build(options);

    // One alert inside the outage, one outside.
    for (tag, hour) in [(1u64, 7u64), (2, 12)] {
        let at = SimTime::from_hours(hour);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor o{tag} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    assert_eq!(world.tracks[&1].via, Some(CommType::Email), "in-outage alert must fall back");
    assert_eq!(world.tracks[&2].via, Some(CommType::Im), "post-outage alert uses IM again");
    assert!(world.tracks[&1].seen_at.is_some());
    assert!(world.tracks[&2].seen_at.is_some());
}

#[test]
fn pipeline_run_is_bit_deterministic() {
    let run = || {
        let horizon = SimTime::from_hours(12);
        let mut options = PipelineOptions::new(31, horizon);
        options.mab_crash_mtbf = Some(SimDuration::from_hours(3));
        let mut engine = build(options);
        for i in 0..20u64 {
            let at = SimTime::from_mins(7 + i * 33);
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor d{i} ON"), at);
            engine.schedule_at(at, Ev::Emit { tag: i, alert });
        }
        engine.run_until(horizon, handle);
        let (world, trace) = engine.into_parts();
        let tracks: Vec<(u64, Option<SimTime>, Option<SimTime>)> = world
            .tracks
            .iter()
            .map(|(tag, t)| (*tag, t.source_acked_at, t.seen_at))
            .collect();
        (tracks, trace.len(), world.mdc.restarts())
    };
    assert_eq!(run(), run());
}

#[test]
fn crashed_buddy_recovers_without_losing_acked_alerts() {
    let horizon = SimTime::from_days(3);
    let mut options = PipelineOptions::new(77, horizon);
    options.mab_crash_mtbf = Some(SimDuration::from_hours(2));
    let mut engine = build(options);

    let total = 3 * 24;
    for i in 0..total {
        let at = SimTime::from_mins(11 + i * 60);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor c{i} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag: i, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    assert!(world.metrics.counter("mab.crashes") >= 10, "crash rate too low to be meaningful");
    // Every alert the buddy acked eventually reached the user: the WAL +
    // restart replay at work across dozens of crashes.
    let mut acked_and_lost = 0;
    for t in world.tracks.values() {
        if t.emitted_at.is_some() && t.source_acked_at.is_some() && t.reached_user_at.is_none() {
            acked_and_lost += 1;
        }
    }
    assert_eq!(acked_and_lost, 0, "acked alerts were lost");
}
