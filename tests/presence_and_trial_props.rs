//! Property tests for the presence substrate and the baseline trial
//! evaluator: structural timeline invariants and per-strategy cost bounds.

use proptest::prelude::*;
use simba::baselines::strategy::Strategy as DeliveryStrategy;
use simba::baselines::trial::{run_trial, TrialSetup};
use simba::net::presence::{DwellProfile, PresenceTimeline, UserContext};
use simba::sim::{SimRng, SimTime};

fn arb_timeline() -> impl Strategy<Value = PresenceTimeline> {
    (any::<u64>(), 1u64..20).prop_map(|(seed, days)| {
        let mut rng = SimRng::new(seed);
        PresenceTimeline::generate(SimTime::from_days(days), DwellProfile::default(), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_timeline_fractions_sum_to_one(tl in arb_timeline()) {
        let sum = tl.fraction_in(UserContext::AtDesk)
            + tl.fraction_in(UserContext::MobileCovered)
            + tl.fraction_in(UserContext::MobileUncovered)
            + tl.fraction_in(UserContext::Away);
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn context_at_agrees_with_segment_scan(tl in arb_timeline(), at_ms in any::<u64>()) {
        let at = SimTime::from_millis(at_ms % tl.horizon().as_millis().max(1));
        // Reference implementation: linear scan over segments.
        let mut expected = tl.segments()[0].1;
        for &(start, ctx) in tl.segments() {
            if start <= at {
                expected = ctx;
            }
        }
        prop_assert_eq!(tl.context_at(at), expected);
    }

    #[test]
    fn next_change_is_the_next_segment_boundary(tl in arb_timeline(), at_ms in any::<u64>()) {
        let at = SimTime::from_millis(at_ms % tl.horizon().as_millis().max(1));
        match tl.next_change(at) {
            Some(change) => {
                prop_assert!(change > at);
                // It is a real boundary...
                prop_assert!(tl.segments().iter().any(|&(s, _)| s == change));
                // ...and there is none strictly between.
                prop_assert!(!tl
                    .segments()
                    .iter()
                    .any(|&(s, _)| s > at && s < change));
            }
            None => {
                prop_assert!(tl.segments().iter().all(|&(s, _)| s <= at));
            }
        }
    }

    #[test]
    fn trial_message_costs_match_strategy_structure(
        seed in any::<u64>(),
        tl in arb_timeline(),
        at_frac in 0.0f64..0.8,
    ) {
        let setup = TrialSetup::with_defaults(tl);
        let mut rng = SimRng::new(seed);
        let at = SimTime::from_millis(
            (setup.presence.horizon().as_millis() as f64 * at_frac) as u64,
        );

        let email = run_trial(&setup, DeliveryStrategy::EmailOnly, at, &mut rng);
        prop_assert_eq!(email.messages_per_alert(), 1);
        prop_assert!(!email.acked);

        let sms = run_trial(&setup, DeliveryStrategy::DirectSms, at, &mut rng);
        prop_assert_eq!(sms.messages_per_alert(), 1);

        let blind = run_trial(&setup, DeliveryStrategy::Blind { emails: 2, sms: 2 }, at, &mut rng);
        prop_assert_eq!(blind.messages_per_alert(), 4);
        prop_assert!(!blind.acked);

        let simba = run_trial(&setup, DeliveryStrategy::simba_default(), at, &mut rng);
        // 1 message when acked on the IM block, else escalation to 3.
        if simba.acked {
            prop_assert_eq!(simba.messages_per_alert(), 1);
            prop_assert!(simba.first_seen.is_some(), "acked implies seen");
        } else {
            prop_assert!((2..=3).contains(&simba.messages_per_alert()));
        }

        // Nobody sees an alert before it exists.
        for out in [&email, &sms, &blind, &simba] {
            if let Some(seen) = out.first_seen {
                prop_assert!(seen >= at);
            }
        }
    }
}

/// Local helper: `messages_sent` as usize for readable assertions.
trait MsgCount {
    fn messages_per_alert(&self) -> u32;
}
impl MsgCount for simba::baselines::trial::TrialOutcome {
    fn messages_per_alert(&self) -> u32 {
        self.messages_sent
    }
}
