//! Telemetry determinism: the observability invariant from `DESIGN.md` §
//! "Telemetry and the paper's mechanisms". Telemetry records virtual time
//! only — it never reads a wall clock and never perturbs component
//! behavior — so the same seed must produce the byte-identical event
//! stream and metrics snapshot, and an uninstrumented run must behave
//! exactly like an instrumented one.

use proptest::prelude::*;
use simba::core::delivery::{DeliveryEvent, SendFailure};
use simba::core::mab::{MabEvent, MyAlertBuddy};
use simba::core::wal::InMemoryWal;
use simba::core::{
    Address, AddressBook, Classifier, CommType, DeliveryCommand, DeliveryMode, IncomingAlert,
    KeywordField, MabCommand, MabConfig, RejuvenationPolicy, SubscriptionRegistry, Telemetry,
    UserId,
};
use simba::net::im::{ImHandle, ImService};
use simba::net::{LatencyModel, LossModel};
use simba::sim::{SimDuration, SimRng, SimTime};
use simba::telemetry::RingBufferSink;
use std::sync::Arc;

fn config() -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "det");
    classifier.map_keyword("Sensor", "Home.Security");
    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, "im:alice")).unwrap();
    book.add(Address::new("EM", CommType::Email, "alice@work")).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home.Security", alice, "Urgent").unwrap();
    MabConfig {
        classifier,
        registry,
        rejuvenation: RejuvenationPolicy::default(),
    }
}

/// Runs one seeded scenario spanning the core pipeline and the IM channel
/// model, all recording into a single shared sink. Returns the serialized
/// event stream plus the metrics snapshot.
fn run_scenario(seed: u64, alerts: u64) -> (Vec<String>, String) {
    let sink = Arc::new(RingBufferSink::new(8_192));
    let telemetry = Telemetry::with_sink(sink.clone());
    let mut rng = SimRng::new(seed);

    // Channel layer: a lossy IM service carrying chatter alongside.
    let mut im = ImService::new(rng.fork(1))
        .with_latency(LatencyModel::consumer_im())
        .with_loss(LossModel::Bernoulli(0.2))
        .with_telemetry(telemetry.clone());
    let mab_handle = ImHandle::new("mab");
    let alice = ImHandle::new("alice");
    im.register(mab_handle.clone());
    im.register(alice.clone());
    im.logon(&mab_handle, SimTime::ZERO).unwrap();
    im.logon(&alice, SimTime::ZERO).unwrap();

    // Core pipeline: log → ack → classify → route → deliver.
    let mut mab = MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO)
        .with_telemetry(telemetry.clone());

    let first_send = |cmds: &[MabCommand]| {
        cmds.iter().find_map(|c| match c {
            MabCommand::Channel {
                delivery,
                command: DeliveryCommand::Send { attempt, .. },
                ..
            } => Some((*delivery, *attempt)),
            _ => None,
        })
    };

    for i in 0..alerts {
        let at = SimTime::from_secs(10 + i * 120);
        let body = format!("Basement Sensor {i} ON");
        if let Ok(transit) = im.send(&mab_handle, &alice, body.clone(), at) {
            if !transit.lost {
                im.deliver(transit.message, at + transit.delay);
            }
        }
        let cmds = mab.handle(
            MabEvent::AlertByIm(IncomingAlert::from_im("aladdin-gw", body, at)),
            at,
        );
        let Some((id, attempt)) = first_send(&cmds) else {
            continue;
        };
        if rng.chance(0.3) {
            mab.handle(
                MabEvent::Delivery {
                    id,
                    event: DeliveryEvent::SendFailed {
                        attempt,
                        failure: SendFailure::ChannelDown,
                    },
                },
                at + SimDuration::from_secs(1),
            );
        } else {
            let accepted_at = at + SimDuration::from_secs(1);
            mab.handle(
                MabEvent::Delivery { id, event: DeliveryEvent::SendAccepted { attempt } },
                accepted_at,
            );
            mab.handle(
                MabEvent::Delivery { id, event: DeliveryEvent::Acked { attempt } },
                accepted_at + SimDuration::from_secs(rng.range(2, 50)),
            );
        }
    }

    let events = sink.events().iter().map(|e| e.to_json_line()).collect();
    (events, telemetry.metrics().snapshot().to_json())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_produces_identical_event_stream(seed in 0u64..1_000_000, alerts in 1u64..8) {
        let (events_a, metrics_a) = run_scenario(seed, alerts);
        let (events_b, metrics_b) = run_scenario(seed, alerts);
        prop_assert!(!events_a.is_empty());
        prop_assert_eq!(events_a, events_b);
        prop_assert_eq!(metrics_a, metrics_b);
    }

    #[test]
    fn events_are_ordered_by_virtual_time_per_alert(seed in 0u64..1_000_000) {
        // Within one run, mab.received for alert i always precedes any
        // event of alert i+1 — the stream is a faithful trace of virtual
        // time, not of host scheduling.
        let (events, _) = run_scenario(seed, 5);
        let received: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains("\"name\":\"mab.received\""))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(received.len(), 5);
        for pair in received.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }
}

#[test]
fn instrumented_and_plain_runs_behave_identically() {
    let mut plain = MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO);
    let sink = Arc::new(RingBufferSink::new(256));
    let mut observed = MyAlertBuddy::new(config(), InMemoryWal::new(), SimTime::ZERO)
        .with_telemetry(Telemetry::with_sink(sink));
    for i in 0..4u64 {
        let at = SimTime::from_secs(10 + i * 60);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor {i} ON"), at);
        let a = plain.handle(MabEvent::AlertByIm(alert.clone()), at);
        let b = observed.handle(MabEvent::AlertByIm(alert), at);
        assert_eq!(a, b);
    }
    assert_eq!(plain.stats(), observed.stats());
}
