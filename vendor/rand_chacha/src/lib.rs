//! Offline shim of `rand_chacha`: a from-scratch ChaCha8 keystream
//! generator implementing the workspace's `rand` shim traits.
//!
//! The cipher core follows RFC 7539 (constants, quarter-round, 4 double
//! rounds for the 8-round variant) with a 64-bit block counter in words
//! 12–13 and a 64-bit stream id in words 14–15, like the real crate.
//! Keystream words are consumed sequentially; `next_u64` takes two
//! consecutive words little-end first. Output is fully deterministic per
//! seed, which is the property the simulation depends on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha with 8 rounds, seeded deterministically.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12, 13).
    counter: u64,
    /// 64-bit stream id (state words 14, 15).
    stream: u64,
    /// The current 16-word keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 means "generate a new block".
    index: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Selects an independent keystream (not used by the workspace today,
    /// but part of the real type's surface).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_is_not_degenerate() {
        // Spot-check statistical sanity: means of unit draws near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
