//! mpsc (bounded + unbounded) and oneshot channels.

pub mod mpsc {
    //! Multi-producer single-consumer channels.

    use std::collections::VecDeque;
    use std::future::poll_fn;
    use std::sync::{Arc, Mutex};
    use std::task::{Poll, Waker};

    pub mod error {
        //! Channel error types.

        /// The receiver was dropped; the value comes back.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

        /// Error from [`super::Receiver::try_recv`].
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message is queued right now.
            Empty,
            /// Every sender is gone and the queue is drained.
            Disconnected,
        }

        impl std::fmt::Display for TryRecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TryRecvError::Empty => f.write_str("channel empty"),
                    TryRecvError::Disconnected => f.write_str("channel disconnected"),
                }
            }
        }

        impl std::error::Error for TryRecvError {}
    }

    use error::{SendError, TryRecvError};

    struct Chan<T> {
        queue: VecDeque<T>,
        /// `usize::MAX` for unbounded channels.
        capacity: usize,
        senders: usize,
        receiver_alive: bool,
        recv_waker: Option<Waker>,
        send_wakers: Vec<Waker>,
    }

    impl<T> Chan<T> {
        fn wake_receiver(&mut self) {
            if let Some(waker) = self.recv_waker.take() {
                waker.wake();
            }
        }

        fn wake_senders(&mut self) {
            for waker in self.send_wakers.drain(..) {
                waker.wake();
            }
        }
    }

    fn new_chan<T>(capacity: usize) -> Arc<Mutex<Chan<T>>> {
        Arc::new(Mutex::new(Chan {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receiver_alive: true,
            recv_waker: None,
            send_wakers: Vec::new(),
        }))
    }

    /// A bounded channel: sends wait while `buffer` messages are queued.
    pub fn channel<T>(buffer: usize) -> (Sender<T>, Receiver<T>) {
        assert!(buffer > 0, "mpsc bounded channel requires buffer > 0");
        let chan = new_chan(buffer);
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// An unbounded channel: sends always succeed while the receiver lives.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = new_chan(usize::MAX);
        (
            UnboundedSender {
                chan: Arc::clone(&chan),
            },
            UnboundedReceiver { chan },
        )
    }

    macro_rules! name_only_debug {
        ($($name:ident),*) => {$(
            impl<T> std::fmt::Debug for $name<T> {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str(stringify!($name))
                }
            }
        )*};
    }
    name_only_debug!(Sender, Receiver, UnboundedSender, UnboundedReceiver);

    /// Sending half of [`channel`].
    pub struct Sender<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    impl<T> Sender<T> {
        /// Queues `value`, waiting for capacity; errors when the receiver
        /// is gone.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut value = Some(value);
            poll_fn(|cx| {
                let mut chan = self.chan.lock().unwrap();
                if !chan.receiver_alive {
                    return Poll::Ready(Err(SendError(value.take().expect("polled after ready"))));
                }
                if chan.queue.len() < chan.capacity {
                    chan.queue.push_back(value.take().expect("polled after ready"));
                    chan.wake_receiver();
                    Poll::Ready(Ok(()))
                } else {
                    chan.send_wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            })
            .await
        }

        /// Queues `value` if there is room right now.
        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut chan = self.chan.lock().unwrap();
            if !chan.receiver_alive || chan.queue.len() >= chan.capacity {
                return Err(SendError(value));
            }
            chan.queue.push_back(value);
            chan.wake_receiver();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut chan = self.chan.lock().unwrap();
            chan.senders -= 1;
            if chan.senders == 0 {
                chan.wake_receiver();
            }
        }
    }

    /// Receiving half of [`channel`].
    pub struct Receiver<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    impl<T> Receiver<T> {
        /// The next message; `None` once every sender is dropped and the
        /// queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut chan = self.chan.lock().unwrap();
                if let Some(value) = chan.queue.pop_front() {
                    chan.wake_senders();
                    return Poll::Ready(Some(value));
                }
                if chan.senders == 0 {
                    return Poll::Ready(None);
                }
                chan.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// The next message without waiting: `Err(Empty)` when none is
        /// queued, `Err(Disconnected)` once every sender is dropped and
        /// the queue is drained.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut chan = self.chan.lock().unwrap();
            if let Some(value) = chan.queue.pop_front() {
                chan.wake_senders();
                return Ok(value);
            }
            if chan.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Closes the channel; in-flight messages can still be received.
        pub fn close(&mut self) {
            let mut chan = self.chan.lock().unwrap();
            chan.receiver_alive = false;
            chan.wake_senders();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.close();
        }
    }

    /// Sending half of [`unbounded_channel`].
    pub struct UnboundedSender<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    impl<T> UnboundedSender<T> {
        /// Queues `value`; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut chan = self.chan.lock().unwrap();
            if !chan.receiver_alive {
                return Err(SendError(value));
            }
            chan.queue.push_back(value);
            chan.wake_receiver();
            Ok(())
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().unwrap().senders += 1;
            UnboundedSender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            let mut chan = self.chan.lock().unwrap();
            chan.senders -= 1;
            if chan.senders == 0 {
                chan.wake_receiver();
            }
        }
    }

    /// Receiving half of [`unbounded_channel`].
    pub struct UnboundedReceiver<T> {
        chan: Arc<Mutex<Chan<T>>>,
    }

    impl<T> UnboundedReceiver<T> {
        /// The next message; `None` once every sender is dropped and the
        /// queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut chan = self.chan.lock().unwrap();
                if let Some(value) = chan.queue.pop_front() {
                    return Poll::Ready(Some(value));
                }
                if chan.senders == 0 {
                    return Poll::Ready(None);
                }
                chan.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// Closes the channel; in-flight messages can still be received.
        pub fn close(&mut self) {
            self.chan.lock().unwrap().receiver_alive = false;
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.close();
        }
    }
}

pub mod oneshot {
    //! Single-value channels.

    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    pub mod error {
        //! Oneshot error types.

        /// The sender was dropped without sending.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct RecvError(pub(crate) ());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("channel closed")
            }
        }

        impl std::error::Error for RecvError {}
    }

    use error::RecvError;

    struct State<T> {
        value: Option<T>,
        sender_dropped: bool,
        receiver_dropped: bool,
        waker: Option<Waker>,
    }

    /// A channel carrying exactly one value.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let state = Arc::new(Mutex::new(State {
            value: None,
            sender_dropped: false,
            receiver_dropped: false,
            waker: None,
        }));
        (
            Sender {
                state: Arc::clone(&state),
            },
            Receiver { state },
        )
    }

    macro_rules! name_only_debug {
        ($($name:ident),*) => {$(
            impl<T> std::fmt::Debug for $name<T> {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str(stringify!($name))
                }
            }
        )*};
    }
    name_only_debug!(Sender, Receiver);

    /// Sending half; consumed by [`Sender::send`].
    pub struct Sender<T> {
        state: Arc<Mutex<State<T>>>,
    }

    impl<T> Sender<T> {
        /// Delivers `value`, or hands it back if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut state = self.state.lock().unwrap();
            if state.receiver_dropped {
                return Err(value);
            }
            state.value = Some(value);
            if let Some(waker) = state.waker.take() {
                waker.wake();
            }
            Ok(())
        }

        /// True when the receiver has been dropped.
        pub fn is_closed(&self) -> bool {
            self.state.lock().unwrap().receiver_dropped
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.state.lock().unwrap();
            state.sender_dropped = true;
            if let Some(waker) = state.waker.take() {
                waker.wake();
            }
        }
    }

    /// Receiving half; await it for the value.
    pub struct Receiver<T> {
        state: Arc<Mutex<State<T>>>,
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.state.lock().unwrap();
            if let Some(value) = state.value.take() {
                return Poll::Ready(Ok(value));
            }
            if state.sender_dropped {
                return Poll::Ready(Err(RecvError(())));
            }
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.state.lock().unwrap().receiver_dropped = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on_test;
    use crate::time::{sleep, Duration};

    #[test]
    fn bounded_send_waits_for_capacity() {
        block_on_test(true, async {
            let (tx, mut rx) = super::mpsc::channel::<u32>(1);
            tx.send(1).await.unwrap();
            let producer = crate::spawn(async move {
                tx.send(2).await.unwrap(); // blocks until 1 is consumed
                3u32
            });
            sleep(Duration::from_millis(1)).await;
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
            assert_eq!(producer.await.unwrap(), 3);
            assert_eq!(rx.recv().await, None); // all senders dropped
        });
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        block_on_test(true, async {
            let (tx, rx) = super::mpsc::channel::<u32>(4);
            drop(rx);
            assert!(tx.send(7).await.is_err());

            let (utx, urx) = super::mpsc::unbounded_channel::<u32>();
            drop(urx);
            assert!(utx.send(7).is_err());
        });
    }

    #[test]
    fn oneshot_round_trip_and_dropped_sender() {
        block_on_test(true, async {
            let (tx, rx) = super::oneshot::channel();
            tx.send(9u8).unwrap();
            assert_eq!(rx.await, Ok(9));

            let (tx2, rx2) = super::oneshot::channel::<u8>();
            drop(tx2);
            assert!(rx2.await.is_err());
        });
    }
}
