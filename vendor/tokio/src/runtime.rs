//! The single-threaded executor with a virtual clock.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Wake, Waker};
use std::time::Duration;

pub(crate) type TaskId = u64;
/// Timer key: virtual deadline plus a tiebreaker so equal deadlines keep
/// registration order.
pub(crate) type TimerKey = (Duration, u64);

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// The queue wakers push onto. Shared behind `Arc` because `Waker` must be
/// `Send + Sync`: the executor itself never leaves its thread, but wakes
/// may arrive from other threads (cross-thread channel sends), so `push`
/// also notifies the condvar a parked executor waits on.
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
    parked: Condvar,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.lock().unwrap().push_back(id);
        self.parked.notify_one();
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Blocks until the queue is non-empty or `timeout` elapses (forever
    /// with `None`). The emptiness check happens under the same lock that
    /// `push` holds, so a wake between "queue drained" and "park" is
    /// never lost.
    fn park(&self, timeout: Option<Duration>) {
        let guard = self.queue.lock().unwrap();
        if !guard.is_empty() {
            return;
        }
        match timeout {
            Some(wait) => drop(self.parked.wait_timeout(guard, wait).unwrap()),
            None => drop(self.parked.wait(guard).unwrap()),
        }
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// One pending `time::advance` call.
struct Advance {
    target: Duration,
    id: u64,
    waker: Waker,
}

pub(crate) struct Executor {
    tasks: RefCell<HashMap<TaskId, BoxFuture>>,
    next_task: Cell<TaskId>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BTreeMap<TimerKey, Waker>>,
    next_timer: Cell<u64>,
    /// Base offset of the runtime clock. Paused: the whole clock (only
    /// `idle_step` moves it). Unpaused: the epoch `real_anchor` extends.
    now: Cell<Duration>,
    paused: Cell<bool>,
    /// `Some` while running unpaused: real elapsed time since this anchor
    /// is added to `now`, so a busy worker's clock tracks wall time
    /// instead of freezing between idle steps.
    real_anchor: Cell<Option<std::time::Instant>>,
    advances: RefCell<Vec<Advance>>,
    next_advance: Cell<u64>,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Executor>>> = const { RefCell::new(None) };
}

/// Runs `f` against the executor driving the current `block_on` call.
pub(crate) fn with_executor<R>(f: impl FnOnce(&Executor) -> R) -> R {
    let exec = CURRENT
        .with(|c| c.borrow().clone())
        .expect("tokio shim: called outside a runtime (use #[tokio::test])");
    f(&exec)
}

/// Like [`with_executor`] but a no-op outside a runtime (for `Drop` impls
/// that may run after the executor is gone).
pub(crate) fn try_with_executor<R>(f: impl FnOnce(&Executor) -> R) -> Option<R> {
    let exec = CURRENT.with(|c| c.borrow().clone())?;
    Some(f(&exec))
}

impl Executor {
    fn new(paused: bool) -> Executor {
        Executor {
            tasks: RefCell::new(HashMap::new()),
            next_task: Cell::new(0),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
                parked: Condvar::new(),
            }),
            timers: RefCell::new(BTreeMap::new()),
            next_timer: Cell::new(0),
            now: Cell::new(Duration::ZERO),
            paused: Cell::new(paused),
            real_anchor: Cell::new(if paused { None } else { Some(std::time::Instant::now()) }),
            advances: RefCell::new(Vec::new()),
            next_advance: Cell::new(0),
        }
    }

    /// Time since the runtime epoch: virtual when paused, real elapsed
    /// time when unpaused.
    pub(crate) fn now(&self) -> Duration {
        match self.real_anchor.get() {
            Some(anchor) => self.now.get() + anchor.elapsed(),
            None => self.now.get(),
        }
    }

    pub(crate) fn set_paused(&self, paused: bool) {
        if paused {
            // Fold real elapsed time into the base so the clock is
            // continuous across the transition.
            self.now.set(self.now());
            self.real_anchor.set(None);
        } else if self.real_anchor.get().is_none() {
            self.real_anchor.set(Some(std::time::Instant::now()));
        }
        self.paused.set(paused);
    }

    pub(crate) fn spawn_task(&self, future: BoxFuture) -> TaskId {
        let id = self.next_task.get();
        self.next_task.set(id + 1);
        self.tasks.borrow_mut().insert(id, future);
        self.ready.push(id);
        id
    }

    /// Drops a task's future if it is still pending (see
    /// [`crate::task::JoinHandle::abort`]).
    pub(crate) fn drop_task(&self, id: TaskId) {
        self.tasks.borrow_mut().remove(&id);
    }

    pub(crate) fn register_timer(&self, deadline: Duration, waker: Waker) -> TimerKey {
        let id = self.next_timer.get();
        self.next_timer.set(id + 1);
        let key = (deadline, id);
        self.timers.borrow_mut().insert(key, waker);
        key
    }

    pub(crate) fn update_timer(&self, key: TimerKey, waker: Waker) {
        self.timers.borrow_mut().insert(key, waker);
    }

    pub(crate) fn cancel_timer(&self, key: TimerKey) {
        self.timers.borrow_mut().remove(&key);
    }

    /// Registers (or re-arms) an advance waiter; returns its id.
    pub(crate) fn register_advance(
        &self,
        target: Duration,
        existing: Option<u64>,
        waker: Waker,
    ) -> u64 {
        let mut advances = self.advances.borrow_mut();
        if let Some(id) = existing {
            if let Some(entry) = advances.iter_mut().find(|a| a.id == id) {
                entry.waker = waker;
                return id;
            }
        }
        let id = self.next_advance.get();
        self.next_advance.set(id + 1);
        advances.push(Advance { target, id, waker });
        id
    }

    pub(crate) fn cancel_advance(&self, id: u64) {
        self.advances.borrow_mut().retain(|a| a.id != id);
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out so the poll itself can spawn/abort tasks
        // without re-entrant RefCell borrows.
        let future = self.tasks.borrow_mut().remove(&id);
        let Some(mut future) = future else {
            return; // finished or aborted; stale wake
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        if future.as_mut().poll(&mut cx).is_pending() {
            self.tasks.borrow_mut().insert(id, future);
        }
    }

    fn fire_due_timers(&self) {
        loop {
            let due = {
                let timers = self.timers.borrow();
                match timers.keys().next().copied() {
                    Some(key) if key.0 <= self.now() => key,
                    _ => break,
                }
            };
            if let Some(waker) = self.timers.borrow_mut().remove(&due) {
                waker.wake();
            }
        }
    }

    /// Nothing is runnable: move time forward to the next timer deadline
    /// or pending `advance` target. Returns false when neither exists
    /// (an unpaused executor instead parks and waits for a cross-thread
    /// wake, so it only returns false once genuinely wedged — see
    /// `block_on_test`).
    fn idle_step(&self) -> bool {
        if !self.paused.get() {
            return self.idle_step_real();
        }
        let now = self.now.get();
        let next_timer = self.timers.borrow().keys().next().copied();
        let next_advance = self
            .advances
            .borrow()
            .iter()
            .min_by_key(|a| a.target)
            .map(|a| (a.target, a.id));

        if let Some((deadline, _)) = next_timer {
            let timer_first = next_advance.map_or(true, |(target, _)| deadline <= target);
            if timer_first {
                self.now.set(now.max(deadline));
                self.fire_due_timers();
                return true;
            }
        }
        if let Some((target, id)) = next_advance {
            self.now.set(now.max(target));
            self.complete_advance(id);
            self.fire_due_timers();
            return true;
        }
        false
    }

    /// Unpaused idle: park on the ready queue's condvar until the next
    /// timer/advance deadline or a wake from another thread — an executor
    /// blocked on a cross-thread channel must notice the sender. Always
    /// returns true: with no deadline it parks indefinitely, like a real
    /// runtime blocked on external I/O.
    fn idle_step_real(&self) -> bool {
        let next_timer = self.timers.borrow().keys().next().map(|k| k.0);
        let next_advance = self
            .advances
            .borrow()
            .iter()
            .min_by_key(|a| a.target)
            .map(|a| a.target);
        let deadline = match (next_timer, next_advance) {
            (Some(t), Some(a)) => Some(t.min(a)),
            (t, a) => t.or(a),
        };
        match deadline {
            Some(deadline) => {
                // A wake may arrive before the deadline (nothing due yet:
                // the caller's loop re-parks for the remainder) and
                // wait_timeout may undershoot slightly (same remedy), so
                // the clock is never forced past real time.
                let wait = deadline.saturating_sub(self.now());
                if !wait.is_zero() {
                    self.ready.park(Some(wait));
                }
            }
            None => self.ready.park(None),
        }
        let due: Vec<u64> = self
            .advances
            .borrow()
            .iter()
            .filter(|a| a.target <= self.now())
            .map(|a| a.id)
            .collect();
        for id in due {
            self.complete_advance(id);
        }
        self.fire_due_timers();
        true
    }

    fn complete_advance(&self, id: u64) {
        let entry = {
            let mut advances = self.advances.borrow_mut();
            advances
                .iter()
                .position(|a| a.id == id)
                .map(|pos| advances.remove(pos))
        };
        if let Some(advance) = entry {
            advance.waker.wake();
        }
    }
}

/// Clears the thread-local executor even if the driven future panics.
struct ResetGuard;

impl Drop for ResetGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Drives `future` (and everything it spawns) to completion on a fresh
/// executor. `paused` starts the virtual clock in auto-advance mode —
/// this is what `#[tokio::test(start_paused = true)]` expands to.
pub fn block_on_test<F>(paused: bool, future: F) -> F::Output
where
    F: Future + 'static,
    F::Output: 'static,
{
    let exec = Rc::new(Executor::new(paused));
    CURRENT.with(|c| {
        assert!(
            c.borrow().is_none(),
            "tokio shim: nested block_on is not supported"
        );
        *c.borrow_mut() = Some(Rc::clone(&exec));
    });
    let _guard = ResetGuard;

    let result: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
    let slot = Rc::clone(&result);
    exec.spawn_task(Box::pin(async move {
        *slot.borrow_mut() = Some(future.await);
    }));

    loop {
        while let Some(id) = exec.ready.pop() {
            exec.poll_task(id);
        }
        if result.borrow().is_some() {
            break;
        }
        if !exec.idle_step() {
            panic!(
                "tokio shim: deadlock — the main future is pending but no \
                 task is runnable and no timer or advance is registered"
            );
        }
    }
    let out = result.borrow_mut().take().expect("main future completed");
    out
}

/// Drives `future` to completion with a real-time (unpaused) clock.
pub fn block_on<F>(future: F) -> F::Output
where
    F: Future + 'static,
    F::Output: 'static,
{
    block_on_test(false, future)
}

#[cfg(test)]
mod tests {
    use crate::time::{advance, sleep, Duration, Instant};

    #[test]
    fn paused_clock_auto_advances() {
        crate::runtime::block_on_test(true, async {
            let start = Instant::now();
            sleep(Duration::from_secs(3600)).await;
            assert_eq!(start.elapsed(), Duration::from_secs(3600));
        });
    }

    #[test]
    fn spawned_tasks_interleave_by_deadline() {
        crate::runtime::block_on_test(true, async {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let l1 = std::rc::Rc::clone(&log);
            let l2 = std::rc::Rc::clone(&log);
            let a = crate::spawn(async move {
                sleep(Duration::from_millis(20)).await;
                l1.borrow_mut().push("late");
            });
            let b = crate::spawn(async move {
                sleep(Duration::from_millis(10)).await;
                l2.borrow_mut().push("early");
            });
            a.await.unwrap();
            b.await.unwrap();
            assert_eq!(*log.borrow(), ["early", "late"]);
        });
    }

    #[test]
    fn advance_fires_intervening_timers() {
        crate::runtime::block_on_test(true, async {
            let hit = std::rc::Rc::new(std::cell::Cell::new(false));
            let h = std::rc::Rc::clone(&hit);
            crate::spawn(async move {
                sleep(Duration::from_millis(5)).await;
                h.set(true);
            });
            advance(Duration::from_millis(10)).await;
            assert!(hit.get());
        });
    }

    #[test]
    fn unpaused_executor_parks_until_cross_thread_wake() {
        // With no timers registered, an unpaused executor must park on
        // the condvar (not panic) and wake when another thread's send
        // pushes onto its ready queue.
        let (tx, mut rx) = crate::sync::mpsc::channel::<u8>(1);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.try_send(7).unwrap();
        });
        let got = crate::runtime::block_on(async move { rx.recv().await });
        sender.join().unwrap();
        assert_eq!(got, Some(7));
    }

    #[test]
    fn unpaused_clock_tracks_real_time_while_busy() {
        // Yields back to the executor once without registering a timer.
        struct YieldOnce(bool);
        impl std::future::Future for YieldOnce {
            type Output = ();
            fn poll(
                mut self: std::pin::Pin<&mut Self>,
                cx: &mut std::task::Context<'_>,
            ) -> std::task::Poll<()> {
                if self.0 {
                    std::task::Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    std::task::Poll::Pending
                }
            }
        }
        crate::runtime::block_on(async {
            let start = Instant::now();
            // Busy-spin (with yields) rather than sleeping: the clock
            // must advance even though the executor never goes idle.
            while start.elapsed() < Duration::from_millis(20) {
                YieldOnce(false).await;
            }
            assert!(start.elapsed() >= Duration::from_millis(20));
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics_instead_of_hanging() {
        crate::runtime::block_on_test(true, async {
            let (_tx, mut rx) = crate::sync::mpsc::channel::<u8>(1);
            // _tx is alive, so recv waits forever: with no timers the shim
            // must panic rather than spin or hang.
            rx.recv().await;
        });
    }
}
