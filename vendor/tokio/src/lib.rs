//! Offline shim of the `tokio` 1.x API surface this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! downloaded; this shim keeps `simba-runtime` and its tests compiling
//! and running. It is a **single-threaded, deterministic** executor with a
//! virtual clock, not a production reactor:
//!
//! * [`spawn`] schedules tasks on the executor driving the current
//!   `block_on` call (no `Send` bound, no work stealing);
//! * [`time`] implements `sleep` / `timeout` / `interval` / `Instant` /
//!   `advance` against virtual time — with `start_paused = true` the clock
//!   auto-advances to the next timer deadline whenever no task is
//!   runnable, exactly like the real crate's `test-util` mode;
//! * [`sync`] implements the bounded/unbounded mpsc and oneshot channels;
//! * `#[tokio::test(start_paused = true)]` expands (via the shim
//!   `tokio-macros`) to a plain `#[test]` driving the async body with
//!   [`runtime::block_on_test`].
//!
//! Every workspace use is timer-driven, so a ready-queue-empty state with
//! no pending timers is a genuine deadlock and panics rather than hangs.

#![forbid(unsafe_code)]

pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};
