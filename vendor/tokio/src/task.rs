//! Task spawning and join handles.

use crate::runtime::{try_with_executor, with_executor, TaskId};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct JoinState<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

/// Why a task's output could not be joined.
#[derive(Debug)]
pub struct JoinError {
    cancelled: bool,
}

impl JoinError {
    /// True when the task was aborted rather than panicking.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            f.write_str("task was cancelled")
        } else {
            f.write_str("task failed")
        }
    }
}

impl std::error::Error for JoinError {}

/// Owner handle for a spawned task; awaiting it yields the task's output.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// Drops the task's future if it has not finished; the handle then
    /// resolves to a cancelled [`JoinError`].
    pub fn abort(&self) {
        try_with_executor(|exec| exec.drop_task(self.id));
        let mut state = self.state.lock().unwrap();
        if state.result.is_none() {
            state.result = Some(Err(JoinError { cancelled: true }));
            if let Some(waker) = state.waker.take() {
                waker.wake();
            }
        }
    }

    /// True once the task has completed or been aborted.
    pub fn is_finished(&self) -> bool {
        self.state.lock().unwrap().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.state.lock().unwrap();
        match state.result.take() {
            Some(result) => Poll::Ready(result),
            None => {
                state.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Schedules `future` on the executor driving the current `block_on`.
///
/// Unlike the real crate there is no `Send` bound: the shim executor is
/// single-threaded, so tasks never cross threads.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Arc::new(Mutex::new(JoinState {
        result: None,
        waker: None,
    }));
    let shared = Arc::clone(&state);
    let id = with_executor(|exec| {
        exec.spawn_task(Box::pin(async move {
            let output = future.await;
            let mut state = shared.lock().unwrap();
            state.result = Some(Ok(output));
            if let Some(waker) = state.waker.take() {
                waker.wake();
            }
        }))
    });
    JoinHandle { state, id }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on_test;
    use crate::time::{sleep, Duration};

    #[test]
    fn join_returns_output() {
        block_on_test(true, async {
            let handle = spawn(async {
                sleep(Duration::from_millis(1)).await;
                41 + 1
            });
            assert_eq!(handle.await.unwrap(), 42);
        });
    }

    #[test]
    fn abort_cancels_and_join_reports_it() {
        block_on_test(true, async {
            let handle = spawn(async {
                sleep(Duration::from_secs(3600)).await;
            });
            // Let the task start sleeping, then kill it.
            sleep(Duration::from_millis(1)).await;
            handle.abort();
            let err = handle.await.unwrap_err();
            assert!(err.is_cancelled());
            // The aborted sleep's timer must be gone: a short sleep should
            // advance by exactly its own duration.
            let before = crate::time::Instant::now();
            sleep(Duration::from_millis(5)).await;
            assert_eq!(before.elapsed(), Duration::from_millis(5));
        });
    }
}
