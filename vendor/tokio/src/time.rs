//! Virtual-time `sleep` / `timeout` / `interval` / `Instant` / `advance`.

use crate::runtime::{try_with_executor, with_executor, TimerKey};
use std::future::Future;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::pin::Pin;
use std::sync::OnceLock;
use std::task::{Context, Poll};

pub use std::time::Duration;

/// Fallback epoch for `Instant::now()` outside a runtime.
static REAL_EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

/// A point on the runtime's virtual clock (real monotonic time outside a
/// runtime). Stored as the offset from the runtime epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    since_epoch: Duration,
}

impl Instant {
    /// The current (virtual) time.
    pub fn now() -> Instant {
        let since_epoch = try_with_executor(|exec| exec.now())
            .unwrap_or_else(|| REAL_EPOCH.get_or_init(std::time::Instant::now).elapsed());
        Instant { since_epoch }
    }

    /// Time elapsed since this instant (zero if it is in the future).
    pub fn elapsed(&self) -> Duration {
        Instant::now().since_epoch.saturating_sub(self.since_epoch)
    }

    /// Saturating difference, matching tokio's panic-free behaviour.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.since_epoch.saturating_sub(earlier.since_epoch)
    }

    /// Alias of [`Instant::duration_since`] with the explicit name.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        self.duration_since(earlier)
    }

    /// `None` on overflow.
    pub fn checked_add(&self, duration: Duration) -> Option<Instant> {
        self.since_epoch
            .checked_add(duration)
            .map(|since_epoch| Instant { since_epoch })
    }

    /// `None` on underflow.
    pub fn checked_sub(&self, duration: Duration) -> Option<Instant> {
        self.since_epoch
            .checked_sub(duration)
            .map(|since_epoch| Instant { since_epoch })
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            since_epoch: self.since_epoch + rhs,
        }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.since_epoch += rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            since_epoch: self.since_epoch.saturating_sub(rhs),
        }
    }
}

impl SubAssign<Duration> for Instant {
    fn sub_assign(&mut self, rhs: Duration) {
        self.since_epoch = self.since_epoch.saturating_sub(rhs);
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

/// Completes once the virtual clock reaches `now + duration`.
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Completes once the virtual clock reaches `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep {
        deadline,
        key: None,
    }
}

/// Future of [`sleep`]. Cancels its timer on drop so an abandoned sleep
/// (e.g. the loser inside [`timeout`]) never drags the paused clock
/// forward to its deadline.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    key: Option<TimerKey>,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            if let Some(key) = this.key.take() {
                try_with_executor(|exec| exec.cancel_timer(key));
            }
            return Poll::Ready(());
        }
        with_executor(|exec| match this.key {
            Some(key) => exec.update_timer(key, cx.waker().clone()),
            None => {
                this.key = Some(exec.register_timer(this.deadline.since_epoch, cx.waker().clone()));
            }
        });
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            try_with_executor(|exec| exec.cancel_timer(key));
        }
    }
}

/// Error of [`timeout`]: the inner future did not finish in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Races `future` against a `duration`-long sleep.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        // Boxed so the shim can poll without unsafe pin projection.
        future: Box::pin(future),
        sleep: sleep(duration),
    }
}

/// Future of [`timeout`].
pub struct Timeout<F: Future> {
    future: Pin<Box<F>>,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(value) = this.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(value));
        }
        if Pin::new(&mut this.sleep).poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed(())));
        }
        Poll::Pending
    }
}

/// What an [`Interval`] does about ticks its consumer was late for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissedTickBehavior {
    /// Fire missed ticks back to back (tokio's default).
    #[default]
    Burst,
    /// Schedule the next tick one full period after the late poll.
    Delay,
    /// Drop missed ticks and resynchronise to the original cadence.
    Skip,
}

/// Ticks every `period`, first tick immediately (like the real crate).
pub fn interval(period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be non-zero");
    Interval {
        period,
        deadline: Instant::now(),
        behavior: MissedTickBehavior::Burst,
    }
}

/// See [`interval`].
#[derive(Debug)]
pub struct Interval {
    period: Duration,
    deadline: Instant,
    behavior: MissedTickBehavior,
}

impl Interval {
    /// The tick period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Sets the policy for missed ticks.
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    /// Completes at the next tick, returning its scheduled instant.
    pub fn tick(&mut self) -> Tick<'_> {
        Tick {
            interval: self,
            key: None,
        }
    }

    /// Pushes the next tick one full period out from now.
    pub fn reset(&mut self) {
        self.deadline = Instant::now() + self.period;
    }
}

/// Future of [`Interval::tick`].
#[derive(Debug)]
pub struct Tick<'a> {
    interval: &'a mut Interval,
    key: Option<TimerKey>,
}

impl Future for Tick<'_> {
    type Output = Instant;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Instant> {
        let this = self.get_mut();
        let now = Instant::now();
        let deadline = this.interval.deadline;
        if now >= deadline {
            if let Some(key) = this.key.take() {
                try_with_executor(|exec| exec.cancel_timer(key));
            }
            this.interval.deadline = match this.interval.behavior {
                MissedTickBehavior::Burst => deadline + this.interval.period,
                MissedTickBehavior::Delay => now + this.interval.period,
                MissedTickBehavior::Skip => {
                    let mut next = deadline;
                    while next <= now {
                        next += this.interval.period;
                    }
                    next
                }
            };
            return Poll::Ready(deadline);
        }
        with_executor(|exec| match this.key {
            Some(key) => exec.update_timer(key, cx.waker().clone()),
            None => {
                this.key = Some(exec.register_timer(deadline.since_epoch, cx.waker().clone()));
            }
        });
        Poll::Pending
    }
}

impl Drop for Tick<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            try_with_executor(|exec| exec.cancel_timer(key));
        }
    }
}

/// Pauses the clock: time then only moves via [`advance`] or idle
/// auto-advance to the next timer deadline.
pub fn pause() {
    with_executor(|exec| exec.set_paused(true));
}

/// Resumes real-time behaviour.
pub fn resume() {
    with_executor(|exec| exec.set_paused(false));
}

/// Moves the paused clock forward by `duration`, firing (and running)
/// every timer that falls inside the window first.
pub async fn advance(duration: Duration) {
    let target = Instant::now() + duration;
    AdvanceFuture { target, id: None }.await
}

struct AdvanceFuture {
    target: Instant,
    id: Option<u64>,
}

impl Future for AdvanceFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.target {
            if let Some(id) = this.id.take() {
                try_with_executor(|exec| exec.cancel_advance(id));
            }
            return Poll::Ready(());
        }
        with_executor(|exec| {
            this.id = Some(exec.register_advance(
                this.target.since_epoch,
                this.id,
                cx.waker().clone(),
            ));
        });
        Poll::Pending
    }
}

impl Drop for AdvanceFuture {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            try_with_executor(|exec| exec.cancel_advance(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on_test;

    #[test]
    fn timeout_wins_and_loses() {
        block_on_test(true, async {
            let fast = timeout(Duration::from_millis(100), sleep(Duration::from_millis(10))).await;
            assert!(fast.is_ok());
            let slow = timeout(Duration::from_millis(10), sleep(Duration::from_millis(100))).await;
            assert_eq!(slow, Err(Elapsed(())));
            // The abandoned 100ms sleep must not drag the clock forward.
            let before = Instant::now();
            sleep(Duration::from_millis(1)).await;
            assert_eq!(before.elapsed(), Duration::from_millis(1));
        });
    }

    #[test]
    fn interval_delay_reschedules_from_poll_time() {
        block_on_test(true, async {
            let start = Instant::now();
            let mut ticker = interval(Duration::from_secs(60));
            ticker.set_missed_tick_behavior(MissedTickBehavior::Delay);
            ticker.tick().await; // immediate
            assert_eq!(start.elapsed(), Duration::ZERO);
            ticker.tick().await;
            assert_eq!(start.elapsed(), Duration::from_secs(60));
            ticker.tick().await;
            assert_eq!(start.elapsed(), Duration::from_secs(120));
        });
    }

    #[test]
    fn instant_arithmetic() {
        let a = Instant {
            since_epoch: Duration::from_secs(5),
        };
        let b = a + Duration::from_secs(2);
        assert_eq!(b - a, Duration::from_secs(2));
        assert_eq!(a - b, Duration::ZERO); // saturating
        assert_eq!(a.checked_sub(Duration::from_secs(10)), None);
    }
}
