//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no shrinking: `sample` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Keeps only values satisfying `pred`; `whence` labels the filter in
    /// the give-up panic.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Maps values, dropping those mapped to `None`.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, map: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence: whence.into(),
            map,
        }
    }

    /// Type-erases the strategy (needed for recursion and `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

const FILTER_TRIES: u32 = 200;

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_TRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected {FILTER_TRIES} samples in a row", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: String,
    map: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_TRIES {
            if let Some(v) = (self.map)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map {:?} rejected {FILTER_TRIES} samples in a row", self.whence);
    }
}

/// Chooses among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Equal-weight arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: fmt::Debug> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weight accounting")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit() as $t * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty char range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below(u64::from(hi - lo)) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for RangeInclusive<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (*self.start() as u32, *self.end() as u32);
        loop {
            if let Some(c) = char::from_u32(lo + rng.below(u64::from(hi - lo) + 1) as u32) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategies {
    ($( ($($s:ident . $idx:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `&str` strategies are regex generators (see [`crate::regex`]).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

/// Vec length specification: a fixed size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}
