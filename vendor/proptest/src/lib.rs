//! Offline shim of the `proptest` 1.x API surface this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! downloaded; this shim (wired in via `[patch.crates-io]`) implements the
//! same surface as a plain randomized-case runner:
//!
//! * `proptest!` with optional `#![proptest_config(..)]`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`, `prop_oneof!`
//!   (plain and weighted);
//! * `Strategy` with `prop_map` / `prop_filter` / `prop_filter_map` /
//!   `boxed`, tuple strategies, integer/char ranges, `Just`, `any::<T>()`;
//! * `collection::{vec, btree_set}`, `option::of`, `sample::select`;
//! * `&str` regex strategies for the subset of syntax the tests use
//!   (literals, classes, groups with alternation, `{n,m}`/`*`/`+`/`?`,
//!   and `\PC` for "any non-control character").
//!
//! Cases are seeded deterministically from the test path and case index,
//! so failures reproduce. There is **no shrinking**: a failing case
//! reports its inputs verbatim instead.

#![forbid(unsafe_code)]

pub mod regex;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`any`](crate::prelude::any).
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Bias toward ASCII (as the real crate does) but cover the
            // full scalar-value space.
            if rng.below(4) < 3 {
                char::from_u32(rng.below(0x5F) as u32 + 0x20).unwrap_or('a')
            } else {
                loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        return c;
                    }
                }
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Finite floats across magnitudes.
            let mag = rng.unit() * 600.0 - 300.0;
            (rng.unit() * 2.0 - 1.0) * mag.exp2()
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet<S::Value>` with a target size from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times.
            for _ in 0..n.saturating_mul(20).max(20) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` one time in four, `Some(inner)` otherwise (the real crate's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one element of `values`.
    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "sample::select on empty vec");
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: crate::arbitrary::Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut crate::test_runner::TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ..)`
/// becomes a normal test running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs: Vec<String> = Vec::new();
                $(
                    let __value = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    __inputs.push(format!("{} = {:?}", stringify!($arg), __value));
                    let $arg = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), ()> {
                        $body
                        ::std::result::Result::Ok(())
                    }),
                );
                if let ::std::result::Result::Err(__payload) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{}\n{}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs.join("\n"),
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The shim counts skipped cases as passes — no re-draw.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
